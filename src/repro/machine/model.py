"""Parametric machine models standing in for the paper's testbeds.

The paper's §6.1 cost model is: a communication pattern costs each
processor ``C`` (startup) times the number of distinct partners, plus the
volume it sends/receives at the network's inverse bandwidth; a pattern
costs the max over processors; a program phase list costs the sum.  This
module provides that model plus the local ``bcopy`` (packing) cost with a
cache knee — the two curves of the paper's Figure 5 — for two presets:

* ``SP2``    — IBM SP2 with MPL: lower startup, higher bandwidth,
  256 KB L2; the paper derives a ~20 KB combining threshold from it.
* ``NOW``    — Berkeley NOW, SPARC + Myrinet with MPICH: higher startup,
  lower delivered bandwidth (the paper: "the SP2 network has lower
  overhead and higher bandwidth than the NOW").

Absolute constants are representative, not measured — the reproduction
targets curve *shapes* and ratios, as the task defines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Bulk-synchronous message-passing cost model for one platform."""

    name: str
    startup_s: float  # per-message receiver-visible overhead (the paper's C)
    inject_s: float  # sender-side injection overhead (Fig 5 middle curve)
    bandwidth_bps: float  # asymptotic network bandwidth, bytes/second
    bcopy_cache_bps: float  # local copy bandwidth while buffers fit in cache
    bcopy_mem_bps: float  # local copy bandwidth beyond the cache
    cache_bytes: int  # effective cache size (the Fig 5 knee)
    flops: float  # per-processor useful FLOP rate
    # Software overhead the HPF runtime adds per message over the raw
    # network startup: section-descriptor interpretation, tag matching,
    # and the bulk-synchronous completion wait (the paper ran with overlap
    # disabled).  Charged by the simulator, not by the raw Fig 5 curves.
    sw_overhead_s: float = 0.0

    # -- point-to-point -------------------------------------------------------

    def message_time(self, nbytes: int) -> float:
        """Receiver-completion time of one message (Fig 5 bottom curve)."""
        return self.startup_s + nbytes / self.bandwidth_bps

    def injection_time(self, nbytes: int) -> float:
        """Sender-side busy time for one message."""
        return self.inject_s + nbytes / self.bandwidth_bps

    def network_bandwidth(self, nbytes: int) -> float:
        """Delivered bandwidth at a given message size (for Fig 5)."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.message_time(nbytes)

    def injection_bandwidth(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return nbytes / self.injection_time(nbytes)

    # -- local copies -----------------------------------------------------------

    def bcopy_time(self, nbytes: int) -> float:
        """Time to gather/scatter ``nbytes`` through a local buffer.

        Below the cache size the fast rate applies; above it, the excess
        runs at memory speed (the Fig 5 top-curve knee).
        """
        if nbytes <= 0:
            return 0.0
        in_cache = min(nbytes, self.cache_bytes)
        beyond = max(0, nbytes - self.cache_bytes)
        return in_cache / self.bcopy_cache_bps + beyond / self.bcopy_mem_bps

    def bcopy_bandwidth(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return nbytes / self.bcopy_time(nbytes)

    # -- collectives ------------------------------------------------------------

    def reduce_time(self, nbytes: int, procs: int) -> float:
        """Binary-tree combine (+ broadcast of the result) over ``procs``."""
        if procs <= 1:
            return 0.0
        rounds = math.ceil(math.log2(procs))
        return rounds * self.message_time(nbytes)

    def allreduce_time(self, nbytes: int, procs: int) -> float:
        if procs <= 1:
            return 0.0
        rounds = 2 * math.ceil(math.log2(procs))
        return rounds * self.message_time(nbytes)

    def allgather_time(self, nbytes_total: int, procs: int) -> float:
        """Ring allgather of a section of ``nbytes_total`` bytes."""
        if procs <= 1:
            return 0.0
        rounds = procs - 1
        per_round = max(1, nbytes_total // procs)
        return rounds * self.message_time(per_round)

    def compute_time(self, flop_count: float) -> float:
        return flop_count / self.flops


SP2 = MachineModel(
    name="SP2",
    startup_s=40e-6,
    inject_s=26e-6,
    bandwidth_bps=34e6,
    bcopy_cache_bps=180e6,
    bcopy_mem_bps=75e6,
    cache_bytes=256 * 1024,
    flops=110e6,
    sw_overhead_s=95e-6,
)

NOW = MachineModel(
    name="NOW",
    startup_s=115e-6,
    inject_s=70e-6,
    bandwidth_bps=17e6,
    bcopy_cache_bps=110e6,
    bcopy_mem_bps=55e6,
    cache_bytes=1024 * 1024,
    flops=28e6,
    sw_overhead_s=880e-6,
)

MACHINES = {"SP2": SP2, "NOW": NOW}
