"""Parametric machine models standing in for the paper's testbeds.

The paper's §6.1 cost model is: a communication pattern costs each
processor ``C`` (startup) times the number of distinct partners, plus the
volume it sends/receives at the network's inverse bandwidth; a pattern
costs the max over processors; a program phase list costs the sum.  This
module provides that model plus the local ``bcopy`` (packing) cost with a
cache knee — the two curves of the paper's Figure 5 — for two presets:

* ``SP2``    — IBM SP2 with MPL: lower startup, higher bandwidth,
  256 KB L2; the paper derives a ~20 KB combining threshold from it.
* ``NOW``    — Berkeley NOW, SPARC + Myrinet with MPICH: higher startup,
  lower delivered bandwidth (the paper: "the SP2 network has lower
  overhead and higher bandwidth than the NOW").

Absolute constants are representative, not measured — the reproduction
targets curve *shapes* and ratios, as the task defines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Bulk-synchronous message-passing cost model for one platform."""

    name: str
    startup_s: float  # per-message receiver-visible overhead (the paper's C)
    inject_s: float  # sender-side injection overhead (Fig 5 middle curve)
    bandwidth_bps: float  # asymptotic network bandwidth, bytes/second
    bcopy_cache_bps: float  # local copy bandwidth while buffers fit in cache
    bcopy_mem_bps: float  # local copy bandwidth beyond the cache
    cache_bytes: int  # effective cache size (the Fig 5 knee)
    flops: float  # per-processor useful FLOP rate
    # Software overhead the HPF runtime adds per message over the raw
    # network startup: section-descriptor interpretation, tag matching,
    # and the bulk-synchronous completion wait (the paper ran with overlap
    # disabled).  Charged by the simulator, not by the raw Fig 5 curves.
    sw_overhead_s: float = 0.0

    # -- point-to-point -------------------------------------------------------

    def message_time(self, nbytes: int) -> float:
        """Receiver-completion time of one message (Fig 5 bottom curve)."""
        return self.startup_s + nbytes / self.bandwidth_bps

    def injection_time(self, nbytes: int) -> float:
        """Sender-side busy time for one message."""
        return self.inject_s + nbytes / self.bandwidth_bps

    def network_bandwidth(self, nbytes: int) -> float:
        """Delivered bandwidth at a given message size (for Fig 5)."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.message_time(nbytes)

    def injection_bandwidth(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return nbytes / self.injection_time(nbytes)

    # -- local copies -----------------------------------------------------------

    def bcopy_time(self, nbytes: int) -> float:
        """Time to gather/scatter ``nbytes`` through a local buffer.

        Below the cache size the fast rate applies; above it, the excess
        runs at memory speed (the Fig 5 top-curve knee).
        """
        if nbytes <= 0:
            return 0.0
        in_cache = min(nbytes, self.cache_bytes)
        beyond = max(0, nbytes - self.cache_bytes)
        return in_cache / self.bcopy_cache_bps + beyond / self.bcopy_mem_bps

    def bcopy_bandwidth(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return nbytes / self.bcopy_time(nbytes)

    # -- collectives ------------------------------------------------------------

    def reduce_time(self, nbytes: int, procs: int) -> float:
        """Binary-tree combine (+ broadcast of the result) over ``procs``."""
        if procs <= 1:
            return 0.0
        rounds = math.ceil(math.log2(procs))
        return rounds * self.message_time(nbytes)

    def allreduce_time(self, nbytes: int, procs: int) -> float:
        if procs <= 1:
            return 0.0
        rounds = 2 * math.ceil(math.log2(procs))
        return rounds * self.message_time(nbytes)

    def allgather_time(self, nbytes_total: int, procs: int) -> float:
        """Ring allgather of a section of ``nbytes_total`` bytes."""
        if procs <= 1:
            return 0.0
        rounds = procs - 1
        per_round = max(1, nbytes_total // procs)
        return rounds * self.message_time(per_round)

    def compute_time(self, flop_count: float) -> float:
        return flop_count / self.flops


def fit_linear_cost(
    sizes: "list[int]", times: "list[float]"
) -> tuple[float, float]:
    """Least-squares fit of the linear cost model ``t = C + n/B`` to
    measured (message size, time) points; returns ``(startup_s,
    bandwidth_bps)``.  This is how the transport micro-benchmarks
    calibrate a :class:`MachineModel` for the host: the fitted intercept
    is the per-message overhead, the slope's inverse the per-byte
    bandwidth.  Degenerate inputs (fewer than two distinct sizes, or a
    non-positive slope from timer noise) fall back to a zero-intercept
    bandwidth estimate."""
    if len(sizes) != len(times) or not sizes:
        raise ValueError("need matching, non-empty size/time samples")
    n = float(len(sizes))
    sx = sum(float(s) for s in sizes)
    sy = sum(times)
    sxx = sum(float(s) * s for s in sizes)
    sxy = sum(float(s) * t for s, t in zip(sizes, times))
    denom = n * sxx - sx * sx
    if denom > 0:
        slope = (n * sxy - sx * sy) / denom
        intercept = (sy - slope * sx) / n
        if slope > 0:
            return max(intercept, 0.0), 1.0 / slope
    # Non-physical slope: the dispatch handshake dominates and time is
    # flat (or noisy-decreasing) in size — charge the floor to startup
    # and derive bandwidth from raw throughput.
    total_bytes = sum(float(s) for s in sizes)
    total_time = max(sy, 1e-12)
    return max(min(times), 0.0), max(total_bytes / total_time, 1.0)


def calibrated_model(
    name: str,
    startup_s: float,
    bandwidth_bps: float,
    base: "MachineModel | None" = None,
) -> MachineModel:
    """A :class:`MachineModel` with measured message constants.

    Contract: ``startup_s`` and ``bandwidth_bps`` come from
    :func:`fit_linear_cost` over real transport micro-benchmarks and are
    taken verbatim (floored at physical minima).  Every *curve shape*
    (bcopy bandwidths, cache size, flops) is inherited from ``base``
    (default SP2) unscaled.  The remaining *per-message time* constants —
    ``inject_s`` and ``sw_overhead_s`` — scale with the measured startup
    by the ratio ``startup_s / base.startup_s``, preserving the base
    machine's proportions: a backend whose dispatch handshake is 10x the
    SP2's is charged 10x its software overhead too, rather than zero.
    (``sw_overhead_s`` used to be silently zeroed here, which made
    calibrated models claim a per-message cost *below* the fitted
    intercept; the fitted intercept measures the whole handshake, and the
    split between "wire startup" and "software overhead" keeps the base
    ratio.)  This turns the representative presets into a model of the
    machine actually running the backends, so §6.1 predictions can be
    read in host seconds."""
    base = base or SP2
    scale = max(startup_s, 1e-9) / base.startup_s
    return MachineModel(
        name=name,
        startup_s=max(startup_s, 1e-9),
        inject_s=base.inject_s * scale,
        bandwidth_bps=max(bandwidth_bps, 1.0),
        bcopy_cache_bps=base.bcopy_cache_bps,
        bcopy_mem_bps=base.bcopy_mem_bps,
        cache_bytes=base.cache_bytes,
        flops=base.flops,
        sw_overhead_s=base.sw_overhead_s * scale,
    )


SP2 = MachineModel(
    name="SP2",
    startup_s=40e-6,
    inject_s=26e-6,
    bandwidth_bps=34e6,
    bcopy_cache_bps=180e6,
    bcopy_mem_bps=75e6,
    cache_bytes=256 * 1024,
    flops=110e6,
    sw_overhead_s=95e-6,
)

NOW = MachineModel(
    name="NOW",
    startup_s=115e-6,
    inject_s=70e-6,
    bandwidth_bps=17e6,
    bcopy_cache_bps=110e6,
    bcopy_mem_bps=55e6,
    cache_bytes=1024 * 1024,
    flops=28e6,
    sw_overhead_s=880e-6,
)

MACHINES = {"SP2": SP2, "NOW": NOW}
