"""Machine cost models standing in for the paper's SP2 and NOW testbeds."""

from .model import MACHINES, NOW, SP2, MachineModel

__all__ = ["MACHINES", "MachineModel", "NOW", "SP2"]
