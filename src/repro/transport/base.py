"""Transport interface and wire accounting.

A :class:`Transport` executes the message traffic of a compiled SPMD
program: the per-rank flat transfers :mod:`repro.runtime.plans` produces
(lowered into rounds of :class:`~repro.transport.lowering.SendOp`
records) and the gather-tree reductions.  Three backends implement the
interface — inline (deterministic sequential reference), threaded (one
worker per rank over lock-free per-pair queues), and multiprocess (one
OS process per rank over ``multiprocessing.shared_memory``).

Every backend records :class:`WireStats` — per-pair message and byte
counts, per-rank send/receive/wait time, barrier stalls — and returns an
:class:`OpReceipt` per operation so the executor can cross-check the
measured traffic against the plan-time predictions *exactly*.  A
watchdog bounds every blocking wait; a schedule that would deadlock
(mismatched send/receive) raises a structured :class:`DeadlockError`
instead of hanging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..codegen.kernels import compile_fn, pack_source, unpack_source
from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .lowering import LoweredComm


class TransportError(SimulationError):
    """A transport backend failed to execute a schedule."""


class RankCrashError(TransportError):
    """A worker rank died (injected crash or real) and the bounded
    restart budget could not bring the operation home.  The executor's
    degradation ladder catches this and re-executes on the inline
    backend; in strict contexts it propagates with the restart history."""

    def __init__(self, backend: str, dead_ranks: list[int],
                 restarts: int, max_restarts: int) -> None:
        self.backend = backend
        self.dead_ranks = dead_ranks
        self.restarts = restarts
        self.max_restarts = max_restarts
        super().__init__(
            f"{backend} transport: rank(s) {dead_ranks} died and the "
            f"restart budget is exhausted ({restarts}/{max_restarts} "
            f"restarts used)"
        )

    def to_dict(self) -> dict:
        return {
            "error": "rank_crash",
            "backend": self.backend,
            "dead_ranks": self.dead_ranks,
            "restarts": self.restarts,
            "max_restarts": self.max_restarts,
        }


class DeadlockError(TransportError):
    """The watchdog fired: one or more ranks were stuck past the
    timeout.  Carries a structured diagnostic instead of a hang —
    ``stuck`` lists, per stuck rank, what it was waiting on; ``stacks``
    (threaded backend) holds the formatted Python stack of each stuck
    worker."""

    def __init__(
        self,
        backend: str,
        timeout_s: float,
        stuck: list[dict],
        stacks: dict[int, str] | None = None,
        fault_context: dict | None = None,
    ) -> None:
        self.backend = backend
        self.timeout_s = timeout_s
        self.stuck = stuck
        self.stacks = stacks or {}
        self.fault_context = fault_context
        detail = "; ".join(
            f"rank {s['rank']}: {s.get('state', '?')}"
            + (f" (waiting on {s['waiting_on']})" if s.get("waiting_on") else "")
            for s in stuck
        ) or "no rank reported progress"
        super().__init__(
            f"{backend} transport deadlock: watchdog fired after "
            f"{timeout_s:.2f}s — {detail}"
        )

    def to_dict(self) -> dict:
        out = {
            "error": "deadlock",
            "backend": self.backend,
            "timeout_s": self.timeout_s,
            "stuck": self.stuck,
            "stacks": {str(r): s for r, s in self.stacks.items()},
        }
        if self.fault_context is not None:
            out["fault_context"] = self.fault_context
        return out


@dataclass
class RankOpStats:
    """One rank's measured contribution to one operation (picklable —
    the multiprocess backend ships these back over the control plane)."""

    sends: int = 0
    bytes_sent: int = 0
    local_copies: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    send_s: float = 0.0
    recv_s: float = 0.0
    wait_s: float = 0.0
    barrier_s: float = 0.0
    barrier_stalls: int = 0
    crc_failures: int = 0
    dedup_drops: int = 0
    nacks: int = 0
    retransmits: int = 0
    retrans_bytes: int = 0
    pair_msgs: dict = field(default_factory=dict)   # (src, dst) -> count
    pair_bytes: dict = field(default_factory=dict)  # (src, dst) -> bytes
    injected: dict = field(default_factory=dict)    # fault kind -> count


@dataclass
class OpReceipt:
    """What one executed operation actually put on the wire."""

    algorithm: str
    messages: int = 0
    bytes_sent: int = 0
    pair_msgs: dict = field(default_factory=dict)
    pair_bytes: dict = field(default_factory=dict)

    def absorb(self, rank_stats: RankOpStats) -> None:
        self.messages += rank_stats.sends
        self.bytes_sent += rank_stats.bytes_sent
        for pair, n in rank_stats.pair_msgs.items():
            self.pair_msgs[pair] = self.pair_msgs.get(pair, 0) + n
        for pair, n in rank_stats.pair_bytes.items():
            self.pair_bytes[pair] = self.pair_bytes.get(pair, 0) + n


@dataclass
class WireStats:
    """Cumulative wire-level accounting for one transport instance."""

    backend: str
    ops: int = 0
    reduces: int = 0
    messages: int = 0
    bytes_sent: int = 0
    local_copies: int = 0
    barrier_stalls: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    crc_failures: int = 0
    dedup_drops: int = 0
    nacks: int = 0
    retransmits: int = 0
    retrans_bytes: int = 0
    restarts: int = 0
    recovery_s: float = 0.0
    injected: dict = field(default_factory=dict)  # fault kind -> count
    pair_msgs: dict = field(default_factory=dict)
    pair_bytes: dict = field(default_factory=dict)
    send_s: dict = field(default_factory=dict)     # rank -> seconds
    recv_s: dict = field(default_factory=dict)
    wait_s: dict = field(default_factory=dict)
    barrier_s: dict = field(default_factory=dict)
    algorithms: dict = field(default_factory=dict)  # algorithm -> op count

    def absorb(self, rank: int, rs: RankOpStats) -> None:
        self.messages += rs.sends
        self.bytes_sent += rs.bytes_sent
        self.local_copies += rs.local_copies
        self.barrier_stalls += rs.barrier_stalls
        self.pool_hits += rs.pool_hits
        self.pool_misses += rs.pool_misses
        self.crc_failures += rs.crc_failures
        self.dedup_drops += rs.dedup_drops
        self.nacks += rs.nacks
        self.retransmits += rs.retransmits
        self.retrans_bytes += rs.retrans_bytes
        for kind, n in rs.injected.items():
            self.injected[kind] = self.injected.get(kind, 0) + n
        for pair, n in rs.pair_msgs.items():
            self.pair_msgs[pair] = self.pair_msgs.get(pair, 0) + n
        for pair, n in rs.pair_bytes.items():
            self.pair_bytes[pair] = self.pair_bytes.get(pair, 0) + n
        self.send_s[rank] = self.send_s.get(rank, 0.0) + rs.send_s
        self.recv_s[rank] = self.recv_s.get(rank, 0.0) + rs.recv_s
        self.wait_s[rank] = self.wait_s.get(rank, 0.0) + rs.wait_s
        self.barrier_s[rank] = self.barrier_s.get(rank, 0.0) + rs.barrier_s

    def count_op(self, algorithm: str) -> None:
        self.ops += 1
        self.algorithms[algorithm] = self.algorithms.get(algorithm, 0) + 1

    @property
    def faults_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def faults_detected(self) -> int:
        """Faults the integrity layer caught and acted on: checksum
        failures, duplicate discards, and receive timeouts (NACKs)."""
        return self.crc_failures + self.dedup_drops + self.nacks

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "ops": self.ops,
            "reduces": self.reduces,
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "local_copies": self.local_copies,
            "barrier_stalls": self.barrier_stalls,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "integrity": {
                "crc_failures": self.crc_failures,
                "dedup_drops": self.dedup_drops,
                "nacks": self.nacks,
                "retransmits": self.retransmits,
                "retrans_bytes": self.retrans_bytes,
            },
            "faults": {
                "injected": dict(sorted(self.injected.items())),
                "injected_total": self.faults_injected,
                "detected_total": self.faults_detected,
                "restarts": self.restarts,
                "recovery_s": round(self.recovery_s, 6),
            },
            "algorithms": dict(sorted(self.algorithms.items())),
            "pair_msgs": {
                f"{s}->{d}": n for (s, d), n in sorted(self.pair_msgs.items())
            },
            "pair_bytes": {
                f"{s}->{d}": n for (s, d), n in sorted(self.pair_bytes.items())
            },
            "per_rank_s": {
                str(r): {
                    "send": round(self.send_s.get(r, 0.0), 6),
                    "recv": round(self.recv_s.get(r, 0.0), 6),
                    "wait": round(self.wait_s.get(r, 0.0), 6),
                    "barrier": round(self.barrier_s.get(r, 0.0), 6),
                }
                for r in sorted(
                    set(self.send_s) | set(self.recv_s) | set(self.wait_s)
                    | set(self.barrier_s)
                )
            },
        }


def extract_payload(values: np.ndarray, send) -> np.ndarray:
    """The wire payload of one send: the indexed box, compacted by the
    mask for the diagonal augmented exchanges."""
    raw = values[send.index]
    if send.mask is not None:
        return np.ascontiguousarray(raw[send.mask])
    return np.ascontiguousarray(raw)


def install_payload(values: np.ndarray, valid: np.ndarray, send,
                    payload: np.ndarray) -> None:
    """Install a received payload into a rank's storage (and mark it
    valid), inverting :func:`extract_payload`."""
    if send.mask is None:
        values[send.index] = payload.reshape(values[send.index].shape)
        valid[send.index] = True
    else:
        region = values[send.index]
        region[send.mask] = payload
        values[send.index] = region
        vregion = valid[send.index]
        vregion[send.mask] = True
        valid[send.index] = vregion


class BufferPool:
    """Size-bucketed free lists of wire buffers.

    The threaded backend keeps one pool per (src, dst) pair so send
    staging stops allocating after the first round: the sender rents a
    power-of-two-sized float64 buffer, the receiver returns it after
    install.  ``list.append``/``list.pop`` are atomic under the GIL and
    each pair pool has exactly one renter (the sending rank's thread)
    and one giver (the receiving rank's), so the data path stays
    lock-free like the SPSC channels it feeds.

    ``hits``/``misses`` count rents served from the free list versus
    fresh allocations; backends mirror them into
    :class:`RankOpStats` so they surface in :class:`WireStats`.
    """

    __slots__ = ("_buckets", "hits", "misses")

    def __init__(self) -> None:
        self._buckets: dict[int, list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _bucket(count: int) -> int:
        return 1 << max(count - 1, 0).bit_length()

    def rent(self, count: int, rs: RankOpStats | None = None) -> np.ndarray:
        """A float64 buffer of at least ``count`` elements (callers use
        ``buf[:count]``); reused if the bucket has a free one."""
        size = self._bucket(count)
        free = self._buckets.get(size)
        if free:
            try:
                buf = free.pop()
            except IndexError:
                buf = None
            if buf is not None:
                self.hits += 1
                if rs is not None:
                    rs.pool_hits += 1
                return buf
        self.misses += 1
        if rs is not None:
            rs.pool_misses += 1
        return np.empty(size, dtype=np.float64)

    def give(self, buf: np.ndarray) -> None:
        """Return a rented buffer to its bucket."""
        self._buckets.setdefault(buf.shape[0], []).append(buf)

    def free_count(self) -> int:
        """Buffers currently sitting in the free lists.  At quiescence
        (no op in flight) conservation holds: every allocation ever made
        (``misses``) is either in a free list or leaked — so
        ``free_count() == misses`` proves no buffer escaped, even on
        exception paths."""
        return sum(len(free) for free in self._buckets.values())


# Compiled pack/unpack functions, keyed by the send's normalized index
# geometry (slices are unhashable, so each is flattened to a
# ('s', start, stop, step) tuple) plus whether a mask compacts the box.
# The population is bounded by the distinct transfer geometries of the
# programs run in this process — the same reuse argument as the
# executor's CommPlan cache.
_PACK_FNS: dict = {}
_UNPACK_FNS: dict = {}


def _send_key(send) -> tuple:
    """(cache key, unmasked box shape) for one send's geometry, or
    (None, None) when the index is not fully concrete."""
    parts = []
    shape = []
    for p in send.index:
        if isinstance(p, slice):
            if p.start is None or p.stop is None:
                return None, None
            step = 1 if p.step is None else p.step
            parts.append(("s", p.start, p.stop, step))
            shape.append(len(range(p.start, p.stop, step)))
        else:
            parts.append(("i", int(p)))
    return (tuple(parts), send.mask is not None), tuple(shape)


def pack_payload(values: np.ndarray, send, out: np.ndarray) -> None:
    """Gather one send's wire payload straight into ``out`` (a pooled
    or shared-memory buffer of exactly the payload's element count)
    through a compiled per-geometry kernel — :func:`extract_payload`
    without the intermediate allocation."""
    key, shape = _send_key(send)
    if key is None:  # pragma: no cover - planner always emits concrete slices
        out[...] = extract_payload(values, send).ravel()
        return
    fn = _PACK_FNS.get(key)
    if fn is None:
        source = pack_source(send.index, shape, send.mask is not None)
        fn = _PACK_FNS[key] = compile_fn(source, "pack", {"_np": np})
    fn(values, out, send.mask)


def unpack_payload(values: np.ndarray, valid: np.ndarray, send,
                   buf: np.ndarray) -> None:
    """Scatter a received wire buffer into rank storage and mark the
    region valid — :func:`install_payload` through a compiled
    per-geometry kernel (no region copy round-trip)."""
    key, shape = _send_key(send)
    if key is None:  # pragma: no cover - planner always emits concrete slices
        install_payload(values, valid, send, buf)
        return
    fn = _UNPACK_FNS.get(key)
    if fn is None:
        source = unpack_source(send.index, shape, send.mask is not None)
        fn = _UNPACK_FNS[key] = compile_fn(source, "unpack", {"_np": np})
    fn(values, valid, buf, send.mask)


class Transport:
    """Abstract message-passing backend.

    Lifecycle: construct with the rank count → ``create_storage`` (the
    multiprocess backend allocates shared memory here; others plain
    numpy) → ``start`` once the executor has built rank storage →
    ``execute``/``reduce`` per operation → ``shutdown``.  A watchdog
    timeout bounds every blocking wait; once it fires the transport is
    poisoned (subsequent operations raise) and only ``shutdown`` is
    valid.
    """

    name = "abstract"

    def __init__(self, nranks: int, watchdog_s: float = 30.0) -> None:
        self.nranks = nranks
        self.watchdog_s = watchdog_s
        self.stats = WireStats(backend=self.name)
        self._poisoned: str | None = None
        self.chaos = None  # ChaosState when fault injection is armed
        self.max_rank_restarts = 2
        # Wire integrity (CRC32 frame checksums) is on by default; the
        # chaos bench turns it off to measure clean-run overhead.
        self.integrity = True

    def attach_chaos(self, chaos, max_rank_restarts: int | None = None):
        """Arm fault injection.  Called by :class:`~repro.transport.
        chaos.ChaosTransport` before ``start``; backends read
        ``self.chaos`` on their data paths and enable the repair
        machinery (outbox, dedup, NACK/retransmit) when it is set."""
        self.chaos = chaos
        self.integrity = True  # corruption detection requires checksums
        if max_rank_restarts is not None:
            self.max_rank_restarts = max_rank_restarts
        return self

    def _sync_injected(self) -> None:
        """Mirror the chaos ledger's cumulative totals into the wire
        stats (the ledger is authoritative; this is the reporting
        copy).  Backends call this after each completed operation."""
        if self.chaos is None:
            return
        total: dict[str, int] = {}
        for row in self.chaos.ledger().values():
            for kind, n in row.items():
                total[kind] = total.get(kind, 0) + n
        self.stats.injected = total

    # -- storage ----------------------------------------------------------

    def create_storage(
        self, specs: Iterable[tuple[int, str, tuple[int, ...]]]
    ) -> dict[tuple[int, str], tuple[np.ndarray, np.ndarray]]:
        """Allocate (values, valid) buffers per (rank, array).  The base
        implementation returns process-local numpy arrays; the
        multiprocess backend overrides this with shared-memory views."""
        return {
            (rank, name): (np.zeros(shape), np.zeros(shape, dtype=bool))
            for rank, name, shape in specs
        }

    def start(self, storage: dict) -> None:
        """Begin execution against ``storage`` (rank -> name ->
        RankStorage).  Concurrent backends launch their workers here."""
        self.storage = storage

    # -- operations -------------------------------------------------------

    def execute(self, lowered: "LoweredComm") -> OpReceipt:
        raise NotImplementedError

    def reduce(self, pieces: dict[int, np.ndarray], op: str) -> tuple[
        float, OpReceipt
    ]:
        """Combine per-rank partial vectors through a gather tree and
        broadcast the result; returns (value, receipt).  The combine
        order is canonical (rank-sorted concatenation) so every backend
        produces the bit-identical value."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release workers and OS resources.  Idempotent."""

    # -- guards -----------------------------------------------------------

    def _check_alive(self) -> None:
        if self._poisoned:
            raise TransportError(
                f"{self.name} transport unusable after: {self._poisoned}"
            )

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def combine_pieces(pieces: dict[int, np.ndarray], op: str) -> float:
    """Canonical reduction combine: rank-sorted concatenation of the
    non-empty partial vectors, then one numpy reduction — exactly the
    element-wise executor's order, so the value is bit-stable across
    tree shapes and backends."""
    ordered = [
        np.asarray(pieces[rank]).ravel()
        for rank in sorted(pieces)
        if np.asarray(pieces[rank]).size
    ]
    if not ordered:
        raise TransportError("reduction over empty partial set")
    flat = np.concatenate(ordered)
    if op == "SUM":
        return float(flat.sum())
    if op == "MAX":
        return float(flat.max())
    if op == "MIN":
        return float(flat.min())
    raise TransportError(f"unknown reduction op {op!r}")
