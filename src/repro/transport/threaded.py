"""Threaded transport: one worker thread per rank.

Each rank runs a persistent worker; every lowered round is executed
concurrently — ranks post their sends to lock-free per-pair SPSC
channels (a ``collections.deque`` per (src, dst) pair; append/popleft
are atomic under the GIL, so no locks on the data path), then block
receiving what their round script expects, then meet at a real
``threading.Barrier``.  Payloads travel in pooled buffers: the sender
rents one from the pair's :class:`~repro.transport.base.BufferPool`,
packs the wire bytes into it through a compiled per-geometry kernel,
and the receiver returns it after install — steady-state rounds
allocate nothing.  Every message is counted at its wire size.

Wire integrity: every channel item is a *frame* ``(op_id, seq, buf,
count, crc, pooled)``.  Receivers verify the CRC32 checksum and the
sequence number; on a clean run a mismatch is a hard error.  When
chaos is armed (:meth:`~repro.transport.base.Transport.attach_chaos`)
the same frames are *repairable*: the sender keeps a pristine copy of
every in-flight payload in a per-channel outbox, and the receiver
dedups by sequence number, stashes out-of-order frames, and on a
checksum failure or receive timeout (a NACK, with bounded exponential
backoff) installs the retransmission from the outbox.  Retransmitted
traffic is counted separately (``retransmits``/``retrans_bytes``) so
the canonical per-pair ledger still matches the lowering's prediction
exactly.

Rank crash recovery: an injected crash kills the worker thread at a
send boundary.  The collector notices the dead thread, quiesces the
survivors, drains the channels back into the pools, restores rank
storage from the checkpoint taken at operation start, respawns the
dead workers, resets the barrier, and replays the operation — up to
``max_rank_restarts`` times, after which a structured
:class:`~repro.transport.base.RankCrashError` propagates (the
executor's degradation ladder re-runs the program inline).

A watchdog bounds every blocking wait: if any rank is still stuck when
it expires, the main thread aborts the fleet, captures each stuck
worker's Python stack (``sys._current_frames``), and raises a
structured :class:`~repro.transport.base.DeadlockError` — under chaos
it carries the injected-fault ledger and last-received sequence
numbers as ``fault_context``.  After a deadlock the transport is
poisoned; only ``shutdown`` remains valid.
"""

from __future__ import annotations

import queue
import sys
import threading
import time
import traceback
from collections import deque

import numpy as np

from .base import (
    BufferPool,
    DeadlockError,
    OpReceipt,
    RankCrashError,
    RankOpStats,
    Transport,
    TransportError,
    combine_pieces,
    pack_payload,
    unpack_payload,
)
from .integrity import ChaosCrash, payload_crc
from .lowering import SCALAR_BYTES, LoweredComm, lower_reduction

#: Spin interval while a channel is empty — long enough to release the
#: GIL, short enough to keep neighbour-exchange latency low.
_POLL_S = 0.0002

#: A barrier arrival that waited longer than this counts as a stall.
_STALL_S = 0.001


class _Abort(Exception):
    """Internal: the main thread cancelled the in-flight operation."""


class _RankCrash(Exception):
    """Internal: the collector found dead worker threads; carries the
    dead rank list to the dispatch retry loop."""

    def __init__(self, dead: list[int]) -> None:
        super().__init__(f"dead ranks {dead}")
        self.dead = dead


class SPSCChannel:
    """Single-producer single-consumer queue for one (src, dst) pair."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: deque = deque()

    def put(self, item) -> None:
        self._items.append(item)

    def get(self, deadline: float, abort: threading.Event, waiting):
        while True:
            try:
                return self._items.popleft()
            except IndexError:
                if abort.is_set():
                    raise _Abort()
                if time.monotonic() > deadline:
                    waiting()
                    raise _Abort()
                time.sleep(_POLL_S)

    def poll(self, deadline: float, abort: threading.Event):
        """Like :meth:`get` but returns ``None`` at ``deadline`` instead
        of aborting — the NACK timer of the chaos receive path."""
        while True:
            try:
                return self._items.popleft()
            except IndexError:
                if abort.is_set():
                    raise _Abort()
                if time.monotonic() > deadline:
                    return None
                time.sleep(_POLL_S)

    def drain(self) -> list:
        """Pop and return everything (only called while quiesced)."""
        items = []
        while True:
            try:
                items.append(self._items.popleft())
            except IndexError:
                return items


class ThreadedTransport(Transport):
    """Worker-per-rank execution over per-pair SPSC channels."""

    name = "threaded"

    def __init__(self, nranks: int, watchdog_s: float = 30.0) -> None:
        super().__init__(nranks, watchdog_s)
        self.stats.backend = self.name
        self._chan = {
            (s, d): SPSCChannel()
            for s in range(nranks) for d in range(nranks) if s != d
        }
        # One send-buffer pool per channel (rented by the sender,
        # returned by the receiver after install) plus one per rank for
        # staging local copies; reused across rounds and operations.
        self._pools = {pair: BufferPool() for pair in self._chan}
        self._local_pools = [BufferPool() for _ in range(nranks)]
        self._cmd = [queue.SimpleQueue() for _ in range(nranks)]
        self._results: queue.SimpleQueue = queue.SimpleQueue()
        self._abort = threading.Event()
        self._barrier = threading.Barrier(nranks)
        self._pending: dict[int, str] = {}
        self._op_counter = 0
        self._threads: list[threading.Thread] = []
        self._started = False
        # Chaos repair state, all per-channel: the sender's pristine
        # outbox (GIL-atomic dict writes; keyed (op_id, seq)), the
        # receiver's out-of-order stash and dedup set, the sender's
        # held-back frame for reorder injection, and the last sequence
        # number each receiver installed (DeadlockError fault context).
        self._outbox: dict = {pair: {} for pair in self._chan}
        self._stash: dict = {pair: {} for pair in self._chan}
        self._delivered: dict = {pair: set() for pair in self._chan}
        self._held: dict = {}
        self._last_seq: dict = {}

    # -- lifecycle ---------------------------------------------------------

    def start(self, storage: dict) -> None:
        super().start(storage)
        if self._started:
            return
        for rank in range(self.nranks):
            self._threads.append(self._spawn(rank))
        self._started = True

    def _spawn(self, rank: int) -> threading.Thread:
        t = threading.Thread(
            target=self._worker_loop, args=(rank,),
            name=f"transport-rank-{rank}", daemon=True,
        )
        t.start()
        return t

    def shutdown(self) -> None:
        if not self._started:
            return
        self._abort.set()
        for rank in range(self.nranks):
            self._cmd[rank].put(("stop",))
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads = []
        self._started = False
        # Return any undelivered pooled frames so pool conservation
        # (free_count == misses) holds even after an aborted run.
        self._drain_channels()

    # -- operations --------------------------------------------------------

    def execute(self, lowered: LoweredComm) -> OpReceipt:
        return self._dispatch(self._scripts_for(lowered), lowered.algorithm)

    def _dispatch(self, scripts, algorithm: str) -> OpReceipt:
        _, receipt = self._submit(
            lambda rank, op_id: ("op", op_id, scripts[rank]),
            algorithm, checkpoint=True,
        )
        return receipt

    def reduce(self, pieces: dict[int, np.ndarray], op: str):
        lowered = lower_reduction(
            op,
            {r: int(np.asarray(p).size) * SCALAR_BYTES
             for r, p in pieces.items()},
            self.nranks,
        )
        arrs = {
            rank: np.asarray(pieces.get(rank, np.zeros(0)))
            for rank in range(self.nranks)
        }
        # Reductions don't mutate rank storage, so a crashed attempt
        # replays without a checkpoint.
        values, receipt = self._submit(
            lambda rank, op_id: ("reduce", op_id, arrs[rank], op, lowered),
            "reduce-tree", checkpoint=False,
        )
        distinct = set(values.values())
        if len(distinct) != 1:
            raise TransportError(
                f"reduce-tree broadcast diverged across ranks: {distinct}"
            )
        self.stats.reduces += 1
        return distinct.pop(), receipt

    # -- dispatch ----------------------------------------------------------

    def _next_op(self) -> int:
        self._op_counter += 1
        return self._op_counter

    def _scripts_for(self, lowered: LoweredComm) -> dict[int, list[dict]]:
        """Per-rank round scripts: what each rank sends, receives (in
        per-source FIFO order), and installs locally in every round."""
        scripts: dict[int, list[dict]] = {r: [] for r in range(self.nranks)}
        for rnd in lowered.rounds:
            per = {
                r: {"send": [], "recv": [], "local": []}
                for r in range(self.nranks)
            }
            for s in rnd:
                if s.is_local:
                    per[s.src]["local"].append(s)
                else:
                    per[s.src]["send"].append(s)
                    per[s.dst]["recv"].append(s)
            for r in range(self.nranks):
                scripts[r].append(per[r])
        return scripts

    def _crash_armed(self) -> bool:
        return self.chaos is not None and self.chaos.plan.rate("crash") > 0.0

    def _submit(self, make_cmd, algorithm: str,
                checkpoint: bool) -> tuple[dict[int, float], OpReceipt]:
        """Dispatch one operation to every rank and collect completions,
        replaying from the operation-start checkpoint when injected
        crashes kill workers — up to ``max_rank_restarts`` times."""
        self._check_alive()
        snapshot = None
        if checkpoint and self._crash_armed():
            snapshot = self._snapshot()
        crashes = 0
        while True:
            op_id = self._next_op()
            if self.chaos is not None:
                self._reset_chaos_state()
            for rank in range(self.nranks):
                self._cmd[rank].put(make_cmd(rank, op_id))
            receipt = OpReceipt(algorithm=algorithm)
            try:
                values = self._collect(op_id, receipt)
            except _RankCrash as crash:
                crashes += 1
                if crashes > self.max_rank_restarts:
                    self._poisoned = "rank crash budget exhausted"
                    raise RankCrashError(
                        self.name, crash.dead, crashes - 1,
                        self.max_rank_restarts,
                    ) from None
                t0 = time.monotonic()
                self._recover(crash.dead, snapshot)
                self.stats.restarts += len(crash.dead)
                self.stats.recovery_s += time.monotonic() - t0
                continue
            self.stats.count_op(algorithm)
            self._sync_injected()
            return values, receipt

    def _collect(self, op_id: int, receipt: OpReceipt) -> dict[int, float]:
        """Gather one completion per rank, enforcing the watchdog and
        watching thread liveness.  Per-rank stats are absorbed only
        after every rank completed, so an attempt that is abandoned
        (crash, failure) contributes nothing to the canonical ledger."""
        deadline = time.monotonic() + self.watchdog_s
        done: dict[int, float] = {}
        stats: list[tuple[int, RankOpStats]] = []
        failures: list[str] = []
        while len(done) < self.nranks:
            dead = [
                r for r in range(self.nranks)
                if r not in done and not self._threads[r].is_alive()
            ]
            if dead:
                if self.chaos is None:
                    self._poisoned = "worker thread died"
                    raise TransportError(
                        f"threaded transport: worker thread(s) {dead} died"
                    )
                self._quiesce_crash(op_id, done, dead)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._deadlock(set(range(self.nranks)) - set(done))
            try:
                msg = self._results.get(timeout=min(remaining, 0.05))
            except queue.Empty:
                continue
            status, rank, msg_op, payload, value = msg
            if msg_op != op_id:
                continue  # stale completion from an aborted operation
            if status == "ok":
                stats.append((rank, payload))
                done[rank] = value if value is not None else 0.0
            elif status == "aborted":
                if not failures:
                    self._deadlock(set(range(self.nranks)) - set(done))
                done[rank] = 0.0
            else:
                failures.append(f"rank {rank}: {payload}")
                done[rank] = 0.0
                # Release ranks blocked on the failed one, then keep
                # draining so every worker returns to its command loop.
                self._abort.set()
                self._barrier.abort()
        if failures:
            self._poisoned = "worker failure"
            raise TransportError(
                "threaded transport worker failed:\n" + "\n".join(failures)
            )
        for rank, rs in stats:
            receipt.absorb(rs)
            self.stats.absorb(rank, rs)
        return done

    def _quiesce_crash(self, op_id: int, done: dict, dead: list[int]):
        """Dead workers found mid-collect: abort the survivors, wait for
        each to post its (aborted) completion so none is still touching
        a channel, then hand the dead list to the retry loop."""
        self._abort.set()
        self._barrier.abort()
        waiting = {
            r for r in range(self.nranks)
            if r not in done and r not in dead
        }
        end = time.monotonic() + 5.0
        while waiting and time.monotonic() < end:
            for r in list(waiting):
                if not self._threads[r].is_alive():
                    waiting.discard(r)
                    dead.append(r)
            try:
                msg = self._results.get(timeout=0.05)
            except queue.Empty:
                continue
            _status, rank, msg_op, _payload, _value = msg
            if msg_op == op_id:
                waiting.discard(rank)
        if waiting:
            self._deadlock(waiting)
        raise _RankCrash(sorted(set(dead)))

    def _recover(self, dead: list[int], snapshot) -> None:
        """Bring the fleet back to a clean pre-operation state: all
        survivors are idle in their command loops (guaranteed by
        :meth:`_quiesce_crash`), so drain stale frames back to the
        pools, roll storage back to the checkpoint, respawn the dead
        workers, and re-arm the barrier."""
        self._drain_results()
        self._drain_channels()
        self._reset_chaos_state()
        if snapshot is not None:
            self._restore(snapshot)
        for rank in dead:
            self._threads[rank] = self._spawn(rank)
        self._barrier.reset()
        self._abort.clear()

    def _snapshot(self) -> dict:
        return {
            rank: {
                name: (store.values.copy(), store.valid.copy())
                for name, store in stores.items()
            }
            for rank, stores in self.storage.items()
        }

    def _restore(self, snapshot: dict) -> None:
        for rank, stores in snapshot.items():
            for name, (values, valid) in stores.items():
                store = self.storage[rank][name]
                store.values[:] = values
                store.valid[:] = valid

    def _drain_results(self) -> None:
        while True:
            try:
                self._results.get_nowait()
            except queue.Empty:
                return

    def _drain_channels(self) -> None:
        for pair, chan in self._chan.items():
            pool = self._pools[pair]
            for item in chan.drain():
                if isinstance(item, tuple) and len(item) == 6 and item[5]:
                    pool.give(item[2])

    def _reset_chaos_state(self) -> None:
        for pair in self._chan:
            self._outbox[pair].clear()
            self._stash[pair].clear()
            self._delivered[pair].clear()
            frame = self._held.pop(pair, None)
            if frame is not None:
                self._pools[pair].give(frame[2])

    def _fault_context(self) -> dict | None:
        if self.chaos is None:
            return None
        return {
            "injected_by_rank": {
                str(rank): dict(kinds)
                for rank, kinds in sorted(self.chaos.ledger().items())
            },
            "last_recv_seq": {
                f"{s}->{d}": seq
                for (s, d), seq in sorted(self._last_seq.items())
            },
        }

    def _deadlock(self, missing: set[int]):
        self._poisoned = "deadlock watchdog"
        self._abort.set()
        self._barrier.abort()
        stacks: dict[int, str] = {}
        frames = sys._current_frames()
        for rank, t in enumerate(self._threads):
            if rank in missing and t.ident in frames:
                stacks[rank] = "".join(
                    traceback.format_stack(frames[t.ident])
                )
        stuck = [
            {
                "rank": rank,
                "state": "stuck",
                "waiting_on": self._pending.get(rank, "unknown"),
            }
            for rank in sorted(missing)
        ]
        raise DeadlockError(
            self.name, self.watchdog_s, stuck, stacks,
            fault_context=self._fault_context(),
        )

    # -- worker ------------------------------------------------------------

    def _worker_loop(self, rank: int) -> None:
        while True:
            cmd = self._cmd[rank].get()
            kind = cmd[0]
            if kind == "stop":
                return
            op_id = cmd[1]
            try:
                if kind == "op":
                    rs = self._run_op(rank, cmd[2], op_id)
                    self._results.put(("ok", rank, op_id, rs, None))
                else:  # reduce
                    _, _, piece, op, lowered = cmd
                    value, rs = self._run_reduce(
                        rank, piece, op, lowered, op_id
                    )
                    self._results.put(("ok", rank, op_id, rs, value))
            except ChaosCrash:
                return  # simulated rank death: no result, thread exits
            except _Abort:
                self._results.put(("aborted", rank, op_id, None, None))
            except threading.BrokenBarrierError:
                self._results.put(("aborted", rank, op_id, None, None))
            except Exception:  # noqa: BLE001 - reported to the main thread
                self._results.put(
                    ("error", rank, op_id, traceback.format_exc(), None)
                )

    def _barrier_wait(self, rank: int, rs: RankOpStats) -> None:
        self._pending[rank] = "barrier"
        t0 = time.perf_counter()
        try:
            self._barrier.wait(timeout=self.watchdog_s * 2)
        finally:
            stall = time.perf_counter() - t0
            rs.barrier_s += stall
            if stall > _STALL_S:
                rs.barrier_stalls += 1
            self._pending.pop(rank, None)

    def _run_op(self, rank: int, script: list[dict],
                op_id: int) -> RankOpStats:
        rs = RankOpStats()
        # 2x the main thread's watchdog: the collector is the primary
        # detector (it captures stacks while workers are still stuck);
        # this is only the backstop should the collector itself die.
        deadline = time.monotonic() + self.watchdog_s * 2
        for rnd in script:
            for s in rnd["send"]:
                self._post_send(rank, s, rs, op_id)
            if self.chaos is not None:
                self._flush_held(rank)
            for s in rnd["local"]:
                store = self.storage[rank][s.array]
                count = s.nbytes // SCALAR_BYTES
                pool = self._local_pools[rank]
                buf = pool.rent(count, rs)
                try:
                    pack_payload(store.values, s, buf[:count])
                    unpack_payload(store.values, store.valid, s, buf[:count])
                finally:
                    pool.give(buf)
                rs.local_copies += 1
            for s in rnd["recv"]:
                self._recv_one(rank, s, rs, op_id, deadline)
            self._barrier_wait(rank, rs)
        return rs

    # -- send path ---------------------------------------------------------

    def _post_send(self, rank: int, s, rs: RankOpStats, op_id: int) -> None:
        chaos = self.chaos
        if chaos is not None and chaos.fires("crash", rank, s.dst, s.seq):
            raise ChaosCrash(rank)
        pair = (rank, s.dst)
        store = self.storage[rank][s.array]
        count = s.nbytes // SCALAR_BYTES
        pool = self._pools[pair]
        t0 = time.perf_counter()
        buf = pool.rent(count, rs)
        posted = False
        try:
            pack_payload(store.values, s, buf[:count])
            crc = payload_crc(buf[:count]) if self.integrity else 0
            if chaos is not None:
                # Pristine copy first — retransmits serve from here.
                self._outbox[pair][(op_id, s.seq)] = (buf[:count].copy(), crc)
                posted = self._post_chaotic(
                    chaos, pair, s, buf, count, crc, op_id
                )
            else:
                self._chan[pair].put((op_id, s.seq, buf, count, crc, True))
                posted = True
        finally:
            if not posted:  # dropped frame, or pack failed
                pool.give(buf)
        rs.send_s += time.perf_counter() - t0
        # The logical send is counted exactly once even when the frame
        # is dropped or corrupted — the repair is accounted separately,
        # keeping the canonical ledger equal to the plan's prediction.
        rs.sends += 1
        rs.bytes_sent += s.nbytes
        rs.pair_msgs[pair] = rs.pair_msgs.get(pair, 0) + 1
        rs.pair_bytes[pair] = rs.pair_bytes.get(pair, 0) + s.nbytes

    def _post_chaotic(self, chaos, pair, s, buf, count, crc,
                      op_id: int) -> bool:
        """Run one frame through the fault plan; returns whether the
        frame (or its held copy) now owns the pooled buffer."""
        rank, dst = pair
        if chaos.fires("drop", rank, dst, s.seq):
            return False
        if chaos.fires("delay", rank, dst, s.seq):
            time.sleep(chaos.plan.delay_s)
        if chaos.fires("corrupt", rank, dst, s.seq):
            buf[:count].view(np.uint8)[0] ^= 0xFF
        frame = (op_id, s.seq, buf, count, crc, True)
        if chaos.fires("dup", rank, dst, s.seq):
            self._chan[pair].put(
                (op_id, s.seq, buf[:count].copy(), count, crc, False)
            )
        if chaos.fires("reorder", rank, dst, s.seq) and pair not in self._held:
            self._held[pair] = frame  # posted after the next frame
            return True
        self._chan[pair].put(frame)
        held = self._held.pop(pair, None)
        if held is not None:
            self._chan[pair].put(held)
        return True

    def _flush_held(self, rank: int) -> None:
        """End of a round's send phase: post any frame still held back
        by reorder injection so it arrives within its round."""
        for dst in range(self.nranks):
            frame = self._held.pop((rank, dst), None)
            if frame is not None:
                self._chan[(rank, dst)].put(frame)

    # -- receive path ------------------------------------------------------

    def _recv_one(self, rank: int, s, rs: RankOpStats, op_id: int,
                  deadline: float) -> None:
        pair = (s.src, rank)
        chan = self._chan[pair]
        pool = self._pools[pair]
        store = self.storage[rank][s.array]
        count = s.nbytes // SCALAR_BYTES
        self._pending[rank] = (
            f"recv {s.array} seq {s.seq} from rank {s.src}"
        )
        if self.chaos is None:
            t0 = time.perf_counter()
            item = chan.get(deadline, self._abort, lambda: None)
            rs.wait_s += time.perf_counter() - t0
            self._pending.pop(rank, None)
            f_op, f_seq, buf, got, crc, pooled = item
            try:
                if f_op != op_id or f_seq != s.seq:
                    raise TransportError(
                        f"rank {rank}: message reorder from rank {s.src} "
                        f"(got seq {f_seq}, expected {s.seq})"
                    )
                if self.integrity and payload_crc(buf[:got]) != crc:
                    rs.crc_failures += 1
                    raise TransportError(
                        f"rank {rank}: checksum mismatch from rank "
                        f"{s.src} on seq {f_seq} ({s.nbytes} bytes)"
                    )
                t0 = time.perf_counter()
                unpack_payload(store.values, store.valid, s, buf[:got])
                rs.recv_s += time.perf_counter() - t0
            finally:
                if pooled:
                    pool.give(buf)
            self._last_seq[pair] = s.seq
            return
        self._recv_chaotic(rank, s, rs, op_id, deadline, chan, pool,
                           store, count)
        self._pending.pop(rank, None)
        self._last_seq[pair] = s.seq

    def _recv_chaotic(self, rank, s, rs, op_id, deadline, chan, pool,
                      store, count) -> None:
        """Receive under chaos: dedup by seq, stash out-of-order frames,
        verify checksums, and repair loss/corruption from the sender's
        outbox — NACK after ``nack_timeout_s``, backing off
        exponentially up to ``backoff_cap_s``, bounded by the worker's
        hard deadline."""
        pair = (s.src, rank)
        delivered = self._delivered[pair]
        stash = self._stash[pair]
        outbox = self._outbox[pair]
        plan = self.chaos.plan
        backoff = plan.nack_timeout_s
        t0 = time.perf_counter()

        def install(payload, retransmit: bool) -> None:
            rs.wait_s += time.perf_counter() - t0
            t1 = time.perf_counter()
            unpack_payload(store.values, store.valid, s, payload[:count])
            rs.recv_s += time.perf_counter() - t1
            if retransmit:
                rs.retransmits += 1
                rs.retrans_bytes += s.nbytes
            delivered.add(s.seq)

        while True:
            if s.seq in stash:
                install(stash.pop(s.seq), retransmit=False)
                return
            item = chan.poll(
                min(time.monotonic() + backoff, deadline), self._abort
            )
            if item is None:
                if time.monotonic() >= deadline:
                    raise _Abort()
                rs.nacks += 1  # receive timeout: request a retransmit
                entry = outbox.get((op_id, s.seq))
                if entry is not None:
                    install(entry[0], retransmit=True)
                    return
                # Sender hasn't staged this payload yet — back off.
                backoff = min(backoff * 2.0, plan.backoff_cap_s)
                continue
            f_op, f_seq, buf, got, crc, pooled = item
            if f_op != op_id:  # stale frame from an abandoned attempt
                if pooled:
                    pool.give(buf)
                continue
            if f_seq in delivered or f_seq in stash:
                rs.dedup_drops += 1
                if pooled:
                    pool.give(buf)
                continue
            if payload_crc(buf[:got]) != crc:
                rs.crc_failures += 1
                if pooled:
                    pool.give(buf)
                entry = outbox.get((op_id, f_seq))
                if entry is None:
                    continue
                if f_seq == s.seq:
                    install(entry[0], retransmit=True)
                    return
                rs.retransmits += 1
                rs.retrans_bytes += entry[0].size * SCALAR_BYTES
                stash[f_seq] = entry[0].copy()
                continue
            if f_seq == s.seq:
                try:
                    install(buf[:got], retransmit=False)
                finally:
                    if pooled:
                        pool.give(buf)
                return
            stash[f_seq] = buf[:got].copy()  # out-of-order: hold for later
            if pooled:
                pool.give(buf)

    # -- reductions --------------------------------------------------------

    def _run_reduce(
        self, rank: int, piece: np.ndarray, op: str, lowered, op_id: int
    ) -> tuple[float, RankOpStats]:
        rs = RankOpStats()
        deadline = time.monotonic() + self.watchdog_s * 2
        chaos = self.chaos
        acc: dict[int, np.ndarray] = {rank: piece}
        for rnd in lowered.gather_rounds:
            for src, dst in rnd:
                if src == rank:
                    if chaos is not None and chaos.fires(
                        "crash", rank, dst, op_id
                    ):
                        raise ChaosCrash(rank)
                    nbytes = sum(
                        int(p.size) * SCALAR_BYTES for p in acc.values()
                    )
                    self._chan[(rank, dst)].put(acc)
                    acc = {}
                    self._wire(rs, rank, dst, nbytes)
                elif dst == rank:
                    self._pending[rank] = f"reduce gather from rank {src}"
                    t0 = time.perf_counter()
                    got = self._chan[(src, rank)].get(
                        deadline, self._abort, lambda: None
                    )
                    while isinstance(got, tuple):
                        # Stale frame from an earlier op (a chaos delay
                        # or duplicate landing late); recycle and skip.
                        if got[5]:
                            self._pools[(src, rank)].give(got[2])
                        got = self._chan[(src, rank)].get(
                            deadline, self._abort, lambda: None
                        )
                    rs.wait_s += time.perf_counter() - t0
                    self._pending.pop(rank, None)
                    acc.update(got)
        value = combine_pieces(acc, op) if rank == 0 else None
        for rnd in lowered.bcast_rounds:
            for src, dst in rnd:
                if src == rank:
                    self._chan[(rank, dst)].put(value)
                    self._wire(rs, rank, dst, SCALAR_BYTES)
                elif dst == rank:
                    self._pending[rank] = f"reduce bcast from rank {src}"
                    t0 = time.perf_counter()
                    value = self._chan[(src, rank)].get(
                        deadline, self._abort, lambda: None
                    )
                    while isinstance(value, tuple):
                        if value[5]:
                            self._pools[(src, rank)].give(value[2])
                        value = self._chan[(src, rank)].get(
                            deadline, self._abort, lambda: None
                        )
                    rs.wait_s += time.perf_counter() - t0
                    self._pending.pop(rank, None)
        self._barrier_wait(rank, rs)
        return float(value), rs

    @staticmethod
    def _wire(rs: RankOpStats, src: int, dst: int, nbytes: int) -> None:
        rs.sends += 1
        rs.bytes_sent += nbytes
        pair = (src, dst)
        rs.pair_msgs[pair] = rs.pair_msgs.get(pair, 0) + 1
        rs.pair_bytes[pair] = rs.pair_bytes.get(pair, 0) + nbytes
