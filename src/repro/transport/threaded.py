"""Threaded transport: one worker thread per rank.

Each rank runs a persistent worker; every lowered round is executed
concurrently — ranks post their sends to lock-free per-pair SPSC
channels (a ``collections.deque`` per (src, dst) pair; append/popleft
are atomic under the GIL, so no locks on the data path), then block
receiving what their round script expects, then meet at a real
``threading.Barrier``.  Payloads travel in pooled buffers: the sender
rents one from the pair's :class:`~repro.transport.base.BufferPool`,
packs the wire bytes into it through a compiled per-geometry kernel,
and the receiver returns it after install — steady-state rounds
allocate nothing.  Every message is counted at its wire size.

A watchdog bounds every blocking wait: if any rank is still stuck when
it expires, the main thread aborts the fleet, captures each stuck
worker's Python stack (``sys._current_frames``), and raises a
structured :class:`~repro.transport.base.DeadlockError` — a mismatched
schedule fails loudly instead of hanging.  After a deadlock the
transport is poisoned; only ``shutdown`` remains valid.
"""

from __future__ import annotations

import queue
import sys
import threading
import time
import traceback
from collections import deque

import numpy as np

from .base import (
    BufferPool,
    DeadlockError,
    OpReceipt,
    RankOpStats,
    Transport,
    TransportError,
    combine_pieces,
    pack_payload,
    unpack_payload,
)
from .lowering import SCALAR_BYTES, LoweredComm, lower_reduction

#: Spin interval while a channel is empty — long enough to release the
#: GIL, short enough to keep neighbour-exchange latency low.
_POLL_S = 0.0002

#: A barrier arrival that waited longer than this counts as a stall.
_STALL_S = 0.001


class _Abort(Exception):
    """Internal: the main thread cancelled the in-flight operation."""


class SPSCChannel:
    """Single-producer single-consumer queue for one (src, dst) pair."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: deque = deque()

    def put(self, item) -> None:
        self._items.append(item)

    def get(self, deadline: float, abort: threading.Event, waiting):
        while True:
            try:
                return self._items.popleft()
            except IndexError:
                if abort.is_set():
                    raise _Abort()
                if time.monotonic() > deadline:
                    waiting()
                    raise _Abort()
                time.sleep(_POLL_S)


class ThreadedTransport(Transport):
    """Worker-per-rank execution over per-pair SPSC channels."""

    name = "threaded"

    def __init__(self, nranks: int, watchdog_s: float = 30.0) -> None:
        super().__init__(nranks, watchdog_s)
        self.stats.backend = self.name
        self._chan = {
            (s, d): SPSCChannel()
            for s in range(nranks) for d in range(nranks) if s != d
        }
        # One send-buffer pool per channel (rented by the sender,
        # returned by the receiver after install) plus one per rank for
        # staging local copies; reused across rounds and operations.
        self._pools = {pair: BufferPool() for pair in self._chan}
        self._local_pools = [BufferPool() for _ in range(nranks)]
        self._cmd = [queue.SimpleQueue() for _ in range(nranks)]
        self._results: queue.SimpleQueue = queue.SimpleQueue()
        self._abort = threading.Event()
        self._barrier = threading.Barrier(nranks)
        self._pending: dict[int, str] = {}
        self._op_counter = 0
        self._threads: list[threading.Thread] = []
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self, storage: dict) -> None:
        super().start(storage)
        if self._started:
            return
        for rank in range(self.nranks):
            t = threading.Thread(
                target=self._worker_loop, args=(rank,),
                name=f"transport-rank-{rank}", daemon=True,
            )
            t.start()
            self._threads.append(t)
        self._started = True

    def shutdown(self) -> None:
        if not self._started:
            return
        self._abort.set()
        for rank in range(self.nranks):
            self._cmd[rank].put(("stop",))
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads = []
        self._started = False

    # -- operations --------------------------------------------------------

    def execute(self, lowered: LoweredComm) -> OpReceipt:
        scripts = self._scripts_for(lowered)
        return self._dispatch(scripts, lowered.algorithm)

    def reduce(self, pieces: dict[int, np.ndarray], op: str):
        self._check_alive()
        lowered = lower_reduction(
            op,
            {r: int(np.asarray(p).size) * SCALAR_BYTES
             for r, p in pieces.items()},
            self.nranks,
        )
        op_id = self._next_op()
        for rank in range(self.nranks):
            piece = np.asarray(pieces.get(rank, np.zeros(0)))
            self._cmd[rank].put(("reduce", op_id, piece, op, lowered))
        receipt = OpReceipt(algorithm="reduce-tree")
        values = self._collect(op_id, receipt)
        distinct = set(values.values())
        if len(distinct) != 1:
            raise TransportError(
                f"reduce-tree broadcast diverged across ranks: {distinct}"
            )
        self.stats.reduces += 1
        self.stats.count_op("reduce-tree")
        return distinct.pop(), receipt

    # -- dispatch ----------------------------------------------------------

    def _next_op(self) -> int:
        self._op_counter += 1
        return self._op_counter

    def _scripts_for(self, lowered: LoweredComm) -> dict[int, list[dict]]:
        """Per-rank round scripts: what each rank sends, receives (in
        per-source FIFO order), and installs locally in every round."""
        scripts: dict[int, list[dict]] = {r: [] for r in range(self.nranks)}
        for rnd in lowered.rounds:
            per = {
                r: {"send": [], "recv": [], "local": []}
                for r in range(self.nranks)
            }
            for s in rnd:
                if s.is_local:
                    per[s.src]["local"].append(s)
                else:
                    per[s.src]["send"].append(s)
                    per[s.dst]["recv"].append(s)
            for r in range(self.nranks):
                scripts[r].append(per[r])
        return scripts

    def _dispatch(self, scripts: dict[int, list[dict]],
                  algorithm: str) -> OpReceipt:
        self._check_alive()
        op_id = self._next_op()
        for rank in range(self.nranks):
            self._cmd[rank].put(("op", op_id, scripts[rank]))
        receipt = OpReceipt(algorithm=algorithm)
        self._collect(op_id, receipt)
        self.stats.count_op(algorithm)
        return receipt

    def _collect(self, op_id: int, receipt: OpReceipt) -> dict[int, float]:
        """Gather one completion per rank, enforcing the watchdog."""
        deadline = time.monotonic() + self.watchdog_s
        done: dict[int, float] = {}
        failures: list[str] = []
        while len(done) < self.nranks:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._deadlock(set(range(self.nranks)) - set(done))
            try:
                msg = self._results.get(timeout=min(remaining, 0.1))
            except queue.Empty:
                continue
            status, rank, msg_op, payload, value = msg
            if msg_op != op_id:
                continue  # stale completion from an aborted operation
            if status == "ok":
                receipt.absorb(payload)
                self.stats.absorb(rank, payload)
                done[rank] = value if value is not None else 0.0
            elif status == "aborted":
                if not failures:
                    self._deadlock(set(range(self.nranks)) - set(done))
                done[rank] = 0.0
            else:
                failures.append(f"rank {rank}: {payload}")
                done[rank] = 0.0
                # Release ranks blocked on the failed one, then keep
                # draining so every worker returns to its command loop.
                self._abort.set()
                self._barrier.abort()
        if failures:
            self._poisoned = "worker failure"
            raise TransportError(
                "threaded transport worker failed:\n" + "\n".join(failures)
            )
        return done

    def _deadlock(self, missing: set[int]):
        self._poisoned = "deadlock watchdog"
        self._abort.set()
        self._barrier.abort()
        stacks: dict[int, str] = {}
        frames = sys._current_frames()
        for rank, t in enumerate(self._threads):
            if rank in missing and t.ident in frames:
                stacks[rank] = "".join(
                    traceback.format_stack(frames[t.ident])
                )
        stuck = [
            {
                "rank": rank,
                "state": "stuck",
                "waiting_on": self._pending.get(rank, "unknown"),
            }
            for rank in sorted(missing)
        ]
        raise DeadlockError(self.name, self.watchdog_s, stuck, stacks)

    # -- worker ------------------------------------------------------------

    def _worker_loop(self, rank: int) -> None:
        while True:
            cmd = self._cmd[rank].get()
            kind = cmd[0]
            if kind == "stop":
                return
            op_id = cmd[1]
            try:
                if kind == "op":
                    rs = self._run_op(rank, cmd[2])
                    self._results.put(("ok", rank, op_id, rs, None))
                else:  # reduce
                    _, _, piece, op, lowered = cmd
                    value, rs = self._run_reduce(rank, piece, op, lowered)
                    self._results.put(("ok", rank, op_id, rs, value))
            except _Abort:
                self._results.put(("aborted", rank, op_id, None, None))
            except threading.BrokenBarrierError:
                self._results.put(("aborted", rank, op_id, None, None))
            except Exception:  # noqa: BLE001 - reported to the main thread
                self._results.put(
                    ("error", rank, op_id, traceback.format_exc(), None)
                )

    def _barrier_wait(self, rank: int, rs: RankOpStats) -> None:
        self._pending[rank] = "barrier"
        t0 = time.perf_counter()
        try:
            self._barrier.wait(timeout=self.watchdog_s * 2)
        finally:
            stall = time.perf_counter() - t0
            rs.barrier_s += stall
            if stall > _STALL_S:
                rs.barrier_stalls += 1
            self._pending.pop(rank, None)

    def _run_op(self, rank: int, script: list[dict]) -> RankOpStats:
        rs = RankOpStats()
        # 2x the main thread's watchdog: the collector is the primary
        # detector (it captures stacks while workers are still stuck);
        # this is only the backstop should the collector itself die.
        deadline = time.monotonic() + self.watchdog_s * 2
        for rnd in script:
            for s in rnd["send"]:
                t0 = time.perf_counter()
                store = self.storage[rank][s.array]
                count = s.nbytes // SCALAR_BYTES
                buf = self._pools[(rank, s.dst)].rent(count, rs)
                pack_payload(store.values, s, buf[:count])
                self._chan[(rank, s.dst)].put((s.seq, buf, count))
                rs.send_s += time.perf_counter() - t0
                rs.sends += 1
                rs.bytes_sent += s.nbytes
                pair = (rank, s.dst)
                rs.pair_msgs[pair] = rs.pair_msgs.get(pair, 0) + 1
                rs.pair_bytes[pair] = rs.pair_bytes.get(pair, 0) + s.nbytes
            for s in rnd["local"]:
                store = self.storage[rank][s.array]
                count = s.nbytes // SCALAR_BYTES
                pool = self._local_pools[rank]
                buf = pool.rent(count, rs)
                pack_payload(store.values, s, buf[:count])
                unpack_payload(store.values, store.valid, s, buf[:count])
                pool.give(buf)
                rs.local_copies += 1
            for s in rnd["recv"]:
                self._pending[rank] = (
                    f"recv {s.array} seq {s.seq} from rank {s.src}"
                )
                t0 = time.perf_counter()
                seq, buf, count = self._chan[(s.src, rank)].get(
                    deadline, self._abort, lambda: None
                )
                rs.wait_s += time.perf_counter() - t0
                self._pending.pop(rank, None)
                if seq != s.seq:
                    raise TransportError(
                        f"rank {rank}: message reorder from rank {s.src} "
                        f"(got seq {seq}, expected {s.seq})"
                    )
                t0 = time.perf_counter()
                store = self.storage[rank][s.array]
                unpack_payload(store.values, store.valid, s, buf[:count])
                self._pools[(s.src, rank)].give(buf)
                rs.recv_s += time.perf_counter() - t0
            self._barrier_wait(rank, rs)
        return rs

    def _run_reduce(
        self, rank: int, piece: np.ndarray, op: str, lowered
    ) -> tuple[float, RankOpStats]:
        rs = RankOpStats()
        deadline = time.monotonic() + self.watchdog_s * 2
        acc: dict[int, np.ndarray] = {rank: piece}
        for rnd in lowered.gather_rounds:
            for src, dst in rnd:
                if src == rank:
                    nbytes = sum(
                        int(p.size) * SCALAR_BYTES for p in acc.values()
                    )
                    self._chan[(rank, dst)].put(acc)
                    acc = {}
                    self._wire(rs, rank, dst, nbytes)
                elif dst == rank:
                    self._pending[rank] = f"reduce gather from rank {src}"
                    t0 = time.perf_counter()
                    got = self._chan[(src, rank)].get(
                        deadline, self._abort, lambda: None
                    )
                    rs.wait_s += time.perf_counter() - t0
                    self._pending.pop(rank, None)
                    acc.update(got)
        value = combine_pieces(acc, op) if rank == 0 else None
        for rnd in lowered.bcast_rounds:
            for src, dst in rnd:
                if src == rank:
                    self._chan[(rank, dst)].put(value)
                    self._wire(rs, rank, dst, SCALAR_BYTES)
                elif dst == rank:
                    self._pending[rank] = f"reduce bcast from rank {src}"
                    t0 = time.perf_counter()
                    value = self._chan[(src, rank)].get(
                        deadline, self._abort, lambda: None
                    )
                    rs.wait_s += time.perf_counter() - t0
                    self._pending.pop(rank, None)
        self._barrier_wait(rank, rs)
        return float(value), rs

    @staticmethod
    def _wire(rs: RankOpStats, src: int, dst: int, nbytes: int) -> None:
        rs.sends += 1
        rs.bytes_sent += nbytes
        pair = (src, dst)
        rs.pair_msgs[pair] = rs.pair_msgs.get(pair, 0) + 1
        rs.pair_bytes[pair] = rs.pair_bytes.get(pair, 0) + nbytes
