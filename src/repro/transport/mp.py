"""Multiprocess transport: one OS process per rank.

Rank storage lives in a single ``multiprocessing.shared_memory`` arena
(8-byte-aligned values + validity masks per (rank, array)); the main
process and every worker map numpy views over the same segment, so
compute results written by the executor are immediately visible to the
rank that must send them.

The control plane is pickled: per-rank command queues carry round
scripts (:class:`~repro.transport.lowering.SendOp` lists), per-pair
queues carry message tags, and a results queue returns per-op
:class:`~repro.transport.base.RankOpStats`.  Payloads travel through a
separate shared-memory *data* arena: the sender copies the wire bytes
to a per-send offset the dispatcher assigned, then posts the tag; the
queue's ordering is the happens-before edge that makes the bytes safe
to read.  Rounds are separated by a real ``multiprocessing.Barrier``.

Wire integrity: each tag is ``(op_id, seq, crc)`` and the receiver
verifies the CRC32 of the arena payload — a clean-run mismatch is a
hard error.  Under chaos (:meth:`~repro.transport.base.Transport.
attach_chaos`) the sender additionally mirrors every pristine payload
into a *mirror* arena behind an ``(op_id << 32) | crc`` header written
payload-first, so a receiver that times out (NACK, bounded exponential
backoff) or sees a corrupt payload repairs it from the mirror without
the sender's involvement — the mirror is the shared-memory outbox.

Rank crash recovery: an injected crash calls ``os._exit`` at a send
boundary (a safe point holding no queue or barrier locks).  The
collector notices the dead process, quiesces the survivors, drains the
queues, restores the storage arena from the byte checkpoint taken at
operation start, respawns the dead workers (they re-attach the shared
segments by name), resets the barrier, and replays the operation — up
to ``max_rank_restarts`` times, then raises
:class:`~repro.transport.base.RankCrashError`.

A watchdog bounds every wait.  On expiry the main process aborts the
fleet, reads each rank's last self-reported state — plus a heartbeat
counter and completed-round slot — from the shared status block, and
raises a structured :class:`~repro.transport.base.DeadlockError` (with
the injected-fault ledger and per-channel last-received sequence
numbers as ``fault_context`` under chaos); ``shutdown`` then joins (or
terminates) every worker so no zombie processes survive.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import secrets
import threading
import time
from multiprocessing import shared_memory

import numpy as np

from .base import (
    DeadlockError,
    OpReceipt,
    RankCrashError,
    RankOpStats,
    Transport,
    TransportError,
    combine_pieces,
    extract_payload,
    install_payload,
    pack_payload,
    unpack_payload,
)
from .integrity import KINDS, ChaosState, payload_crc
from .lowering import SCALAR_BYTES, LoweredComm, lower_reduction

_ALIGN = 8
_POLL_S = 0.02

# Status block stride per rank: [state, round, partner, seq, heartbeat,
# completed rounds].
_STRIDE = 6

# Worker self-reported states for the watchdog status block.
_IDLE, _RUNNING, _RECV_WAIT, _BARRIER = 0, 1, 2, 3
_STATE_NAMES = {
    _IDLE: "idle",
    _RUNNING: "running",
    _RECV_WAIT: "waiting on recv",
    _BARRIER: "waiting at barrier",
}


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


class _Abort(Exception):
    pass


class _RankCrash(Exception):
    """Internal: dead worker processes found; carries the rank list."""

    def __init__(self, dead: list[int]) -> None:
        super().__init__(f"dead ranks {dead}")
        self.dead = dead


def _np_views(sm: shared_memory.SharedMemory, entries):
    """(values, valid) views for ``entries`` of a storage layout table:
    (rank, name, shape, values_offset, valid_offset)."""
    views = {}
    for rank, name, shape, off_values, off_valid in entries:
        count = int(np.prod(shape)) if shape else 1
        values = np.ndarray(shape, dtype=np.float64, buffer=sm.buf,
                            offset=off_values)
        valid = np.ndarray(shape, dtype=bool, buffer=sm.buf,
                           offset=off_valid)
        assert values.size == count
        views[(rank, name)] = (values, valid)
    return views


class _WorkerState:
    """Per-process context for one rank's worker loop."""

    def __init__(self, rank, nranks, storage_name, layout, chans, barrier,
                 abort, status, watchdog_s, integrity, plan, ledger,
                 crash_counter, last_recv):
        self.rank = rank
        self.nranks = nranks
        self.chans = chans
        self.barrier = barrier
        self.abort = abort
        self.status = status
        self.watchdog_s = watchdog_s
        self.integrity = integrity
        # Rebuild the chaos state locally over the shared primitives:
        # every process sees one ledger and one crash budget.
        self.chaos = (
            ChaosState(plan, nranks, ledger, crash_counter)
            if plan is not None else None
        )
        self.last_recv = last_recv
        self.held: dict = {}
        self.storage_sm = shared_memory.SharedMemory(name=storage_name)
        self.views = _np_views(
            self.storage_sm, [e for e in layout if e[0] == rank]
        )
        self.arenas: dict[str, shared_memory.SharedMemory] = {}

    def set_state(self, state: int, rnd: int = -1, partner: int = -1,
                  seq: int = -1) -> None:
        base = self.rank * _STRIDE
        self.status[base] = state
        self.status[base + 1] = rnd
        self.status[base + 2] = partner
        self.status[base + 3] = seq
        self.status[base + 4] += 1  # heartbeat

    def beat(self) -> None:
        self.status[self.rank * _STRIDE + 4] += 1

    def note_round(self, rnd: int) -> None:
        self.status[self.rank * _STRIDE + 5] = rnd + 1

    def note_recv(self, src: int, seq: int) -> None:
        self.last_recv[src * self.nranks + self.rank] = seq

    def arena(self, name: str) -> shared_memory.SharedMemory:
        sm = self.arenas.get(name)
        if sm is None:
            sm = self.arenas[name] = shared_memory.SharedMemory(name=name)
        return sm

    def ctrl_get(self, src: int, deadline: float):
        q = self.chans[(src, self.rank)]
        while True:
            try:
                return q.get(timeout=_POLL_S)
            except queue_mod.Empty:
                self.beat()
                if self.abort.is_set() or time.monotonic() > deadline:
                    raise _Abort()

    def ctrl_poll(self, src: int, deadline: float):
        """Like :meth:`ctrl_get` but returns ``None`` at ``deadline`` —
        the NACK timer of the chaos receive path."""
        q = self.chans[(src, self.rank)]
        while True:
            timeout = min(_POLL_S, max(deadline - time.monotonic(), 0.001))
            try:
                return q.get(timeout=timeout)
            except queue_mod.Empty:
                self.beat()
                if self.abort.is_set():
                    raise _Abort()
                if time.monotonic() > deadline:
                    return None

    def die(self) -> None:
        """Injected rank crash: die at a safe point.  The short sleep
        lets the queues' feeder threads flush in-flight puts so the
        survivors never observe a torn pickle."""
        time.sleep(0.05)
        os._exit(13)

    def close(self) -> None:
        self.views = {}
        self.storage_sm.close()
        for sm in self.arenas.values():
            sm.close()


def _mp_worker(rank, nranks, storage_name, layout, cmd_q, res_q, chans,
               barrier, abort, status, watchdog_s, integrity, plan,
               ledger, crash_counter, last_recv):
    ctx = _WorkerState(rank, nranks, storage_name, layout, chans, barrier,
                       abort, status, watchdog_s, integrity, plan,
                       crash_counter=crash_counter, ledger=ledger,
                       last_recv=last_recv)
    try:
        while True:
            cmd = cmd_q.get()
            kind = cmd[0]
            if kind == "stop":
                res_q.put(("bye", rank, -1, None, None))
                return
            op_id = cmd[1]
            ctx.set_state(_RUNNING)
            try:
                if kind == "op":
                    _, _, script, data_name, offsets, mirror_name, moffs = cmd
                    rs = _run_op(ctx, op_id, script, data_name, offsets,
                                 mirror_name, moffs)
                    res_q.put(("ok", rank, op_id, rs, None))
                else:  # reduce
                    _, _, piece, op, lowered = cmd
                    value, rs = _run_reduce(ctx, op_id, piece, op, lowered)
                    res_q.put(("ok", rank, op_id, rs, value))
            except (_Abort, threading.BrokenBarrierError):
                res_q.put(("aborted", rank, op_id, None, None))
            except Exception as exc:  # noqa: BLE001 - reported to main
                import traceback

                res_q.put(
                    ("error", rank, op_id, traceback.format_exc(), None)
                )
                del exc
            ctx.set_state(_IDLE)
    finally:
        ctx.close()


def _wire(rs: RankOpStats, src: int, dst: int, nbytes: int) -> None:
    rs.sends += 1
    rs.bytes_sent += nbytes
    pair = (src, dst)
    rs.pair_msgs[pair] = rs.pair_msgs.get(pair, 0) + 1
    rs.pair_bytes[pair] = rs.pair_bytes.get(pair, 0) + nbytes


def _mirror_header(op_id: int, crc: int) -> int:
    return ((op_id & 0xFFFFFFFF) << 32) | (crc & 0xFFFFFFFF)


def _post_send(ctx: _WorkerState, s, rs, op_id, data, offsets,
               mirror, moffs) -> None:
    """Pack one send into the data arena and post its tag, running the
    fault plan when chaos is armed."""
    rank = ctx.rank
    chaos = ctx.chaos
    if chaos is not None and chaos.fires("crash", rank, s.dst, s.seq):
        ctx.die()
    t0 = time.perf_counter()
    values, _valid = ctx.views[(rank, s.array)]
    count = s.nbytes // SCALAR_BYTES
    # Pack straight into the shared-memory arena: the arena view IS the
    # wire buffer, so no pool is needed here (the threaded backend's
    # pool counters have no multiprocess counterpart — they stay 0 by
    # design).
    dst_view = np.ndarray(
        (count,), dtype=np.float64, buffer=data.buf,
        offset=offsets[s.seq],
    )
    pack_payload(values, s, dst_view)
    crc = payload_crc(dst_view) if ctx.integrity else 0
    tag = (op_id, s.seq, crc)
    pair = (rank, s.dst)
    if chaos is None:
        ctx.chans[pair].put(tag)
    else:
        # Mirror the pristine payload, then publish its header — the
        # write order receivers rely on when repairing from the mirror.
        m_off = moffs[s.seq]
        mirror_pay = np.ndarray(
            (count,), dtype=np.float64, buffer=mirror.buf,
            offset=m_off + 8,
        )
        mirror_pay[:] = dst_view
        header = np.ndarray(
            (1,), dtype=np.uint64, buffer=mirror.buf, offset=m_off
        )
        header[0] = _mirror_header(op_id, crc)
        if not chaos.fires("drop", rank, s.dst, s.seq):
            if chaos.fires("delay", rank, s.dst, s.seq):
                time.sleep(chaos.plan.delay_s)
            if chaos.fires("corrupt", rank, s.dst, s.seq):
                dst_view.view(np.uint8)[0] ^= 0xFF
            q = ctx.chans[pair]
            if chaos.fires("dup", rank, s.dst, s.seq):
                q.put(tag)
            if (
                chaos.fires("reorder", rank, s.dst, s.seq)
                and pair not in ctx.held
            ):
                ctx.held[pair] = tag  # posted after the next tag
            else:
                q.put(tag)
                held = ctx.held.pop(pair, None)
                if held is not None:
                    q.put(held)
    rs.send_s += time.perf_counter() - t0
    # The logical send is counted exactly once even when the tag is
    # dropped — the repair is accounted separately, keeping the
    # canonical ledger equal to the plan's prediction.
    _wire(rs, rank, s.dst, s.nbytes)


def _flush_held(ctx: _WorkerState) -> None:
    for pair, tag in list(ctx.held.items()):
        ctx.chans[pair].put(tag)
        del ctx.held[pair]


def _try_mirror(ctx, s, op_id, mirror, moffs, count):
    """The mirror payload for one send, or ``None`` if its header does
    not (yet) name this op or the payload is mid-write."""
    m_off = moffs.get(s.seq)
    if m_off is None:  # no sender staged this seq (schedule mismatch)
        return None
    header = np.ndarray(
        (1,), dtype=np.uint64, buffer=mirror.buf, offset=m_off
    )
    h = int(header[0])
    if (h >> 32) != (op_id & 0xFFFFFFFF):
        return None
    crc = h & 0xFFFFFFFF
    payload = np.ndarray(
        (count,), dtype=np.float64, buffer=mirror.buf, offset=m_off + 8
    )
    if ctx.integrity and payload_crc(payload) != crc:
        return None
    return payload


def _recv_chaotic(ctx, s, rs, op_id, rnd_no, data, offsets, mirror,
                  moffs, deadline, delivered, pending) -> None:
    """Receive under chaos: dedup by seq, stash out-of-order tags,
    verify checksums, and repair loss/corruption from the mirror arena
    — NACK after ``nack_timeout_s`` with bounded exponential backoff."""
    rank = ctx.rank
    plan = ctx.chaos.plan
    count = s.nbytes // SCALAR_BYTES
    values, valid = ctx.views[(rank, s.array)]
    off = offsets.get(s.seq)
    # A mismatched schedule can expect a seq no sender staged: no arena
    # slot exists, so the NACK loop below spins until the watchdog.
    arena_view = (
        None if off is None else np.ndarray(
            (count,), dtype=np.float64, buffer=data.buf, offset=off
        )
    )
    backoff = plan.nack_timeout_s
    t0 = time.perf_counter()

    def install(payload, retransmit: bool) -> None:
        rs.wait_s += time.perf_counter() - t0
        t1 = time.perf_counter()
        unpack_payload(values, valid, s, payload)
        rs.recv_s += time.perf_counter() - t1
        if retransmit:
            rs.retransmits += 1
            rs.retrans_bytes += s.nbytes
        delivered.add(s.seq)
        ctx.note_recv(s.src, s.seq)

    while True:
        if s.seq in pending and arena_view is not None:
            crc = pending.pop(s.seq)
            if not ctx.integrity or payload_crc(arena_view) == crc:
                install(arena_view, retransmit=False)
                return
            rs.crc_failures += 1
            payload = _try_mirror(ctx, s, op_id, mirror, moffs, count)
            if payload is not None:
                install(payload, retransmit=True)
                return
            # Mirror mid-write: fall through to the NACK loop.
        tag = ctx.ctrl_poll(
            s.src, min(time.monotonic() + backoff, deadline)
        )
        if tag is None:
            if time.monotonic() >= deadline:
                raise _Abort()
            rs.nacks += 1  # receive timeout: pull the retransmit
            payload = _try_mirror(ctx, s, op_id, mirror, moffs, count)
            if payload is not None:
                install(payload, retransmit=True)
                return
            backoff = min(backoff * 2.0, plan.backoff_cap_s)
            continue
        if not (isinstance(tag, tuple) and len(tag) == 3):
            continue  # stale reduce payload from an abandoned attempt
        f_op, f_seq, crc = tag
        if f_op != op_id:
            continue
        if f_seq in delivered or f_seq in pending:
            rs.dedup_drops += 1
            continue
        if f_seq != s.seq:
            pending[f_seq] = crc  # out-of-order: hold the tag for later
            continue
        if arena_view is not None and (
            not ctx.integrity or payload_crc(arena_view) == crc
        ):
            install(arena_view, retransmit=False)
            return
        rs.crc_failures += 1
        payload = _try_mirror(ctx, s, op_id, mirror, moffs, count)
        if payload is not None:
            install(payload, retransmit=True)
            return
        backoff = min(backoff * 2.0, plan.backoff_cap_s)


def _run_op(ctx: _WorkerState, op_id, script, data_name, offsets,
            mirror_name, moffs) -> RankOpStats:
    rs = RankOpStats()
    rank = ctx.rank
    # Backstop only: the main process's collector fires at watchdog_s
    # and reads the status block while workers are still stuck.
    deadline = time.monotonic() + ctx.watchdog_s * 2
    data = ctx.arena(data_name) if data_name else None
    mirror = ctx.arena(mirror_name) if mirror_name else None
    # Per-source dedup sets and out-of-order tag stashes, fresh per op.
    delivered: dict[int, set] = {}
    pending: dict[int, dict] = {}
    for rnd_no, rnd in enumerate(script):
        for s in rnd["send"]:
            _post_send(ctx, s, rs, op_id, data, offsets, mirror, moffs)
        if ctx.chaos is not None:
            _flush_held(ctx)
        for s in rnd["local"]:
            values, valid = ctx.views[(rank, s.array)]
            install_payload(values, valid, s, extract_payload(values, s))
            rs.local_copies += 1
        for s in rnd["recv"]:
            ctx.set_state(_RECV_WAIT, rnd_no, s.src, s.seq)
            if ctx.chaos is not None:
                _recv_chaotic(
                    ctx, s, rs, op_id, rnd_no, data, offsets, mirror,
                    moffs, deadline,
                    delivered.setdefault(s.src, set()),
                    pending.setdefault(s.src, {}),
                )
                ctx.set_state(_RUNNING, rnd_no)
                continue
            t0 = time.perf_counter()
            tag = ctx.ctrl_get(s.src, deadline)
            rs.wait_s += time.perf_counter() - t0
            ctx.set_state(_RUNNING, rnd_no)
            f_op, f_seq, crc = tag
            if f_op != op_id or f_seq != s.seq:
                raise TransportError(
                    f"rank {rank}: message reorder from rank {s.src} "
                    f"(got seq {f_seq}, expected {s.seq})"
                )
            t0 = time.perf_counter()
            count = s.nbytes // SCALAR_BYTES
            payload = np.ndarray(
                (count,), dtype=np.float64, buffer=data.buf,
                offset=offsets[s.seq],
            )
            if ctx.integrity and payload_crc(payload) != crc:
                rs.crc_failures += 1
                raise TransportError(
                    f"rank {rank}: checksum mismatch from rank {s.src} "
                    f"on seq {f_seq} ({s.nbytes} bytes)"
                )
            values, valid = ctx.views[(rank, s.array)]
            unpack_payload(values, valid, s, payload)
            ctx.note_recv(s.src, s.seq)
            rs.recv_s += time.perf_counter() - t0
        ctx.set_state(_BARRIER, rnd_no)
        t0 = time.perf_counter()
        ctx.barrier.wait(timeout=ctx.watchdog_s * 2)
        ctx.note_round(rnd_no)
        stall = time.perf_counter() - t0
        rs.barrier_s += stall
        if stall > 0.001:
            rs.barrier_stalls += 1
    return rs


def _run_reduce(ctx: _WorkerState, op_id, piece, op, lowered):
    rs = RankOpStats()
    rank = ctx.rank
    chaos = ctx.chaos
    deadline = time.monotonic() + ctx.watchdog_s * 2
    acc = {rank: np.asarray(piece)}
    for rnd in lowered.gather_rounds:
        for src, dst in rnd:
            if src == rank:
                if chaos is not None and chaos.fires(
                    "crash", rank, dst, op_id
                ):
                    ctx.die()
                nbytes = sum(
                    int(p.size) * SCALAR_BYTES for p in acc.values()
                )
                ctx.chans[(rank, dst)].put(acc)
                acc = {}
                _wire(rs, rank, dst, nbytes)
            elif dst == rank:
                ctx.set_state(_RECV_WAIT, -1, src)
                t0 = time.perf_counter()
                got = ctx.ctrl_get(src, deadline)
                while isinstance(got, tuple):
                    got = ctx.ctrl_get(src, deadline)  # stale op tag
                rs.wait_s += time.perf_counter() - t0
                ctx.set_state(_RUNNING)
                acc.update(got)
    value = combine_pieces(acc, op) if rank == 0 else None
    for rnd in lowered.bcast_rounds:
        for src, dst in rnd:
            if src == rank:
                ctx.chans[(rank, dst)].put(value)
                _wire(rs, rank, dst, SCALAR_BYTES)
            elif dst == rank:
                ctx.set_state(_RECV_WAIT, -1, src)
                t0 = time.perf_counter()
                value = ctx.ctrl_get(src, deadline)
                while isinstance(value, tuple):
                    value = ctx.ctrl_get(src, deadline)  # stale op tag
                rs.wait_s += time.perf_counter() - t0
                ctx.set_state(_RUNNING)
    ctx.set_state(_BARRIER)
    t0 = time.perf_counter()
    ctx.barrier.wait(timeout=ctx.watchdog_s * 2)
    stall = time.perf_counter() - t0
    rs.barrier_s += stall
    if stall > 0.001:
        rs.barrier_stalls += 1
    return float(value), rs


class MultiprocessTransport(Transport):
    """One OS process per rank over shared-memory storage."""

    name = "multiprocess"

    def __init__(self, nranks: int, watchdog_s: float = 30.0) -> None:
        super().__init__(nranks, watchdog_s)
        self.stats.backend = self.name
        self._token = secrets.token_hex(4)
        self._ctx = mp.get_context()
        self._storage_sm: shared_memory.SharedMemory | None = None
        self._layout: list[tuple] = []
        self._data_sm: shared_memory.SharedMemory | None = None
        self._data_gen = 0
        self._mirror_sm: shared_memory.SharedMemory | None = None
        self._mirror_gen = 0
        self._retired_data: list[shared_memory.SharedMemory] = []
        self._chans = {
            (s, d): self._ctx.Queue()
            for s in range(nranks) for d in range(nranks) if s != d
        }
        self._cmd = [self._ctx.Queue() for _ in range(nranks)]
        self._results = self._ctx.Queue()
        self._abort = self._ctx.Event()
        self._barrier = self._ctx.Barrier(nranks)
        self._status = self._ctx.RawArray("q", nranks * _STRIDE)
        self._last_recv = self._ctx.RawArray("q", nranks * nranks)
        for i in range(nranks * nranks):
            self._last_recv[i] = -1
        self._ledger_arr = None
        self._crash_counter = None
        self._procs: list = []
        self._op_counter = 0
        self._started = False
        self._shut_down = False

    def make_chaos_state(self, plan) -> ChaosState:
        """Chaos state over shared primitives so worker processes and
        the collector see one fault ledger and one crash budget."""
        self._ledger_arr = self._ctx.RawArray("q", self.nranks * len(KINDS))
        self._crash_counter = self._ctx.Value("q", 0)
        return ChaosState(
            plan, self.nranks, self._ledger_arr, self._crash_counter
        )

    # -- storage -----------------------------------------------------------

    def create_storage(self, specs):
        specs = list(specs)
        offset = 0
        layout = []
        for rank, name, shape in specs:
            count = int(np.prod(shape)) if shape else 1
            off_values = offset
            offset = _align(offset + count * 8)
            off_valid = offset
            offset = _align(offset + count)
            layout.append((rank, name, shape, off_values, off_valid))
        self._storage_sm = shared_memory.SharedMemory(
            create=True, size=max(offset, _ALIGN),
            name=f"repro-st-{self._token}",
        )
        self._storage_sm.buf[:] = b"\x00" * len(self._storage_sm.buf)
        self._layout = layout
        return _np_views(self._storage_sm, layout)

    # -- lifecycle ---------------------------------------------------------

    def _spawn_proc(self, rank: int):
        plan = self.chaos.plan if self.chaos is not None else None
        p = self._ctx.Process(
            target=_mp_worker,
            args=(rank, self.nranks, self._storage_sm.name, self._layout,
                  self._cmd[rank], self._results, self._chans,
                  self._barrier, self._abort, self._status,
                  self.watchdog_s, self.integrity, plan,
                  self._ledger_arr, self._crash_counter, self._last_recv),
            name=f"transport-rank-{rank}",
            daemon=True,
        )
        p.start()
        return p

    def start(self, storage: dict) -> None:
        super().start(storage)
        if self._started:
            return
        if self._storage_sm is None:
            self.create_storage([])  # reduce-only session: empty arena
        for rank in range(self.nranks):
            self._procs.append(self._spawn_proc(rank))
        self._started = True

    def shutdown(self) -> None:
        if self._shut_down:
            return
        self._shut_down = True
        self._abort.set()
        if self._started:
            for rank in range(self.nranks):
                try:
                    self._cmd[rank].put(("stop",))
                except (ValueError, OSError):
                    pass
            deadline = time.monotonic() + 5.0
            for p in self._procs:
                p.join(timeout=max(0.1, deadline - time.monotonic()))
            for p in self._procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=2.0)
        for q in [*self._chans.values(), *self._cmd, self._results]:
            q.cancel_join_thread()
            q.close()
        for sm in [self._storage_sm, self._data_sm, self._mirror_sm,
                   *self._retired_data]:
            if sm is None:
                continue
            try:
                sm.close()
            except BufferError:
                pass  # executor still holds views; freed when they die
            try:
                sm.unlink()
            except FileNotFoundError:
                pass

    # -- dispatch ----------------------------------------------------------

    def _next_op(self) -> int:
        self._op_counter += 1
        return self._op_counter

    def _ensure_data_arena(self, nbytes: int) -> shared_memory.SharedMemory:
        if self._data_sm is not None and self._data_sm.size >= nbytes:
            return self._data_sm
        size = 1 << max(12, (max(nbytes, 1) - 1).bit_length())
        if self._data_sm is not None:
            # Workers may still have the old generation mapped; retire it
            # and unlink everything at shutdown.
            self._retired_data.append(self._data_sm)
        self._data_gen += 1
        self._data_sm = shared_memory.SharedMemory(
            create=True, size=size,
            name=f"repro-dt-{self._token}-g{self._data_gen}",
        )
        return self._data_sm

    def _ensure_mirror_arena(self, nbytes: int) -> shared_memory.SharedMemory:
        if self._mirror_sm is not None and self._mirror_sm.size >= nbytes:
            return self._mirror_sm
        size = 1 << max(12, (max(nbytes, 1) - 1).bit_length())
        if self._mirror_sm is not None:
            self._retired_data.append(self._mirror_sm)
        self._mirror_gen += 1
        self._mirror_sm = shared_memory.SharedMemory(
            create=True, size=size,
            name=f"repro-mr-{self._token}-g{self._mirror_gen}",
        )
        return self._mirror_sm

    def _scripts_for(self, lowered: LoweredComm):
        scripts = {r: [] for r in range(self.nranks)}
        for rnd in lowered.rounds:
            per = {
                r: {"send": [], "recv": [], "local": []}
                for r in range(self.nranks)
            }
            for s in rnd:
                if s.is_local:
                    per[s.src]["local"].append(s)
                else:
                    per[s.src]["send"].append(s)
                    per[s.dst]["recv"].append(s)
            for r in range(self.nranks):
                scripts[r].append(per[r])
        return scripts

    def execute(self, lowered: LoweredComm) -> OpReceipt:
        return self._dispatch(self._scripts_for(lowered), lowered.algorithm)

    def _dispatch(self, scripts, algorithm: str) -> OpReceipt:
        offsets: dict[int, int] = {}
        moffs: dict[int, int] = {}
        offset = 0
        m_offset = 0
        for script in scripts.values():
            for rnd in script:
                for s in rnd["send"]:
                    offsets[s.seq] = offset
                    offset = _align(offset + s.nbytes)
                    moffs[s.seq] = m_offset
                    m_offset = _align(m_offset + 8 + s.nbytes)
        data = self._ensure_data_arena(offset) if offset else None
        mirror = None
        if self.chaos is not None and m_offset:
            mirror = self._ensure_mirror_arena(m_offset)
            # Stale headers must not validate against the new op.
            mirror.buf[:m_offset] = b"\x00" * m_offset
        _, receipt = self._submit(
            lambda rank, op_id: (
                "op", op_id, scripts[rank],
                data.name if data else None, offsets,
                mirror.name if mirror else None, moffs,
            ),
            algorithm, checkpoint=True,
        )
        return receipt

    def reduce(self, pieces: dict[int, np.ndarray], op: str):
        lowered = lower_reduction(
            op,
            {r: int(np.asarray(p).size) * SCALAR_BYTES
             for r, p in pieces.items()},
            self.nranks,
        )
        arrs = {
            rank: np.asarray(pieces.get(rank, np.zeros(0)))
            for rank in range(self.nranks)
        }
        values, receipt = self._submit(
            lambda rank, op_id: ("reduce", op_id, arrs[rank], op, lowered),
            "reduce-tree", checkpoint=False,
        )
        distinct = set(values.values())
        if len(distinct) != 1:
            raise TransportError(
                f"reduce-tree broadcast diverged across ranks: {distinct}"
            )
        self.stats.reduces += 1
        return distinct.pop(), receipt

    def _crash_armed(self) -> bool:
        return self.chaos is not None and self.chaos.plan.rate("crash") > 0.0

    def _submit(self, make_cmd, algorithm: str,
                checkpoint: bool) -> tuple[dict[int, float], OpReceipt]:
        """Dispatch one operation and collect completions, replaying
        from the storage-arena checkpoint when injected crashes kill
        worker processes — up to ``max_rank_restarts`` times."""
        self._check_alive()
        snapshot = None
        if checkpoint and self._crash_armed() and self._storage_sm is not None:
            snapshot = bytes(self._storage_sm.buf)
        crashes = 0
        while True:
            op_id = self._next_op()
            for rank in range(self.nranks):
                self._cmd[rank].put(make_cmd(rank, op_id))
            receipt = OpReceipt(algorithm=algorithm)
            try:
                values = self._collect(op_id, receipt)
            except _RankCrash as crash:
                crashes += 1
                if crashes > self.max_rank_restarts:
                    self._poisoned = "rank crash budget exhausted"
                    raise RankCrashError(
                        self.name, crash.dead, crashes - 1,
                        self.max_rank_restarts,
                    ) from None
                t0 = time.monotonic()
                self._recover(crash.dead, snapshot)
                self.stats.restarts += len(crash.dead)
                self.stats.recovery_s += time.monotonic() - t0
                continue
            self.stats.count_op(algorithm)
            self._sync_injected()
            return values, receipt

    def _collect(self, op_id: int, receipt: OpReceipt) -> dict[int, float]:
        deadline = time.monotonic() + self.watchdog_s
        done: dict[int, float] = {}
        stats: list[tuple[int, RankOpStats]] = []
        failures: list[str] = []
        while len(done) < self.nranks:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._deadlock(set(range(self.nranks)) - set(done))
            try:
                msg = self._results.get(timeout=min(remaining, 0.2))
            except queue_mod.Empty:
                dead = [
                    r for r, p in enumerate(self._procs)
                    if r not in done and not p.is_alive()
                ]
                if dead:
                    if self.chaos is None:
                        self._poisoned = "worker process died"
                        raise TransportError(
                            "multiprocess transport worker(s) died: "
                            f"{[self._procs[r].name for r in dead]}"
                        ) from None
                    self._quiesce_crash(op_id, done, dead)
                continue
            status, rank, msg_op, payload, value = msg
            if msg_op != op_id:
                continue
            if status == "ok":
                stats.append((rank, payload))
                done[rank] = value if value is not None else 0.0
            elif status == "aborted":
                if not failures:
                    self._deadlock(set(range(self.nranks)) - set(done))
                done[rank] = 0.0
            else:
                failures.append(f"rank {rank}: {payload}")
                done[rank] = 0.0
                self._abort.set()
                self._barrier.abort()
        if failures:
            self._poisoned = "worker failure"
            raise TransportError(
                "multiprocess transport worker failed:\n"
                + "\n".join(failures)
            )
        # Absorb only after every rank completed, so an attempt that is
        # abandoned (crash) contributes nothing to the canonical ledger.
        for rank, rs in stats:
            receipt.absorb(rs)
            self.stats.absorb(rank, rs)
        return done

    def _quiesce_crash(self, op_id: int, done: dict, dead: list[int]):
        """Dead worker processes found mid-collect: abort survivors and
        wait for each to post its (aborted) completion so none is still
        touching a queue, then hand the dead list to the retry loop."""
        self._abort.set()
        try:
            self._barrier.abort()
        except Exception:  # noqa: BLE001 - barrier may already be broken
            pass
        waiting = {
            r for r in range(self.nranks)
            if r not in done and r not in dead
        }
        end = time.monotonic() + 5.0
        while waiting and time.monotonic() < end:
            for r in list(waiting):
                if not self._procs[r].is_alive():
                    waiting.discard(r)
                    dead.append(r)
            try:
                msg = self._results.get(timeout=0.05)
            except queue_mod.Empty:
                continue
            _status, rank, msg_op, _payload, _value = msg
            if msg_op == op_id:
                waiting.discard(rank)
        if waiting:
            self._deadlock(waiting)
        raise _RankCrash(sorted(set(dead)))

    def _recover(self, dead: list[int], snapshot: bytes | None) -> None:
        """Bring the fleet back to a clean pre-operation state: drain
        stale tags and completions, roll the storage arena back to the
        checkpoint, respawn the dead workers (they re-attach the shared
        segments by name), and re-arm the barrier."""
        for q in [*self._chans.values(), self._results]:
            while True:
                try:
                    q.get_nowait()
                except queue_mod.Empty:
                    break
                except Exception:  # noqa: BLE001 - torn pickle from a kill
                    continue
        if snapshot is not None:
            self._storage_sm.buf[:] = snapshot
        for rank in dead:
            self._procs[rank] = self._spawn_proc(rank)
        self._barrier.reset()
        self._abort.clear()

    def _fault_context(self) -> dict | None:
        if self.chaos is None:
            return None
        return {
            "injected_by_rank": {
                str(rank): dict(kinds)
                for rank, kinds in sorted(self.chaos.ledger().items())
            },
            "last_recv_seq": {
                f"{s}->{d}": int(self._last_recv[s * self.nranks + d])
                for s in range(self.nranks)
                for d in range(self.nranks)
                if self._last_recv[s * self.nranks + d] >= 0
            },
        }

    def _deadlock(self, missing: set[int]):
        self._poisoned = "deadlock watchdog"
        self._abort.set()
        try:
            self._barrier.abort()
        except Exception:  # noqa: BLE001 - barrier may already be broken
            pass
        stuck = []
        for rank in sorted(missing):
            base = rank * _STRIDE
            state = _STATE_NAMES.get(self._status[base], "unknown")
            waiting = None
            if self._status[base] == _RECV_WAIT:
                waiting = (
                    f"message seq {self._status[base + 3]} from rank "
                    f"{self._status[base + 2]}"
                )
            elif self._status[base] == _BARRIER:
                waiting = f"barrier after round {self._status[base + 1]}"
            stuck.append({
                "rank": rank,
                "state": state,
                "waiting_on": waiting,
                "heartbeat": int(self._status[base + 4]),
                "completed_rounds": int(self._status[base + 5]),
            })
        raise DeadlockError(
            self.name, self.watchdog_s, stuck,
            fault_context=self._fault_context(),
        )

    def __del__(self) -> None:  # best-effort resource cleanup
        try:
            self.shutdown()
        except Exception:  # noqa: BLE001
            pass
