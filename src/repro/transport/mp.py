"""Multiprocess transport: one OS process per rank.

Rank storage lives in a single ``multiprocessing.shared_memory`` arena
(8-byte-aligned values + validity masks per (rank, array)); the main
process and every worker map numpy views over the same segment, so
compute results written by the executor are immediately visible to the
rank that must send them.

The control plane is pickled: per-rank command queues carry round
scripts (:class:`~repro.transport.lowering.SendOp` lists), per-pair
queues carry message tags, and a results queue returns per-op
:class:`~repro.transport.base.RankOpStats`.  Payloads travel through a
separate shared-memory *data* arena: the sender copies the wire bytes
to a per-send offset the dispatcher assigned, then posts the tag; the
queue's ordering is the happens-before edge that makes the bytes safe
to read.  Rounds are separated by a real ``multiprocessing.Barrier``.

A watchdog bounds every wait.  On expiry the main process aborts the
fleet, reads each rank's last self-reported state from a shared status
block, and raises a structured
:class:`~repro.transport.base.DeadlockError`; ``shutdown`` then joins
(or terminates) every worker so no zombie processes survive.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import secrets
import threading
import time
from multiprocessing import shared_memory

import numpy as np

from .base import (
    DeadlockError,
    OpReceipt,
    RankOpStats,
    Transport,
    TransportError,
    combine_pieces,
    extract_payload,
    install_payload,
    pack_payload,
    unpack_payload,
)
from .lowering import SCALAR_BYTES, LoweredComm, lower_reduction

_ALIGN = 8
_POLL_S = 0.02

# Worker self-reported states for the watchdog status block.
_IDLE, _RUNNING, _RECV_WAIT, _BARRIER = 0, 1, 2, 3
_STATE_NAMES = {
    _IDLE: "idle",
    _RUNNING: "running",
    _RECV_WAIT: "waiting on recv",
    _BARRIER: "waiting at barrier",
}


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


class _Abort(Exception):
    pass


def _np_views(sm: shared_memory.SharedMemory, entries):
    """(values, valid) views for ``entries`` of a storage layout table:
    (rank, name, shape, values_offset, valid_offset)."""
    views = {}
    for rank, name, shape, off_values, off_valid in entries:
        count = int(np.prod(shape)) if shape else 1
        values = np.ndarray(shape, dtype=np.float64, buffer=sm.buf,
                            offset=off_values)
        valid = np.ndarray(shape, dtype=bool, buffer=sm.buf,
                           offset=off_valid)
        assert values.size == count
        views[(rank, name)] = (values, valid)
    return views


class _WorkerState:
    """Per-process context for one rank's worker loop."""

    def __init__(self, rank, nranks, storage_name, layout, chans, barrier,
                 abort, status, watchdog_s):
        self.rank = rank
        self.nranks = nranks
        self.chans = chans
        self.barrier = barrier
        self.abort = abort
        self.status = status
        self.watchdog_s = watchdog_s
        self.storage_sm = shared_memory.SharedMemory(name=storage_name)
        self.views = _np_views(
            self.storage_sm, [e for e in layout if e[0] == rank]
        )
        self.arenas: dict[str, shared_memory.SharedMemory] = {}

    def set_state(self, state: int, rnd: int = -1, partner: int = -1,
                  seq: int = -1) -> None:
        base = self.rank * 4
        self.status[base] = state
        self.status[base + 1] = rnd
        self.status[base + 2] = partner
        self.status[base + 3] = seq

    def arena(self, name: str) -> shared_memory.SharedMemory:
        sm = self.arenas.get(name)
        if sm is None:
            sm = self.arenas[name] = shared_memory.SharedMemory(name=name)
        return sm

    def ctrl_get(self, src: int, deadline: float):
        q = self.chans[(src, self.rank)]
        while True:
            try:
                return q.get(timeout=_POLL_S)
            except queue_mod.Empty:
                if self.abort.is_set() or time.monotonic() > deadline:
                    raise _Abort()

    def close(self) -> None:
        self.views = {}
        self.storage_sm.close()
        for sm in self.arenas.values():
            sm.close()


def _mp_worker(rank, nranks, storage_name, layout, cmd_q, res_q, chans,
               barrier, abort, status, watchdog_s):
    ctx = _WorkerState(rank, nranks, storage_name, layout, chans, barrier,
                       abort, status, watchdog_s)
    try:
        while True:
            cmd = cmd_q.get()
            kind = cmd[0]
            if kind == "stop":
                res_q.put(("bye", rank, -1, None, None))
                return
            op_id = cmd[1]
            ctx.set_state(_RUNNING)
            try:
                if kind == "op":
                    _, _, script, data_name, offsets = cmd
                    rs = _run_op(ctx, script, data_name, offsets)
                    res_q.put(("ok", rank, op_id, rs, None))
                else:  # reduce
                    _, _, piece, op, lowered = cmd
                    value, rs = _run_reduce(ctx, piece, op, lowered)
                    res_q.put(("ok", rank, op_id, rs, value))
            except (_Abort, threading.BrokenBarrierError):
                res_q.put(("aborted", rank, op_id, None, None))
            except Exception as exc:  # noqa: BLE001 - reported to main
                import traceback

                res_q.put(
                    ("error", rank, op_id, traceback.format_exc(), None)
                )
                del exc
            ctx.set_state(_IDLE)
    finally:
        ctx.close()


def _wire(rs: RankOpStats, src: int, dst: int, nbytes: int) -> None:
    rs.sends += 1
    rs.bytes_sent += nbytes
    pair = (src, dst)
    rs.pair_msgs[pair] = rs.pair_msgs.get(pair, 0) + 1
    rs.pair_bytes[pair] = rs.pair_bytes.get(pair, 0) + nbytes


def _run_op(ctx: _WorkerState, script, data_name, offsets) -> RankOpStats:
    rs = RankOpStats()
    rank = ctx.rank
    # Backstop only: the main process's collector fires at watchdog_s
    # and reads the status block while workers are still stuck.
    deadline = time.monotonic() + ctx.watchdog_s * 2
    data = ctx.arena(data_name) if data_name else None
    for rnd_no, rnd in enumerate(script):
        for s in rnd["send"]:
            t0 = time.perf_counter()
            values, _valid = ctx.views[(rank, s.array)]
            count = s.nbytes // SCALAR_BYTES
            # Pack straight into the shared-memory arena: the arena view
            # IS the wire buffer, so no pool is needed here (the
            # threaded backend's pool counters have no multiprocess
            # counterpart — they stay 0 by design).
            dst_view = np.ndarray(
                (count,), dtype=np.float64, buffer=data.buf,
                offset=offsets[s.seq],
            )
            pack_payload(values, s, dst_view)
            ctx.chans[(rank, s.dst)].put(s.seq)
            rs.send_s += time.perf_counter() - t0
            _wire(rs, rank, s.dst, s.nbytes)
        for s in rnd["local"]:
            values, valid = ctx.views[(rank, s.array)]
            install_payload(values, valid, s, extract_payload(values, s))
            rs.local_copies += 1
        for s in rnd["recv"]:
            ctx.set_state(_RECV_WAIT, rnd_no, s.src, s.seq)
            t0 = time.perf_counter()
            seq = ctx.ctrl_get(s.src, deadline)
            rs.wait_s += time.perf_counter() - t0
            ctx.set_state(_RUNNING, rnd_no)
            if seq != s.seq:
                raise TransportError(
                    f"rank {rank}: message reorder from rank {s.src} "
                    f"(got seq {seq}, expected {s.seq})"
                )
            t0 = time.perf_counter()
            count = s.nbytes // SCALAR_BYTES
            payload = np.ndarray(
                (count,), dtype=np.float64, buffer=data.buf,
                offset=offsets[s.seq],
            )
            values, valid = ctx.views[(rank, s.array)]
            unpack_payload(values, valid, s, payload)
            rs.recv_s += time.perf_counter() - t0
        ctx.set_state(_BARRIER, rnd_no)
        t0 = time.perf_counter()
        ctx.barrier.wait(timeout=ctx.watchdog_s * 2)
        stall = time.perf_counter() - t0
        rs.barrier_s += stall
        if stall > 0.001:
            rs.barrier_stalls += 1
    return rs


def _run_reduce(ctx: _WorkerState, piece, op, lowered):
    rs = RankOpStats()
    rank = ctx.rank
    deadline = time.monotonic() + ctx.watchdog_s * 2
    acc = {rank: np.asarray(piece)}
    for rnd in lowered.gather_rounds:
        for src, dst in rnd:
            if src == rank:
                nbytes = sum(
                    int(p.size) * SCALAR_BYTES for p in acc.values()
                )
                ctx.chans[(rank, dst)].put(acc)
                acc = {}
                _wire(rs, rank, dst, nbytes)
            elif dst == rank:
                ctx.set_state(_RECV_WAIT, -1, src)
                t0 = time.perf_counter()
                got = ctx.ctrl_get(src, deadline)
                rs.wait_s += time.perf_counter() - t0
                ctx.set_state(_RUNNING)
                acc.update(got)
    value = combine_pieces(acc, op) if rank == 0 else None
    for rnd in lowered.bcast_rounds:
        for src, dst in rnd:
            if src == rank:
                ctx.chans[(rank, dst)].put(value)
                _wire(rs, rank, dst, SCALAR_BYTES)
            elif dst == rank:
                ctx.set_state(_RECV_WAIT, -1, src)
                t0 = time.perf_counter()
                value = ctx.ctrl_get(src, deadline)
                rs.wait_s += time.perf_counter() - t0
                ctx.set_state(_RUNNING)
    ctx.set_state(_BARRIER)
    t0 = time.perf_counter()
    ctx.barrier.wait(timeout=ctx.watchdog_s * 2)
    stall = time.perf_counter() - t0
    rs.barrier_s += stall
    if stall > 0.001:
        rs.barrier_stalls += 1
    return float(value), rs


class MultiprocessTransport(Transport):
    """One OS process per rank over shared-memory storage."""

    name = "multiprocess"

    def __init__(self, nranks: int, watchdog_s: float = 30.0) -> None:
        super().__init__(nranks, watchdog_s)
        self.stats.backend = self.name
        self._token = secrets.token_hex(4)
        self._ctx = mp.get_context()
        self._storage_sm: shared_memory.SharedMemory | None = None
        self._layout: list[tuple] = []
        self._data_sm: shared_memory.SharedMemory | None = None
        self._data_gen = 0
        self._retired_data: list[shared_memory.SharedMemory] = []
        self._chans = {
            (s, d): self._ctx.Queue()
            for s in range(nranks) for d in range(nranks) if s != d
        }
        self._cmd = [self._ctx.Queue() for _ in range(nranks)]
        self._results = self._ctx.Queue()
        self._abort = self._ctx.Event()
        self._barrier = self._ctx.Barrier(nranks)
        self._status = self._ctx.RawArray("q", nranks * 4)
        self._procs: list = []
        self._op_counter = 0
        self._started = False
        self._shut_down = False

    # -- storage -----------------------------------------------------------

    def create_storage(self, specs):
        specs = list(specs)
        offset = 0
        layout = []
        for rank, name, shape in specs:
            count = int(np.prod(shape)) if shape else 1
            off_values = offset
            offset = _align(offset + count * 8)
            off_valid = offset
            offset = _align(offset + count)
            layout.append((rank, name, shape, off_values, off_valid))
        self._storage_sm = shared_memory.SharedMemory(
            create=True, size=max(offset, _ALIGN),
            name=f"repro-st-{self._token}",
        )
        self._storage_sm.buf[:] = b"\x00" * len(self._storage_sm.buf)
        self._layout = layout
        return _np_views(self._storage_sm, layout)

    # -- lifecycle ---------------------------------------------------------

    def start(self, storage: dict) -> None:
        super().start(storage)
        if self._started:
            return
        if self._storage_sm is None:
            self.create_storage([])  # reduce-only session: empty arena
        for rank in range(self.nranks):
            p = self._ctx.Process(
                target=_mp_worker,
                args=(rank, self.nranks, self._storage_sm.name, self._layout,
                      self._cmd[rank], self._results, self._chans,
                      self._barrier, self._abort, self._status,
                      self.watchdog_s),
                name=f"transport-rank-{rank}",
                daemon=True,
            )
            p.start()
            self._procs.append(p)
        self._started = True

    def shutdown(self) -> None:
        if self._shut_down:
            return
        self._shut_down = True
        self._abort.set()
        if self._started:
            for rank in range(self.nranks):
                try:
                    self._cmd[rank].put(("stop",))
                except (ValueError, OSError):
                    pass
            deadline = time.monotonic() + 5.0
            for p in self._procs:
                p.join(timeout=max(0.1, deadline - time.monotonic()))
            for p in self._procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=2.0)
        for q in [*self._chans.values(), *self._cmd, self._results]:
            q.cancel_join_thread()
            q.close()
        for sm in [self._storage_sm, self._data_sm, *self._retired_data]:
            if sm is None:
                continue
            try:
                sm.close()
            except BufferError:
                pass  # executor still holds views; freed when they die
            try:
                sm.unlink()
            except FileNotFoundError:
                pass

    # -- dispatch ----------------------------------------------------------

    def _next_op(self) -> int:
        self._op_counter += 1
        return self._op_counter

    def _ensure_data_arena(self, nbytes: int) -> shared_memory.SharedMemory:
        if self._data_sm is not None and self._data_sm.size >= nbytes:
            return self._data_sm
        size = 1 << max(12, (max(nbytes, 1) - 1).bit_length())
        if self._data_sm is not None:
            # Workers may still have the old generation mapped; retire it
            # and unlink everything at shutdown.
            self._retired_data.append(self._data_sm)
        self._data_gen += 1
        self._data_sm = shared_memory.SharedMemory(
            create=True, size=size,
            name=f"repro-dt-{self._token}-g{self._data_gen}",
        )
        return self._data_sm

    def _scripts_for(self, lowered: LoweredComm):
        scripts = {r: [] for r in range(self.nranks)}
        for rnd in lowered.rounds:
            per = {
                r: {"send": [], "recv": [], "local": []}
                for r in range(self.nranks)
            }
            for s in rnd:
                if s.is_local:
                    per[s.src]["local"].append(s)
                else:
                    per[s.src]["send"].append(s)
                    per[s.dst]["recv"].append(s)
            for r in range(self.nranks):
                scripts[r].append(per[r])
        return scripts

    def execute(self, lowered: LoweredComm) -> OpReceipt:
        scripts = self._scripts_for(lowered)
        return self._dispatch(scripts, lowered.algorithm)

    def _dispatch(self, scripts, algorithm: str) -> OpReceipt:
        self._check_alive()
        offsets: dict[int, int] = {}
        offset = 0
        for script in scripts.values():
            for rnd in script:
                for s in rnd["send"]:
                    offsets[s.seq] = offset
                    offset = _align(offset + s.nbytes)
        data = self._ensure_data_arena(offset) if offset else None
        op_id = self._next_op()
        for rank in range(self.nranks):
            self._cmd[rank].put(
                ("op", op_id, scripts[rank],
                 data.name if data else None, offsets)
            )
        receipt = OpReceipt(algorithm=algorithm)
        self._collect(op_id, receipt)
        self.stats.count_op(algorithm)
        return receipt

    def reduce(self, pieces: dict[int, np.ndarray], op: str):
        self._check_alive()
        lowered = lower_reduction(
            op,
            {r: int(np.asarray(p).size) * SCALAR_BYTES
             for r, p in pieces.items()},
            self.nranks,
        )
        op_id = self._next_op()
        for rank in range(self.nranks):
            piece = np.asarray(pieces.get(rank, np.zeros(0)))
            self._cmd[rank].put(("reduce", op_id, piece, op, lowered))
        receipt = OpReceipt(algorithm="reduce-tree")
        values = self._collect(op_id, receipt)
        distinct = set(values.values())
        if len(distinct) != 1:
            raise TransportError(
                f"reduce-tree broadcast diverged across ranks: {distinct}"
            )
        self.stats.reduces += 1
        self.stats.count_op("reduce-tree")
        return distinct.pop(), receipt

    def _collect(self, op_id: int, receipt: OpReceipt) -> dict[int, float]:
        deadline = time.monotonic() + self.watchdog_s
        done: dict[int, float] = {}
        failures: list[str] = []
        while len(done) < self.nranks:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._deadlock(set(range(self.nranks)) - set(done))
            try:
                msg = self._results.get(timeout=min(remaining, 0.2))
            except queue_mod.Empty:
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead:
                    self._poisoned = "worker process died"
                    raise TransportError(
                        f"multiprocess transport worker(s) died: {dead}"
                    ) from None
                continue
            status, rank, msg_op, payload, value = msg
            if msg_op != op_id:
                continue
            if status == "ok":
                receipt.absorb(payload)
                self.stats.absorb(rank, payload)
                done[rank] = value if value is not None else 0.0
            elif status == "aborted":
                if not failures:
                    self._deadlock(set(range(self.nranks)) - set(done))
                done[rank] = 0.0
            else:
                failures.append(f"rank {rank}: {payload}")
                done[rank] = 0.0
                self._abort.set()
                self._barrier.abort()
        if failures:
            self._poisoned = "worker failure"
            raise TransportError(
                "multiprocess transport worker failed:\n"
                + "\n".join(failures)
            )
        return done

    def _deadlock(self, missing: set[int]):
        self._poisoned = "deadlock watchdog"
        self._abort.set()
        try:
            self._barrier.abort()
        except Exception:  # noqa: BLE001 - barrier may already be broken
            pass
        stuck = []
        for rank in sorted(missing):
            base = rank * 4
            state = _STATE_NAMES.get(self._status[base], "unknown")
            waiting = None
            if self._status[base] == _RECV_WAIT:
                waiting = (
                    f"message seq {self._status[base + 3]} from rank "
                    f"{self._status[base + 2]}"
                )
            elif self._status[base] == _BARRIER:
                waiting = f"barrier after round {self._status[base + 1]}"
            stuck.append({
                "rank": rank,
                "state": state,
                "waiting_on": waiting,
            })
        raise DeadlockError(self.name, self.watchdog_s, stuck)

    def __del__(self) -> None:  # best-effort resource cleanup
        try:
            self.shutdown()
        except Exception:  # noqa: BLE001
            pass
