"""Collective lowering: CommPlans → transport send schedules.

The pattern classifier (:mod:`repro.comm.patterns`) already names the
shape of every placed operation; this module exploits it when turning a
:class:`~repro.runtime.plans.CommPlan` into wire traffic:

* **shift** → *neighbor exchange*: the plan's point-to-point transfers,
  posted concurrently in one round (diagonal augmented exchanges keep
  their phase structure: phase ``k`` forwards data phase ``k-1``
  delivered, so phases become barrier-separated rounds);
* **allgather** → *ring*: every owner's piece travels around the rank
  ring in ``P-1`` barrier-separated rounds, each rank forwarding the
  piece it received the round before — same total bytes as the direct
  broadcast, neighbor-only pairs;
* **reduction** → *log-P combining tree* (:func:`lower_reduction`):
  partial vectors gather up a binomial tree to rank 0, are combined in
  canonical order, and the scalar result broadcasts back down;
* **general** (and anything the recognizers decline) → raw
  point-to-point exactly as planned.

Every lowering carries its own *predicted* per-pair message/byte
accounting, computed from the same geometry the backend will execute —
the executor asserts measured == predicted exactly after every
operation, which is the repository's wire-level analogue of the §6.1
simulator check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..runtime.plans import CommPlan, PlannedTransfer


@dataclass
class SendOp:
    """One wire message (or local install when ``src == dst``): move
    the ``index`` box of ``array`` from rank ``src`` to rank ``dst``.
    Picklable — the multiprocess control plane ships these verbatim."""

    seq: int
    src: int
    dst: int
    array: str
    index: tuple
    nbytes: int
    mask: np.ndarray | None = None

    @property
    def is_local(self) -> bool:
        return self.src == self.dst


@dataclass
class LoweredComm:
    """One communication operation as rounds of sends.  All sends in a
    round read state as of the end of the previous round (a barrier
    separates rounds); within a round, written regions are disjoint per
    destination, so delivery order cannot change the result."""

    algorithm: str
    rounds: list[list[SendOp]]
    predicted_pairs: dict = field(default_factory=dict)  # (src,dst)->bytes
    predicted_msgs: dict = field(default_factory=dict)   # (src,dst)->count

    @property
    def predicted_bytes(self) -> int:
        return sum(self.predicted_pairs.values())

    def wire_sends(self) -> list[SendOp]:
        return [s for rnd in self.rounds for s in rnd if not s.is_local]


def _predict(lowered: LoweredComm) -> LoweredComm:
    for rnd in lowered.rounds:
        for s in rnd:
            if s.is_local:
                continue
            key = (s.src, s.dst)
            lowered.predicted_pairs[key] = (
                lowered.predicted_pairs.get(key, 0) + s.nbytes
            )
            lowered.predicted_msgs[key] = (
                lowered.predicted_msgs.get(key, 0) + 1
            )
    return lowered


def _pointwise_rounds(plan: CommPlan) -> list[list[SendOp]]:
    """The plan's transfers as sends, grouped by phase (round)."""
    by_phase: dict[int, list[SendOp]] = {}
    seq = 0
    for t in plan.transfers:
        for dst in t.dsts:
            by_phase.setdefault(t.phase, []).append(SendOp(
                seq=seq, src=t.src, dst=dst, array=t.array,
                index=t.index, nbytes=t.nbytes, mask=t.mask,
            ))
            seq += 1
    return [by_phase[p] for p in sorted(by_phase)]


def _ring_rounds(plan: CommPlan, nranks: int) -> list[list[SendOp]] | None:
    """Ring lowering of an all-destinations broadcast plan, or None when
    the plan does not have the expected shape (every transfer unmasked
    with the full rank set as destinations)."""
    pieces: list[PlannedTransfer] = []
    all_ranks = tuple(range(nranks))
    for t in plan.transfers:
        if t.mask is not None or tuple(sorted(t.dsts)) != all_ranks:
            return None
        pieces.append(t)
    if not pieces or nranks < 3:
        return None  # P<3: the ring degenerates to the direct sends
    rounds: list[list[SendOp]] = []
    seq = 0
    for step in range(1, nranks):
        rnd: list[SendOp] = []
        for t in pieces:
            src = (t.src + step - 1) % nranks
            dst = (t.src + step) % nranks
            rnd.append(SendOp(
                seq=seq, src=src, dst=dst, array=t.array,
                index=t.index, nbytes=t.nbytes,
            ))
            seq += 1
        rounds.append(rnd)
    return rounds


def lower_comm(
    kind: str, plan: CommPlan, nranks: int, collectives: bool = True
) -> LoweredComm:
    """Lower one plan to the cheapest collective its classified shape
    admits; anything unrecognized (or ``collectives=False``) stays raw
    point-to-point."""
    if collectives and kind == "allgather":
        ring = _ring_rounds(plan, nranks)
        if ring is not None:
            return _predict(LoweredComm("ring-allgather", ring))
    rounds = _pointwise_rounds(plan)
    if collectives and kind == "shift":
        algorithm = (
            "neighbor-exchange" if len(rounds) <= 1
            else "augmented-exchange"
        )
    else:
        algorithm = "pointwise"
    return _predict(LoweredComm(algorithm, rounds))


# ---------------------------------------------------------------------------
# Reductions: binomial gather tree + broadcast
# ---------------------------------------------------------------------------


SCALAR_BYTES = 8


@dataclass
class ReduceLowering:
    """A log-P combining tree over all ranks: ``gather_rounds`` move the
    accumulated partial vectors toward rank 0 (payload grows as subtrees
    merge), rank 0 combines in canonical order, and ``bcast_rounds``
    fan the 8-byte result back out along the reversed edges."""

    op: str
    gather_rounds: list[list[tuple[int, int]]]  # (src, dst) edges
    bcast_rounds: list[list[tuple[int, int]]]
    predicted_pairs: dict = field(default_factory=dict)
    predicted_msgs: dict = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return len(self.gather_rounds)


def reduction_tree(nranks: int) -> list[list[tuple[int, int]]]:
    """Binomial-tree gather edges toward rank 0, round by round."""
    rounds: list[list[tuple[int, int]]] = []
    step = 1
    while step < nranks:
        edges = [
            (base + step, base)
            for base in range(0, nranks, 2 * step)
            if base + step < nranks
        ]
        rounds.append(edges)
        step *= 2
    return rounds


def lower_reduction(
    op: str, piece_bytes: dict[int, int], nranks: int
) -> ReduceLowering:
    """Schedule one reduction and predict its exact wire traffic from
    the per-rank partial sizes."""
    gather = reduction_tree(nranks)
    bcast = [[(dst, src) for src, dst in rnd] for rnd in reversed(gather)]
    lowered = ReduceLowering(op, gather, bcast)
    held = {rank: piece_bytes.get(rank, 0) for rank in range(nranks)}
    for rnd in gather:
        for src, dst in rnd:
            payload = held[src]
            key = (src, dst)
            lowered.predicted_pairs[key] = (
                lowered.predicted_pairs.get(key, 0) + payload
            )
            lowered.predicted_msgs[key] = (
                lowered.predicted_msgs.get(key, 0) + 1
            )
            held[dst] += held[src]
            held[src] = 0
    for rnd in bcast:
        for src, dst in rnd:
            key = (src, dst)
            lowered.predicted_pairs[key] = (
                lowered.predicted_pairs.get(key, 0) + SCALAR_BYTES
            )
            lowered.predicted_msgs[key] = (
                lowered.predicted_msgs.get(key, 0) + 1
            )
    return lowered
