"""Message-passing transport layer.

Executes the communication plans of a compiled SPMD program as real
sends and receives through a pluggable :class:`~repro.transport.base.
Transport` interface:

* ``inline`` — deterministic sequential reference backend;
* ``threaded`` — one worker thread per rank over lock-free per-pair
  queues with a real barrier;
* ``multiprocess`` — one OS process per rank over
  ``multiprocessing.shared_memory``.

:mod:`repro.transport.lowering` turns classified plans into collective
schedules (neighbor exchange, ring allgather, combining-tree
reductions); every backend records wire-level accounting that the
executor cross-checks against the plan-time predictions exactly.

:mod:`repro.transport.integrity` adds the wire-integrity layer
(sequence numbers, CRC32 checksums, dedup, NACK/retransmit) and the
seeded deterministic fault plans that :mod:`repro.transport.chaos`
injects through any backend; injected rank crashes are recovered by
checkpoint/restart, and past the restart budget the executor degrades
gracefully to the ``inline`` backend.
"""

from __future__ import annotations

from .base import (
    DeadlockError,
    OpReceipt,
    RankCrashError,
    RankOpStats,
    Transport,
    TransportError,
    WireStats,
)
from .chaos import ChaosTransport, RuntimeDegradationEvent, make_chaos
from .inline import InlineTransport
from .integrity import KINDS, ChaosState, FaultPlan
from .lowering import (
    LoweredComm,
    ReduceLowering,
    SendOp,
    lower_comm,
    lower_reduction,
    reduction_tree,
)
from .mp import MultiprocessTransport
from .threaded import ThreadedTransport

#: Backend registry: name -> Transport subclass.
BACKENDS = {
    InlineTransport.name: InlineTransport,
    ThreadedTransport.name: ThreadedTransport,
    MultiprocessTransport.name: MultiprocessTransport,
}


def make_transport(
    spec: "str | Transport | None",
    nranks: int,
    watchdog_s: float = 30.0,
    chaos: "FaultPlan | str | None" = None,
    max_rank_restarts: int | None = None,
    integrity: bool | None = None,
) -> Transport | None:
    """Resolve a transport spec: ``None`` (keep the legacy direct-copy
    path), a backend name from :data:`BACKENDS`, or an already-built
    :class:`Transport` instance (returned as-is, though ``chaos`` /
    ``max_rank_restarts`` / ``integrity`` are still applied).

    ``chaos`` arms fault injection: a :class:`FaultPlan` or a
    ``--chaos-spec`` string (see :meth:`FaultPlan.parse`), wrapping the
    backend in a :class:`ChaosTransport`.  ``integrity=False`` disables
    checksum verification on clean runs (chaos forces it back on).
    """
    if spec is None:
        return None
    if isinstance(spec, Transport):
        transport = spec
    else:
        try:
            cls = BACKENDS[spec]
        except KeyError:
            raise TransportError(
                f"unknown transport backend {spec!r}; "
                f"expected one of {sorted(BACKENDS)}"
            ) from None
        transport = cls(nranks, watchdog_s=watchdog_s)
    if integrity is not None:
        transport.integrity = integrity
    if max_rank_restarts is not None:
        transport.max_rank_restarts = max_rank_restarts
    if chaos is not None:
        if isinstance(chaos, str):
            chaos = FaultPlan.parse(chaos)
        return ChaosTransport(
            transport, chaos, max_rank_restarts=max_rank_restarts
        )
    return transport


__all__ = [
    "BACKENDS",
    "ChaosState",
    "ChaosTransport",
    "DeadlockError",
    "FaultPlan",
    "InlineTransport",
    "KINDS",
    "LoweredComm",
    "MultiprocessTransport",
    "OpReceipt",
    "RankCrashError",
    "RankOpStats",
    "ReduceLowering",
    "RuntimeDegradationEvent",
    "SendOp",
    "ThreadedTransport",
    "Transport",
    "TransportError",
    "WireStats",
    "lower_comm",
    "lower_reduction",
    "make_chaos",
    "make_transport",
    "reduction_tree",
]
