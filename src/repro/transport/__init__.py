"""Message-passing transport layer.

Executes the communication plans of a compiled SPMD program as real
sends and receives through a pluggable :class:`~repro.transport.base.
Transport` interface:

* ``inline`` — deterministic sequential reference backend;
* ``threaded`` — one worker thread per rank over lock-free per-pair
  queues with a real barrier;
* ``multiprocess`` — one OS process per rank over
  ``multiprocessing.shared_memory``.

:mod:`repro.transport.lowering` turns classified plans into collective
schedules (neighbor exchange, ring allgather, combining-tree
reductions); every backend records wire-level accounting that the
executor cross-checks against the plan-time predictions exactly.
"""

from __future__ import annotations

from .base import (
    DeadlockError,
    OpReceipt,
    RankOpStats,
    Transport,
    TransportError,
    WireStats,
)
from .inline import InlineTransport
from .lowering import (
    LoweredComm,
    ReduceLowering,
    SendOp,
    lower_comm,
    lower_reduction,
    reduction_tree,
)
from .mp import MultiprocessTransport
from .threaded import ThreadedTransport

#: Backend registry: name -> Transport subclass.
BACKENDS = {
    InlineTransport.name: InlineTransport,
    ThreadedTransport.name: ThreadedTransport,
    MultiprocessTransport.name: MultiprocessTransport,
}


def make_transport(
    spec: "str | Transport | None", nranks: int, watchdog_s: float = 30.0
) -> Transport | None:
    """Resolve a transport spec: ``None`` (keep the legacy direct-copy
    path), a backend name from :data:`BACKENDS`, or an already-built
    :class:`Transport` instance (returned as-is)."""
    if spec is None:
        return None
    if isinstance(spec, Transport):
        return spec
    try:
        cls = BACKENDS[spec]
    except KeyError:
        raise TransportError(
            f"unknown transport backend {spec!r}; "
            f"expected one of {sorted(BACKENDS)}"
        ) from None
    return cls(nranks, watchdog_s=watchdog_s)


__all__ = [
    "BACKENDS",
    "DeadlockError",
    "InlineTransport",
    "LoweredComm",
    "MultiprocessTransport",
    "OpReceipt",
    "RankOpStats",
    "ReduceLowering",
    "SendOp",
    "ThreadedTransport",
    "Transport",
    "TransportError",
    "WireStats",
    "lower_comm",
    "lower_reduction",
    "make_transport",
    "reduction_tree",
]
