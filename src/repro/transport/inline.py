"""Inline transport: the deterministic sequential reference backend.

Executes every lowered round in plan order inside the calling thread —
snapshot all payloads first, then install — which is exactly the
delivery semantics the concurrent backends must reproduce.  No real
concurrency, but full wire accounting: every non-local send is counted
as a message with its payload bytes, so the measured-vs-predicted
cross-check exercises the same code path as the threaded and
multiprocess backends.
"""

from __future__ import annotations

import time

import numpy as np

from .base import (
    BufferPool,
    OpReceipt,
    RankOpStats,
    Transport,
    TransportError,
    combine_pieces,
    pack_payload,
    unpack_payload,
)
from .integrity import payload_crc
from .lowering import SCALAR_BYTES, LoweredComm, lower_reduction


class InlineTransport(Transport):
    """Sequential in-process execution of lowered schedules."""

    name = "inline"

    def __init__(self, nranks: int, watchdog_s: float = 30.0) -> None:
        super().__init__(nranks, watchdog_s)
        self.stats.backend = self.name
        # Single staging pool: the snapshot-then-install round structure
        # holds at most one round's payloads at a time, so the pool
        # reaches the widest round's buffer count and then stops
        # allocating for the rest of the run.
        self._pool = BufferPool()

    def execute(self, lowered: LoweredComm) -> OpReceipt:
        self._check_alive()
        chaos = self.chaos
        receipt = OpReceipt(algorithm=lowered.algorithm)
        per_rank = {r: RankOpStats() for r in range(self.nranks)}
        for rnd in lowered.rounds:
            # Stage entries: (send, wire buf or None if dropped, count,
            # pristine copy, crc, duplicated).  Fault injection happens
            # at stage time, detection and repair at install time —
            # the sequential mirror of the concurrent backends'
            # sender/receiver split.
            staged = []
            for s in rnd:
                t0 = time.perf_counter()
                store = self.storage[s.src][s.array]
                count = s.nbytes // SCALAR_BYTES
                buf = self._pool.rent(count, per_rank[s.src])
                pack_payload(store.values, s, buf[:count])
                crc = payload_crc(buf[:count]) if self.integrity else 0
                pristine = None
                duplicated = False
                if chaos is not None and not s.is_local:
                    pristine = buf[:count].copy()
                    chaos.fires("delay", s.src, s.dst, s.seq)  # ledger only
                    if chaos.fires("drop", s.src, s.dst, s.seq):
                        self._pool.give(buf)
                        buf = None
                    elif chaos.fires("corrupt", s.src, s.dst, s.seq):
                        buf[:count].view(np.uint8)[0] ^= 0xFF
                    duplicated = chaos.fires("dup", s.src, s.dst, s.seq)
                entry = (s, buf, count, pristine, crc, duplicated)
                if (
                    chaos is not None and staged
                    and chaos.fires("reorder", s.src, s.dst, s.seq)
                ):
                    staged.insert(len(staged) - 1, entry)
                else:
                    staged.append(entry)
                per_rank[s.src].send_s += time.perf_counter() - t0
            for s, buf, count, pristine, crc, duplicated in staged:
                t0 = time.perf_counter()
                store = self.storage[s.dst][s.array]
                rs = per_rank[s.dst]
                if buf is None:  # dropped: NACK, install the retransmit
                    rs.nacks += 1
                    rs.retransmits += 1
                    rs.retrans_bytes += s.nbytes
                    unpack_payload(
                        store.values, store.valid, s, pristine[:count]
                    )
                else:
                    payload = buf[:count]
                    if (
                        self.integrity
                        and payload_crc(payload) != crc
                    ):
                        rs.crc_failures += 1
                        if pristine is None:
                            raise TransportError(
                                f"inline transport: checksum mismatch "
                                f"on clean run (seq {s.seq})"
                            )
                        rs.retransmits += 1
                        rs.retrans_bytes += s.nbytes
                        payload = pristine[:count]
                    unpack_payload(store.values, store.valid, s, payload)
                    self._pool.give(buf)
                if duplicated:  # the duplicate frame is discarded
                    rs.dedup_drops += 1
                rs.recv_s += time.perf_counter() - t0
                if s.is_local:
                    rs.local_copies += 1
                else:
                    sender = per_rank[s.src]
                    sender.sends += 1
                    sender.bytes_sent += s.nbytes
                    pair = (s.src, s.dst)
                    sender.pair_msgs[pair] = sender.pair_msgs.get(pair, 0) + 1
                    sender.pair_bytes[pair] = (
                        sender.pair_bytes.get(pair, 0) + s.nbytes
                    )
        for rank, rs in per_rank.items():
            receipt.absorb(rs)
            self.stats.absorb(rank, rs)
        self.stats.count_op(lowered.algorithm)
        self._sync_injected()
        return receipt

    def reduce(self, pieces: dict[int, np.ndarray], op: str):
        self._check_alive()
        lowered = lower_reduction(
            op,
            {r: int(np.asarray(p).size) * SCALAR_BYTES
             for r, p in pieces.items()},
            self.nranks,
        )
        receipt = OpReceipt(algorithm="reduce-tree")
        per_rank = {r: RankOpStats() for r in range(self.nranks)}
        held: dict[int, dict[int, np.ndarray]] = {
            r: {r: np.asarray(pieces.get(r, np.zeros(0)))}
            for r in range(self.nranks)
        }
        for rnd in lowered.gather_rounds:
            for src, dst in rnd:
                payload = held[src]
                nbytes = sum(int(p.size) * SCALAR_BYTES
                             for p in payload.values())
                self._count(per_rank[src], src, dst, nbytes)
                held[dst].update(payload)
                held[src] = {}
        value = combine_pieces(held[0], op)
        for rnd in lowered.bcast_rounds:
            for src, dst in rnd:
                self._count(per_rank[src], src, dst, SCALAR_BYTES)
        for rank, rs in per_rank.items():
            receipt.absorb(rs)
            self.stats.absorb(rank, rs)
        self.stats.reduces += 1
        self.stats.count_op("reduce-tree")
        return value, receipt

    @staticmethod
    def _count(rs: RankOpStats, src: int, dst: int, nbytes: int) -> None:
        rs.sends += 1
        rs.bytes_sent += nbytes
        pair = (src, dst)
        rs.pair_msgs[pair] = rs.pair_msgs.get(pair, 0) + 1
        rs.pair_bytes[pair] = rs.pair_bytes.get(pair, 0) + nbytes
