"""ChaosTransport: fault injection around any transport backend.

:class:`ChaosTransport` implements the :class:`~repro.transport.base.
Transport` interface as a thin delegator around an inner backend.  Its
one real job happens before ``start``: it builds a :class:`~repro.
transport.integrity.ChaosState` from its seeded :class:`~repro.
transport.integrity.FaultPlan` and *arms* the inner backend with it
(``inner.attach_chaos``).  From then on the inner backend's own data
paths consult the plan at every wire event — injection has to live
where the wire lives, because drops, duplicates, corruption, delays,
reordering, and crashes are per-send decisions taken inside worker
threads/processes.  The wrapper keeps construction composable
(``ChaosTransport(make_transport("threaded", n), plan)`` works for any
backend) and owns the pieces that are backend-agnostic: the fault
ledger, restart budget, and the runtime degradation record type.

:class:`RuntimeDegradationEvent` is the runtime sibling of the
compile-side :class:`~repro.core.faults.DegradationEvent`: one record
per recovery action the runtime took (rank restart, deadlock-triggered
inline re-execution, restart-budget exhaustion), rendered as a W07xx
warning :class:`~repro.errors.Diagnostic` so ``--diagnostics-json``
consumers see compile-time and runtime degradations in one stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

import numpy as np

from ..errors import (
    DEADLOCK_DEGRADED_CODE,
    RANK_RESTART_CODE,
    RESTARTS_EXHAUSTED_CODE,
    Diagnostic,
)
from .base import OpReceipt, Transport
from .integrity import ChaosState, FaultPlan

#: W07xx code per degradation reason.
_REASON_CODES = {
    "rank_restart": RANK_RESTART_CODE,
    "deadlock": DEADLOCK_DEGRADED_CODE,
    "restarts_exhausted": RESTARTS_EXHAUSTED_CODE,
}


@dataclass(frozen=True)
class RuntimeDegradationEvent:
    """One recorded runtime recovery action.

    ``reason`` is one of ``rank_restart`` (a crashed worker was
    restarted and the operation replayed from its checkpoint — the run
    still completed on the requested backend), ``deadlock`` (the
    watchdog fired under chaos and the program was re-executed on the
    inline backend), ``restarts_exhausted`` (rank crashes outran
    ``max_rank_restarts`` and the program was re-executed inline).
    """

    reason: str
    backend: str
    detail: str
    fallback: str
    ranks: tuple = ()

    @property
    def code(self) -> str:
        return _REASON_CODES[self.reason]

    def diagnostic(self) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            severity="warning",
            message=(
                f"{self.backend} transport degraded ({self.reason}): "
                f"{self.detail}; fallback: {self.fallback}"
            ),
            phase="runtime",
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "reason": self.reason,
            "backend": self.backend,
            "ranks": list(self.ranks),
            "detail": self.detail,
            "fallback": self.fallback,
        }


class ChaosTransport(Transport):
    """Seeded fault injection wrapped around any backend.

    Delegates the whole :class:`Transport` lifecycle to ``inner`` —
    including ``stats``, so wire accounting (and the executor's exact
    parity asserts) read through unchanged — after arming it with a
    shared :class:`ChaosState` built from ``plan``.
    """

    name = "chaos"

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan,
        max_rank_restarts: int | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.nranks = inner.nranks
        self.watchdog_s = inner.watchdog_s
        self.name = f"chaos({inner.name})"
        state_factory = getattr(inner, "make_chaos_state", None)
        if state_factory is not None:
            state = state_factory(plan)
        else:
            state = ChaosState(plan, inner.nranks)
        inner.attach_chaos(state, max_rank_restarts)

    # Everything below is pure delegation: the inner backend owns the
    # wire, the workers, the stats, and the poisoning state.

    @property
    def chaos(self) -> ChaosState:
        return self.inner.chaos

    @chaos.setter
    def chaos(self, value) -> None:  # Transport.__init__ compatibility
        pass

    @property
    def stats(self):
        return self.inner.stats

    @stats.setter
    def stats(self, value) -> None:
        pass

    @property
    def max_rank_restarts(self) -> int:
        return self.inner.max_rank_restarts

    @max_rank_restarts.setter
    def max_rank_restarts(self, value) -> None:
        pass

    @property
    def integrity(self) -> bool:
        return self.inner.integrity

    @integrity.setter
    def integrity(self, value) -> None:
        pass  # chaos forces integrity on; the wrapper never relaxes it

    def create_storage(
        self, specs: Iterable[tuple[int, str, tuple[int, ...]]]
    ) -> dict:
        return self.inner.create_storage(specs)

    def start(self, storage: dict) -> None:
        self.inner.start(storage)

    def execute(self, lowered) -> OpReceipt:
        return self.inner.execute(lowered)

    def reduce(self, pieces: dict[int, np.ndarray], op: str) -> tuple[
        float, OpReceipt
    ]:
        return self.inner.reduce(pieces, op)

    def shutdown(self) -> None:
        self.inner.shutdown()

    def ledger(self) -> dict[int, dict[str, int]]:
        """Per-rank injected-fault counts (see :meth:`ChaosState.ledger`)."""
        return self.inner.chaos.ledger()


def make_chaos(
    backend_spec,
    nranks: int,
    plan: FaultPlan | str | None,
    watchdog_s: float = 30.0,
    max_rank_restarts: int | None = None,
) -> Optional[Transport]:
    """Build a backend and wrap it in chaos when a plan is given.

    ``plan`` may be a :class:`FaultPlan`, a ``--chaos-spec`` string, or
    ``None`` (no wrapping).  Used by :func:`repro.transport.
    make_transport` so chaos composes with every way a transport can be
    named.
    """
    from . import make_transport

    inner = make_transport(backend_spec, nranks, watchdog_s=watchdog_s)
    if inner is None or plan is None:
        if inner is not None and max_rank_restarts is not None:
            inner.max_rank_restarts = max_rank_restarts
        return inner
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    return ChaosTransport(inner, plan, max_rank_restarts)
