"""Wire integrity and deterministic fault injection.

Two cooperating pieces live here:

* the **integrity layer** — every wire payload travels in a *frame*
  tagged with the operation id, the schedule sequence number, and a
  CRC32 checksum of the payload bytes.  Receivers verify the checksum,
  deduplicate by sequence number, tolerate reordering (under chaos) by
  stashing out-of-order frames, and repair loss/corruption by a
  NACK/retransmit protocol with bounded exponential backoff: the sender
  keeps a pristine copy of every in-flight payload in a per-channel
  *outbox* (process memory for the threaded backend, a mirror
  shared-memory arena for the multiprocess one), and a receiver that
  times out or sees a bad checksum pulls the retransmission from there.
  Retransmitted traffic is accounted separately
  (``retransmits``/``retrans_bytes`` on the wire ledger) so the exact
  measured-vs-predicted per-pair parity check still holds under faults;

* the **fault plan** — a seeded, deterministic description of which
  faults to inject where.  Decisions are pure functions of
  ``(seed, kind, src, dst, seq)`` (a CRC32 hash, no mutable PRNG
  state), so the *set* of faulted wire events is identical across
  thread/process interleavings and across the replay attempts the
  crash-recovery path makes.  Rank crashes are the exception: they
  consume a shared budget (``crash_budget``), so a crashed rank comes
  back healthy after its restart instead of dying at the same program
  point forever.

Fault taxonomy (``KINDS``): ``drop`` (frame never enters the channel),
``dup`` (a second, non-pooled copy follows the original), ``corrupt``
(bytes of the wire copy flipped after the checksum was taken),
``delay`` (the sender sleeps before posting), ``reorder`` (the frame is
held back and posted after its successor), ``crash`` (the worker
thread/process dies at a send boundary — a safe point that holds no
queue locks).
"""

from __future__ import annotations

import struct
import threading
import zlib
from dataclasses import dataclass, fields

import numpy as np

#: Injectable fault kinds, in ledger order.
KINDS = ("drop", "dup", "corrupt", "delay", "reorder", "crash")
_KIND_ID = {kind: i for i, kind in enumerate(KINDS)}


class ChaosCrash(Exception):
    """Internal: a ``crash`` fault fired — the worker must die here
    (thread: exit the worker loop without reporting; process:
    ``os._exit``).  Never escapes a backend."""

    def __init__(self, rank: int) -> None:
        super().__init__(f"injected crash on rank {rank}")
        self.rank = rank


def payload_crc(buf: np.ndarray) -> int:
    """CRC32 of a contiguous float64 payload's bytes."""
    return zlib.crc32(buf)


def _roll(seed: int, kind: str, src: int, dst: int, seq: int) -> float:
    """Deterministic uniform [0, 1) draw for one wire event.  A pure
    hash — no shared PRNG state — so every thread/process/attempt
    agrees on which events fault."""
    key = struct.pack(
        "<IIiiI", seed & 0xFFFFFFFF, _KIND_ID[kind],
        src, dst, seq & 0xFFFFFFFF,
    )
    return zlib.crc32(key) / 4294967296.0


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic chaos specification.

    Rates are per-wire-send probabilities, decided by :func:`_roll`.
    ``crash_budget`` bounds the total number of injected crashes (shared
    across ranks and replay attempts); ``delay_s`` is the injected
    latency, deliberately longer than ``nack_timeout_s`` by default so
    delays exercise the spurious-retransmit + dedup path.  Picklable —
    the multiprocess workers receive it verbatim.
    """

    seed: int = 0
    drop: float = 0.0
    dup: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0
    crash: float = 0.0
    crash_budget: int = 1
    delay_s: float = 0.08
    nack_timeout_s: float = 0.03
    backoff_cap_s: float = 0.5

    def rate(self, kind: str) -> float:
        return float(getattr(self, kind))

    @property
    def active(self) -> bool:
        return any(self.rate(k) > 0.0 for k in KINDS)

    @property
    def needs_outbox(self) -> bool:
        """Repair machinery is only materialized when a fault class that
        requires it can fire (clean runs stay copy-free)."""
        return self.active

    @classmethod
    def single(cls, kind: str, seed: int = 0, rate: float = 0.125,
               **overrides) -> "FaultPlan":
        """A single-fault-class plan: one kind at ``rate``, everything
        else off.  The seeded hash picks *which* sends fault."""
        if kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {KINDS}"
            )
        return cls(seed=seed, **{kind: rate}, **overrides)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--chaos-spec`` string: comma-separated ``key=value``
        pairs over the dataclass fields, e.g.
        ``"seed=7,drop=0.05,corrupt=0.02,crash=0.01,crash_budget=2"``."""
        valid = {f.name: f.type for f in fields(cls)}
        kwargs: dict = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            name, sep, value = item.partition("=")
            name = name.strip()
            if not sep or name not in valid:
                known = ", ".join(sorted(valid))
                raise ValueError(
                    f"bad chaos spec item {item!r}: expected KEY=VALUE "
                    f"with KEY one of {known}"
                )
            kwargs[name] = (
                int(value) if name in ("seed", "crash_budget")
                else float(value)
            )
        return cls(**kwargs)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class ChaosState:
    """Mutable chaos bookkeeping shared by one transport's workers.

    Tracks the per-rank injected-fault ledger (what the plan actually
    fired, by kind) and the remaining crash budget.  The threaded and
    inline backends use plain process memory behind a lock; the
    multiprocess backend passes shared primitives (``ledger_array``: a
    flat ``RawArray('q', nranks * len(KINDS))``, ``crash_counter``: an
    ``mp.Value``) so worker processes and the collector see one ledger.
    """

    def __init__(
        self,
        plan: FaultPlan,
        nranks: int,
        ledger_array=None,
        crash_counter=None,
    ) -> None:
        self.plan = plan
        self.nranks = nranks
        self._ledger = ledger_array
        if ledger_array is None:
            self._local = [[0] * len(KINDS) for _ in range(nranks)]
        self._crashes = crash_counter
        self._crashes_local = 0
        self._lock = threading.Lock()

    # -- decisions ---------------------------------------------------------

    def fires(self, kind: str, src: int, dst: int, seq: int) -> bool:
        rate = self.plan.rate(kind)
        if rate <= 0.0:
            return False
        if _roll(self.plan.seed, kind, src, dst, seq) >= rate:
            return False
        if kind == "crash" and not self._take_crash():
            return False
        self.record(src, kind)
        return True

    def _take_crash(self) -> bool:
        """Consume one unit of the crash budget; False once exhausted —
        the restarted worker survives its old crash point."""
        if self._crashes is not None:
            with self._crashes.get_lock():
                if self._crashes.value >= self.plan.crash_budget:
                    return False
                self._crashes.value += 1
                return True
        with self._lock:
            if self._crashes_local >= self.plan.crash_budget:
                return False
            self._crashes_local += 1
            return True

    # -- ledger ------------------------------------------------------------

    def record(self, rank: int, kind: str) -> None:
        idx = _KIND_ID[kind]
        if self._ledger is not None:
            self._ledger[rank * len(KINDS) + idx] += 1
        else:
            with self._lock:
                self._local[rank][idx] += 1

    def ledger(self) -> dict[int, dict[str, int]]:
        """Per-rank injected-fault counts, only nonzero entries."""
        out: dict[int, dict[str, int]] = {}
        for rank in range(self.nranks):
            row = {}
            for kind, idx in _KIND_ID.items():
                n = (
                    self._ledger[rank * len(KINDS) + idx]
                    if self._ledger is not None
                    else self._local[rank][idx]
                )
                if n:
                    row[kind] = int(n)
            if row:
                out[rank] = row
        return out

    def injected_total(self) -> int:
        return sum(sum(row.values()) for row in self.ledger().values())
