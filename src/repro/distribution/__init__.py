"""HPF data distribution: processor grids and array layouts."""

from .layout import DimMapping, DistFormat, Layout, ProcessorGrid, replicated_layout

__all__ = [
    "DimMapping",
    "DistFormat",
    "Layout",
    "ProcessorGrid",
    "replicated_layout",
]
