"""HPF data layouts: processor grids, templates, and array distributions.

A :class:`Layout` records, for one array, how each dimension is mapped:
``BLOCK`` or ``CYCLIC`` onto an axis of a processor grid, or ``COLLAPSED``
(``*`` in HPF) meaning the whole dimension lives on every owning processor.
Layouts are produced by :mod:`repro.frontend.analysis` from the program's
directives after parameter resolution, so all extents here are concrete
integers.

The communication analysis needs only a few questions answered:

* are two layouts element-wise identical (same grid, formats, extents)?
* which dimensions are distributed, and with what block size?
* who owns element ``i`` of dimension ``d``?
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import SemanticError


class DistFormat(enum.Enum):
    """Distribution format of one array/template dimension."""

    BLOCK = "BLOCK"
    CYCLIC = "CYCLIC"
    COLLAPSED = "*"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ProcessorGrid:
    """A named Cartesian grid of processors, e.g. ``PROCESSORS p(5, 5)``."""

    name: str
    shape: tuple[int, ...]

    @property
    def size(self) -> int:
        return math.prod(self.shape)

    def __post_init__(self) -> None:
        if not self.shape or any(s < 1 for s in self.shape):
            raise SemanticError(f"processor grid {self.name!r} has invalid shape {self.shape}")


@dataclass(frozen=True)
class DimMapping:
    """How one array dimension is mapped.

    ``grid_axis`` is the axis of the processor grid this dimension is
    distributed over, or ``None`` for collapsed dimensions.  ``extent`` is
    the concrete dimension size (1-based indexing: valid indices are
    ``1..extent``).
    """

    format: DistFormat
    extent: int
    grid_axis: int | None = None

    def __post_init__(self) -> None:
        distributed = self.format is not DistFormat.COLLAPSED
        if distributed and self.grid_axis is None:
            raise SemanticError("distributed dimension needs a grid axis")
        if not distributed and self.grid_axis is not None:
            raise SemanticError("collapsed dimension must not name a grid axis")
        if self.extent < 1:
            raise SemanticError(f"dimension extent must be positive, got {self.extent}")

    @property
    def is_distributed(self) -> bool:
        return self.format is not DistFormat.COLLAPSED


@dataclass(frozen=True)
class Layout:
    """The resolved mapping of one array onto a processor grid."""

    array: str
    grid: ProcessorGrid
    dims: tuple[DimMapping, ...]
    elem_bytes: int = 8

    def __post_init__(self) -> None:
        used = [d.grid_axis for d in self.dims if d.grid_axis is not None]
        if len(used) != len(set(used)):
            raise SemanticError(
                f"array {self.array!r}: two dimensions mapped to the same grid axis"
            )
        for d in self.dims:
            if d.grid_axis is not None and d.grid_axis >= len(self.grid.shape):
                raise SemanticError(
                    f"array {self.array!r}: grid axis {d.grid_axis} out of range "
                    f"for grid {self.grid.name!r}{self.grid.shape}"
                )

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(d.extent for d in self.dims)

    @property
    def distributed_dims(self) -> tuple[int, ...]:
        """Indices (0-based) of distributed array dimensions."""
        return tuple(i for i, d in enumerate(self.dims) if d.is_distributed)

    def procs_along(self, dim: int) -> int:
        """Number of processors the given array dimension is spread over."""
        m = self.dims[dim]
        if m.grid_axis is None:
            return 1
        return self.grid.shape[m.grid_axis]

    def block_size(self, dim: int) -> int:
        """Block size of a BLOCK dimension: ceil(extent / procs)."""
        m = self.dims[dim]
        if m.format is not DistFormat.BLOCK:
            raise SemanticError(f"dimension {dim} of {self.array!r} is not BLOCK")
        return -(-m.extent // self.procs_along(dim))

    def owner_coord(self, dim: int, index: int) -> int:
        """Grid coordinate (along this dimension's grid axis) of the
        processor owning 1-based ``index`` along ``dim``."""
        m = self.dims[dim]
        if not 1 <= index <= m.extent:
            raise SemanticError(
                f"index {index} out of bounds for dim {dim} of {self.array!r} "
                f"(extent {m.extent})"
            )
        if m.format is DistFormat.COLLAPSED:
            return 0
        procs = self.procs_along(dim)
        if m.format is DistFormat.BLOCK:
            return (index - 1) // self.block_size(dim)
        return (index - 1) % procs

    def local_span(self, dim: int, coord: int) -> tuple[int, int]:
        """Inclusive 1-based [lo, hi] owned by grid coordinate ``coord``
        along a BLOCK dimension (empty span returns lo > hi)."""
        m = self.dims[dim]
        if m.format is not DistFormat.BLOCK:
            raise SemanticError(f"local_span only defined for BLOCK dims")
        bs = self.block_size(dim)
        lo = coord * bs + 1
        hi = min((coord + 1) * bs, m.extent)
        return lo, hi

    def same_mapping(self, other: "Layout") -> bool:
        """True when the two arrays are element-wise identically mapped:
        same grid, and per-dimension the same format, extent, and axis."""
        return (
            self.grid == other.grid
            and len(self.dims) == len(other.dims)
            and all(a == b for a, b in zip(self.dims, other.dims))
        )

    def distribution_signature(self) -> tuple:
        """A hashable key identifying the mapping (ignoring the array name),
        used to group compatible communications."""
        return (self.grid.name, self.grid.shape, self.dims)

    def total_elements(self) -> int:
        return math.prod(self.shape)

    def __str__(self) -> str:
        fmt = ", ".join(
            f"{d.format}" + (f"@{d.grid_axis}" if d.grid_axis is not None else "")
            for d in self.dims
        )
        return f"{self.array}{self.shape} :: ({fmt}) onto {self.grid.name}{self.grid.shape}"


def replicated_layout(array: str, shape: tuple[int, ...], grid: ProcessorGrid,
                      elem_bytes: int = 8) -> Layout:
    """A fully collapsed layout: the whole array on every processor.

    Used for arrays without a DISTRIBUTE/ALIGN directive and for scalars
    promoted to rank-0 arrays.
    """
    dims = tuple(DimMapping(DistFormat.COLLAPSED, extent) for extent in shape)
    return Layout(array, grid, dims, elem_bytes)
