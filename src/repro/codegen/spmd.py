"""SPMD schedule lowering: CFG positions → executable anchors.

The placement algorithm produces positions in the augmented CFG; an
executor walks the *AST*.  This module translates every placed
communication operation into an :class:`Anchor` — a point in the AST
walk where the operation fires:

* ``('start',)`` — before the program body;
* ``('before_stmt', sid)`` / ``('after_stmt', sid)`` — around a statement;
* ``('loop_pre', sid)`` — once, before the DO loop with that sid;
* ``('loop_top', sid)`` — at the top of every iteration;
* ``('loop_post', sid)`` — once, after the loop completes;
* ``('end',)`` — after the program body.

Empty CFG nodes (joins, continuation blocks) forward to the next
executable anchor along their successor chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.context import AnalysisContext
from ..core.pipeline import CompilationResult
from ..core.state import PlacedComm
from ..errors import CodegenError
from ..ir.cfg import Loop, Node, NodeKind, Position

Anchor = tuple


def _loop_of(ctx: AnalysisContext, node: Node, role: str) -> Loop:
    for loop in ctx.cfg.loops:
        if getattr(loop, role) is node:
            return loop
    raise CodegenError(f"no loop with {role} node {node!r}")


def anchor_of_position(ctx: AnalysisContext, pos: Position) -> Anchor:
    """The AST anchor at which a communication placed at ``pos`` fires."""
    node = ctx.node_of(pos)
    if pos.index >= 0:
        return ("after_stmt", node.stmts[pos.index].sid)

    seen: set[int] = set()
    while True:
        if node.id in seen:
            raise CodegenError(f"cycle while anchoring position {pos}")
        seen.add(node.id)
        if node.stmts:
            return ("before_stmt", node.stmts[0].sid)
        kind = node.kind
        if kind is NodeKind.ENTRY:
            return ("start",)
        if kind is NodeKind.EXIT:
            return ("end",)
        if kind is NodeKind.PREHEADER:
            return ("loop_pre", _loop_of(ctx, node, "preheader").stmt.sid)
        if kind is NodeKind.HEADER:
            return ("loop_top", _loop_of(ctx, node, "header").stmt.sid)
        if kind is NodeKind.POSTEXIT:
            return ("loop_post", _loop_of(ctx, node, "postexit").stmt.sid)
        if kind is NodeKind.LATCH:
            raise CodegenError(f"communication anchored at a latch: {pos}")
        if kind is NodeKind.BRANCH:
            # The branch node executes unconditionally right before its IF;
            # forwarding into an arm would make the fire conditional.
            if node.origin_sid >= 0:
                return ("before_stmt", node.origin_sid)
            raise CodegenError(f"branch node without origin for {pos}")
        if kind is NodeKind.JOIN:
            if node.origin_sid >= 0:
                return ("after_stmt", node.origin_sid)
            raise CodegenError(f"join node without origin for {pos}")
        # Empty plain block: forward along the (unique) successor.
        if len(node.succs) != 1:
            raise CodegenError(
                f"empty node {node!r} with {len(node.succs)} successors"
            )
        node = node.succs[0]


@dataclass
class ScheduledProgram:
    """A compiled program plus its executable communication schedule."""

    result: CompilationResult
    anchors: dict[Anchor, list[PlacedComm]] = field(default_factory=dict)

    @property
    def ctx(self) -> AnalysisContext:
        return self.result.ctx

    def ops_at(self, anchor: Anchor) -> list[PlacedComm]:
        return self.anchors.get(anchor, [])


def lower_schedule(result: CompilationResult) -> ScheduledProgram:
    """Anchor every placed communication operation in the AST walk."""
    sched = ScheduledProgram(result)
    for op in result.placed:
        anchor = anchor_of_position(result.ctx, op.position)
        sched.anchors.setdefault(anchor, []).append(op)
    return sched
