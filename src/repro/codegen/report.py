"""Human-readable compilation reports.

The paper's prototype emitted "scalarized code annotated with human
readable communication entries" for inspection; this module is the
equivalent: a textual schedule report (what communicates, where, how big)
and an annotated program listing with communication calls interleaved at
their anchors.
"""

from __future__ import annotations

from ..core.pipeline import CompilationResult
from ..core.state import PlacedComm
from ..frontend import ast_nodes as ast
from .spmd import lower_schedule


def _op_line(result: CompilationResult, op: PlacedComm) -> str:
    ctx = result.ctx
    node = ctx.node_of(op.position)
    ranges = ctx.sections.live_ranges_at(node)
    parts = []
    for entry in op.entries:
        section = ctx.sections.section_at(entry.use, node)
        count = section.max_count(ranges)
        tag = f"{section} ({count} elems)"
        if entry.absorbed:
            tag += " [covers " + ", ".join(a.label for a in entry.absorbed) + "]"
        parts.append(tag)
    mapping = op.entries[0].pattern.mapping
    return f"COMM {op.kind} {mapping}: " + "; ".join(parts)


def schedule_report(result: CompilationResult) -> str:
    """Summary of every placed communication operation."""
    lines = [
        f"program {result.program.name!r} compiled with strategy "
        f"{result.strategy.value!r}:",
        f"  {len(result.entries)} communication entries, "
        f"{len(result.eliminated_entries())} eliminated as redundant, "
        f"{result.call_sites()} call sites emitted",
    ]
    for kind, count in sorted(result.call_sites_by_kind().items()):
        lines.append(f"    {kind}: {count}")
    lines.append("")
    for op in result.placed:
        where = result.ctx.describe_position(op.position)
        lines.append(f"  @ {where}")
        lines.append(f"    {_op_line(result, op)}")
    return "\n".join(lines)


def annotated_listing(result: CompilationResult) -> str:
    """The scalarized program with COMM calls interleaved at their
    anchors — the paper's trace-dump view."""
    schedule = lower_schedule(result)
    lines: list[str] = []

    def emit_ops(anchor: tuple, indent: int) -> None:
        for op in schedule.ops_at(anchor):
            lines.append("  " * indent + "! " + _op_line(result, op))

    def emit_body(body: list[ast.Stmt], indent: int) -> None:
        for stmt in body:
            emit_ops(("before_stmt", stmt.sid), indent)
            if isinstance(stmt, ast.Assign):
                lines.append("  " * indent + str(stmt))
            elif isinstance(stmt, ast.Do):
                emit_ops(("loop_pre", stmt.sid), indent)
                lines.append(
                    "  " * indent
                    + f"DO {stmt.var} = {stmt.lo}, {stmt.hi}, {stmt.step}"
                )
                emit_ops(("loop_top", stmt.sid), indent + 1)
                emit_body(stmt.body, indent + 1)
                lines.append("  " * indent + "END DO")
                emit_ops(("loop_post", stmt.sid), indent)
            elif isinstance(stmt, ast.If):
                lines.append("  " * indent + f"IF {stmt.cond} THEN")
                emit_body(stmt.then_body, indent + 1)
                if stmt.else_body:
                    lines.append("  " * indent + "ELSE")
                    emit_body(stmt.else_body, indent + 1)
                lines.append("  " * indent + "END IF")
            emit_ops(("after_stmt", stmt.sid), indent)

    lines.append(f"PROGRAM {result.program.name}")
    emit_ops(("start",), 1)
    emit_body(result.program.body, 1)
    emit_ops(("end",), 1)
    lines.append("END PROGRAM")
    return "\n".join(lines)
