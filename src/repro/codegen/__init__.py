"""Schedule lowering and human-readable compilation reports."""

from .report import annotated_listing, schedule_report
from .spmd import Anchor, ScheduledProgram, anchor_of_position, lower_schedule

__all__ = [
    "Anchor",
    "ScheduledProgram",
    "anchor_of_position",
    "annotated_listing",
    "lower_schedule",
    "schedule_report",
]
