"""Source emission for fused per-rank runtime kernels.

The vectorized SPMD executor interprets every nest firing: it walks the
RHS expression tree in Python, re-derives per-rank iteration boxes and
numpy index tuples, and re-counts remote reads with RSD arithmetic.  All
of that is geometry — constant for a given (nest, concrete per-rank
layout) pair.  This module lowers that geometry one level further into
*source text*: a specialized Python function per (nest, geometry) key
whose body is

* one fused statement computing the shadow block over prebound aligned
  views (no AST walk, no per-reference temporaries),
* straight-line per-rank validity/staleness checks against prebound
  storage and shadow views (the oracle survives compilation),
* straight-line per-rank stores with the iteration-box slices and
  store-order transposes baked in as literals.

Subscript offsets that vary across firings (an enclosing loop variable
indexing a serial array dimension — gravity's ``g(i, :, :)``) become
runtime arguments: the emitted index expressions reference ``_q{n}``
instead of a literal, so one compiled kernel serves every iteration.
Offsets along *distributed* dimensions change rank participation and
mark the nest kernel-ineligible (the vectorized interpreter path keeps
it, with the reason recorded).

Two compute tiers share the checks/stores skeleton:

* **python** — the fused numpy statement described above;
* **numba** — :func:`loop_source` emits the same RHS as flattened
  strided scalar loops over the full iteration box, suitable for
  ``numba.njit``; the runtime wraps and falls back to the python tier
  when numba is absent or compilation fails.

:func:`pack_source` / :func:`unpack_source` emit the transfer-buffer
kernels the transport backends use: gather a send's indexed box straight
into a pooled (or shared-memory) wire buffer and scatter it back into
rank storage, with the index tuple baked in — no intermediate block
copy, identical payload bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..frontend import ast_nodes as ast
from ..runtime.plans import ConcreteNest, NestPlan

__all__ = [
    "DynDim",
    "NestSpec",
    "analyze_kernel_spec",
    "emit_index",
    "fused_rhs_source",
    "loop_source",
    "pack_source",
    "unpack_source",
    "slice_literal",
]


# ---------------------------------------------------------------------------
# Static kernel analysis: which parts of a nest vary across firings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DynDim:
    """One subscript dimension whose base offset is a runtime argument:
    argument ``arg`` plus the plan-time affine rest of the subscript."""

    arg: int  # index into the kernel's dynamic-offset argument list


@dataclass
class NestSpec:
    """Per-sid static kernel analysis, shared by every geometry key.

    ``dyn_args`` holds the distinct affine base forms evaluated per
    firing (deduplicated — ``g(i, ...)`` and ``glast(i, ...)`` share one
    argument); ``dyn_dims`` maps ``(ref kind, ref id, dim)`` to the
    argument feeding that dimension.  ``scal_args`` lists the non-nest
    scalar variables the RHS reads, resolved per firing through the
    shadow interpreter's lookup (so mutated scalars stay fresh).
    ``reason`` non-None marks the nest kernel-ineligible.
    """

    plan: NestPlan
    dyn_args: list = field(default_factory=list)  # Affine forms, ordered
    dyn_dims: dict = field(default_factory=dict)  # (kind, rid, dim) -> DynDim
    scal_args: list = field(default_factory=list)  # variable names, ordered
    reason: "str | None" = None


def analyze_kernel_spec(plan: NestPlan, info) -> NestSpec:
    """Classify every subscript base and RHS scalar of ``plan`` as baked
    or runtime-supplied; reject nests whose varying offsets move along a
    distributed dimension (rank participation would change per firing).
    """
    spec = NestSpec(plan=plan)
    params = set(info.params)
    arg_index: dict = {}

    def classify(kind: str, rid, refplan) -> "str | None":
        layout = info.layout(refplan.name)
        for d, sp in enumerate(refplan.subs):
            if sp.base.symbols <= params:
                continue  # resolvable at kernel-build time
            if layout.distributed_dims and layout.dims[d].grid_axis is not None:
                return (
                    f"subscript of {refplan.name} varies along a "
                    f"distributed dimension across firings"
                )
            if sp.var is not None and sp.coeff < 0:
                return (
                    f"negative stride with a varying offset on "
                    f"{refplan.name}"
                )
            arg = arg_index.get(sp.base)
            if arg is None:
                arg = arg_index[sp.base] = len(spec.dyn_args)
                spec.dyn_args.append(sp.base)
            spec.dyn_dims[(kind, rid, d)] = DynDim(arg)
        return None

    reason = classify("lhs", 0, plan.lhs)
    if reason is None:
        for rid, rp in plan.rhs_refs.items():
            reason = classify("rhs", rid, rp)
            if reason is not None:
                break
    if reason is not None:
        spec.reason = reason
        return spec

    nest_vars = set(plan.vars)
    seen: set[str] = set()

    def collect(expr: ast.Expr) -> None:
        # value positions only: subscript variables are geometry, already
        # classified above, not runtime scalar inputs
        if isinstance(expr, ast.VarRef):
            if expr.name not in nest_vars and expr.name not in seen:
                seen.add(expr.name)
                spec.scal_args.append(expr.name)
        elif isinstance(expr, ast.BinOp):
            collect(expr.left)
            collect(expr.right)
        elif isinstance(expr, ast.UnOp):
            collect(expr.operand)
        elif isinstance(expr, ast.Intrinsic):
            for a in expr.args:
                collect(a)

    collect(plan.assign.rhs)
    return spec


# ---------------------------------------------------------------------------
# Index emission
# ---------------------------------------------------------------------------


def slice_literal(first: int, stride: int, count: int) -> str:
    """``first:stop:stride`` source text for a strided run of ``count``
    elements starting at 0-based ``first``."""
    last = first + stride * (count - 1)
    if stride > 0:
        body = f"{first}:{last + 1}"
        return body if stride == 1 else f"{body}:{stride}"
    stop = last - 1
    return f"{first}:{stop if stop >= 0 else ''}:{stride}"


def _dyn_slice(arg: int, off: int, stride: int, count: int) -> str:
    """Slice text whose endpoints ride on runtime argument ``_q{arg}``."""
    lo = f"_q{arg} + {off}" if off else f"_q{arg}"
    hi_off = off + stride * (count - 1) + 1
    hi = f"_q{arg} + {hi_off}" if hi_off else f"_q{arg}"
    body = f"{lo}:{hi}"
    return body if stride == 1 else f"{body}:{stride}"


def emit_index(
    spec: NestSpec, kind: str, rid, refplan, cref, kbox, base_values
) -> str:
    """The bracket-index source for one reference restricted to ``kbox``.

    ``base_values`` maps each dimension to the build-time evaluated base
    (needed to express dynamic offsets relative to the runtime argument).
    Mirrors :func:`repro.runtime.plans.ref_np_index` exactly for static
    dimensions.
    """
    parts: list[str] = []
    for d, dim in enumerate(cref.dims):
        dyn = spec.dyn_dims.get((kind, rid, d))
        if dim[0] == "p":
            if dyn is None:
                parts.append(str(dim[1] - 1))
            else:
                parts.append(f"_q{dyn.arg} - 1")
            continue
        _, axis, start, stride = dim
        k0, kstep, kcount = kbox[axis]
        first = start + stride * k0 - 1
        st = stride * kstep
        if dyn is None:
            parts.append(slice_literal(first, st, kcount))
        else:
            parts.append(
                _dyn_slice(dyn.arg, first - base_values[d], st, kcount)
            )
    return ", ".join(parts)


def box_slice_literal(kbox) -> str:
    """Literal index text selecting ``kbox`` out of a full-box block."""
    return ", ".join(
        slice_literal(k0, kstep, kcount) for k0, kstep, kcount in kbox
    )


# ---------------------------------------------------------------------------
# Fused RHS emission (python tier)
# ---------------------------------------------------------------------------

_CMP = {"==": "==", "/=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_INTRINSIC_NP = {
    "SQRT": "_np.sqrt",
    "ABS": "_np.abs",
    "EXP": "_np.exp",
    "LOG": "_np.log",
    "MOD": "_np.mod",
    "MIN": "_np.minimum",
    "MAX": "_np.maximum",
}


def fused_rhs_source(
    spec: NestSpec, conc: ConcreteNest, ref_exprs: dict
) -> str:
    """One expression computing the nest's RHS block.

    ``ref_exprs`` maps ``id(ArrayRef)`` to the source text standing for
    that reference's aligned block (a prebound view name, or an inline
    aligner call for dynamic references).  Operator and intrinsic
    lowering matches :func:`repro.runtime.plans.eval_rhs_block` —
    identical numpy operations in identical order, so the block is
    bitwise-identical to the interpreted path's.
    """
    var_axis = {v: i for i, v in enumerate(spec.plan.vars)}
    scal_arg = {
        name: len(spec.dyn_args) + i for i, name in enumerate(spec.scal_args)
    }

    def ev(expr: ast.Expr) -> str:
        if isinstance(expr, ast.Num):
            return repr(float(expr.value))
        if isinstance(expr, ast.VarRef):
            axis = var_axis.get(expr.name)
            if axis is not None:
                return f"_ax{axis}"
            return f"_q{scal_arg[expr.name]}"
        if isinstance(expr, ast.ArrayRef):
            return ref_exprs[id(expr)]
        if isinstance(expr, ast.BinOp):
            left, right = ev(expr.left), ev(expr.right)
            if expr.op in ("+", "-", "*", "/"):
                return f"({left} {expr.op} {right})"
            if expr.op in _CMP:
                return (
                    f"_np.where({left} {_CMP[expr.op]} {right}, 1.0, 0.0)"
                )
            if expr.op == "AND":
                return (
                    f"_np.where(({left} != 0) & ({right} != 0), 1.0, 0.0)"
                )
            if expr.op == "OR":
                return (
                    f"_np.where(({left} != 0) | ({right} != 0), 1.0, 0.0)"
                )
            raise SimulationError(f"unknown operator {expr.op!r}")
        if isinstance(expr, ast.UnOp):
            value = ev(expr.operand)
            if expr.op == "-":
                return f"(-{value})"
            return f"_np.where({value} != 0, 0.0, 1.0)"
        if isinstance(expr, ast.Intrinsic):
            fn = _INTRINSIC_NP.get(expr.name)
            if fn is None:
                raise SimulationError(f"unknown intrinsic {expr.name!r}")
            args = ", ".join(ev(a) for a in expr.args)
            return f"{fn}({args})"
        raise SimulationError(f"cannot emit kernel source for {expr!r}")

    return ev(spec.plan.assign.rhs)


# ---------------------------------------------------------------------------
# Flattened strided loops (numba tier)
# ---------------------------------------------------------------------------

_INTRINSIC_SCALAR = {
    "SQRT": "_math.sqrt({0})",
    "ABS": "abs({0})",
    "EXP": "_math.exp({0})",
    "LOG": "_math.log({0})",
    "MOD": "({0} % {1})",
    "MIN": "min({0}, {1})",
    "MAX": "max({0}, {1})",
}


def loop_source(
    spec: NestSpec, conc: ConcreteNest, ref_order: list
) -> str:
    """Flattened strided scalar loops computing the full-box RHS block
    element by element — the ``numba.njit``-compilable tier.

    ``ref_order`` fixes the positional array arguments (``id(ArrayRef)``
    in order); the emitted function signature is
    ``_loop(out, _a0, ..., _q0, ...)`` with scalar arguments last.
    Only valid for fully-static nests (no dynamic offsets).
    """
    var_axis = {v: i for i, v in enumerate(spec.plan.vars)}
    arg_of = {rid: i for i, rid in enumerate(ref_order)}
    scal_arg = {
        name: len(spec.dyn_args) + i for i, name in enumerate(spec.scal_args)
    }

    def scalar_index(cref) -> str:
        parts = []
        for dim in cref.dims:
            if dim[0] == "p":
                parts.append(str(dim[1] - 1))
                continue
            _, axis, start, stride = dim
            if stride == 1:
                parts.append(f"_k{axis} + {start - 1}")
            else:
                parts.append(f"_k{axis} * {stride} + {start - 1}")
        return ", ".join(parts)

    def ev(expr: ast.Expr) -> str:
        if isinstance(expr, ast.Num):
            return repr(float(expr.value))
        if isinstance(expr, ast.VarRef):
            axis = var_axis.get(expr.name)
            if axis is not None:
                lo_v, step, _ = conc.axes[axis]
                return f"({lo_v}.0 + {step}.0 * _k{axis})"
            return f"_q{scal_arg[expr.name]}"
        if isinstance(expr, ast.ArrayRef):
            cref = conc.refs[id(expr)]
            return f"_a{arg_of[id(expr)]}[{scalar_index(cref)}]"
        if isinstance(expr, ast.BinOp):
            left, right = ev(expr.left), ev(expr.right)
            if expr.op in ("+", "-", "*", "/"):
                return f"({left} {expr.op} {right})"
            if expr.op in _CMP:
                return f"(1.0 if {left} {_CMP[expr.op]} {right} else 0.0)"
            if expr.op == "AND":
                return (
                    f"(1.0 if ({left} != 0.0) and ({right} != 0.0) "
                    f"else 0.0)"
                )
            if expr.op == "OR":
                return (
                    f"(1.0 if ({left} != 0.0) or ({right} != 0.0) else 0.0)"
                )
            raise SimulationError(f"unknown operator {expr.op!r}")
        if isinstance(expr, ast.UnOp):
            value = ev(expr.operand)
            if expr.op == "-":
                return f"(-{value})"
            return f"(0.0 if {value} != 0 else 1.0)"
        if isinstance(expr, ast.Intrinsic):
            tmpl = _INTRINSIC_SCALAR.get(expr.name)
            if tmpl is None:
                raise SimulationError(f"unknown intrinsic {expr.name!r}")
            return tmpl.format(*[ev(a) for a in expr.args])
        raise SimulationError(f"cannot emit loop source for {expr!r}")

    arrays = ", ".join(f"_a{i}" for i in range(len(ref_order)))
    scalars = ", ".join(
        f"_q{len(spec.dyn_args) + i}" for i in range(len(spec.scal_args))
    )
    sig = ", ".join(p for p in ("out", arrays, scalars) if p)
    lines = [f"def _loop({sig}):"]
    indent = "    "
    for axis, count in enumerate(conc.shape):
        lines.append(f"{indent}for _k{axis} in range({count}):")
        indent += "    "
    subscript = ", ".join(f"_k{a}" for a in range(len(conc.shape)))
    lines.append(f"{indent}out[{subscript}] = {ev(spec.plan.assign.rhs)}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Transfer pack/unpack kernels
# ---------------------------------------------------------------------------


def index_text(index: tuple) -> str:
    """Bracket text for a concrete numpy index tuple of ints/slices."""
    parts = []
    for part in index:
        if isinstance(part, slice):
            start = "" if part.start is None else str(part.start)
            stop = "" if part.stop is None else str(part.stop)
            body = f"{start}:{stop}"
            if part.step not in (None, 1):
                body += f":{part.step}"
            parts.append(body)
        else:
            parts.append(str(int(part)))
    return ", ".join(parts)


def pack_source(index: tuple, shape: tuple, masked: bool) -> str:
    """A function gathering one send's indexed box into a flat wire
    buffer — the contiguous-copy half of ``extract_payload`` with the
    geometry baked in, writing straight into a caller-provided (pooled
    or shared-memory) buffer instead of allocating."""
    ix = index_text(index)
    if masked:
        return (
            "def _pack(values, out, mask):\n"
            f"    out[...] = values[{ix}][mask]\n"
        )
    return (
        "def _pack(values, out, mask):\n"
        f"    out.reshape({shape!r})[...] = values[{ix}]\n"
    )


def unpack_source(index: tuple, shape: tuple, masked: bool) -> str:
    """The inverse: scatter a flat wire buffer into rank storage and
    mark the region valid (``install_payload`` with baked geometry)."""
    ix = index_text(index)
    if masked:
        return (
            "def _unpack(values, valid, buf, mask):\n"
            f"    values[{ix}][mask] = buf\n"
            f"    valid[{ix}][mask] = True\n"
        )
    return (
        "def _unpack(values, valid, buf, mask):\n"
        f"    values[{ix}] = buf.reshape({shape!r})\n"
        f"    valid[{ix}] = True\n"
    )


def compile_fn(source: str, tag: str, ns: dict):
    """``compile()``/``exec()`` one emitted function and return it.

    ``tag`` labels the pseudo-filename (tracebacks through generated
    kernels stay attributable); the entry point is read off the
    ``def`` line.
    """
    entry = source.split("(", 1)[0].split()[-1]
    code = compile(source, f"<repro-kernel:{tag}>", "exec")
    exec(code, ns)  # noqa: S102 - executing our own emitted source
    return ns[entry]
