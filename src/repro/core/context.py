"""Shared analysis context for the placement passes.

Bundles everything the core algorithm consumes — elaborated program facts,
the augmented CFG, dominators, SSA, the dependence tester, the section
builder, and the pattern classifier — so each pass takes a single
argument and the pipeline builds the whole stack once.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.entries import CommEntry, SectionBuilder
from ..comm.patterns import PatternClassifier
from ..cost.model import CostModel, resolve_machine
from ..dependence.tests import DependenceTester
from ..frontend.analysis import ProgramInfo
from ..ir.cfg import CFG, Node, Position
from ..ir.dominators import DominatorInfo
from ..ir.ssa import SSA
from ..machine.model import MachineModel
from ..perf.stats import CacheStatsRegistry


@dataclass
class CompilerOptions:
    """Tuning knobs for the placement algorithm.

    ``machine`` names the :class:`~repro.machine.model.MachineModel` the
    program is compiled *for* (a preset name or a calibrated model
    instance); the combining threshold is derived from its Figure 5 knee
    by :class:`~repro.cost.model.CostModel` — ~18 KB on the SP2 preset,
    replacing the paper's hand-read 20 KB.  ``combine_threshold_bytes``
    is an explicit byte override for ablations and tests (``None`` means
    "derive from the machine").  ``hull_slack`` and ``hull_const`` bound
    how much larger the single-descriptor union may be than the two
    sections it replaces (§4.7's "small constant").  ``greedy_order``
    and the two ``enable_*`` switches exist for the ablation benchmarks:
    ``constrained`` is the paper's most-constrained-first rule, and the
    paper's §6 notes that subset elimination must be dropped if overlap
    ever becomes an objective.
    """

    combine_threshold_bytes: "int | None" = None
    machine: "str | MachineModel" = "SP2"
    hull_slack: float = 0.25
    hull_const: int = 64
    greedy_order: str = "constrained"  # 'constrained' | 'arbitrary' | 'reversed'
    enable_subset_elimination: bool = True
    enable_redundancy_elimination: bool = True
    # §6.2 extension: let a reduction's combine phase slide later, down to
    # the first use of its result (reversed reached-uses analysis).
    reduction_flexibility: bool = False
    # Final group placement: 'latest' is the paper's choice (reduce buffer
    # and cache contention); 'earliest' maximizes CPU-network overlap (§6's
    # trade-off, exercised by the overlap ablation benchmark).
    group_placement: str = "latest"  # 'latest' | 'earliest'
    # Master switch for every memoized analysis cache (section memo,
    # dependence-verdict memo, live-range memo, combinability and
    # subsumption verdict caches).  Exists so the perf-equivalence suite
    # can assert that cached and uncached pipelines produce byte-identical
    # schedules; leave True outside of that ablation.
    enable_caches: bool = True
    # Fault boundaries: by default a failing optimization pass degrades to
    # the sound LATEST placement (per-entry where possible) and records a
    # DegradationEvent; strict=True re-raises instead, for tests and
    # debugging (see repro.core.faults).
    strict: bool = False
    # Final combining pass: 'greedy' is the paper's §4.7 heuristic; 'ilp'
    # uses the exact §6.1 branch-and-bound where tractable, degrading to
    # greedy when the search space is exceeded.
    placement_search: str = "greedy"  # 'greedy' | 'ilp'
    # Wall-clock budget for the whole-pipeline exact placement search
    # (the 'exact' pipeline, see repro.solver).  The anytime driver
    # always returns its best incumbent — the greedy comb schedule when
    # the budget expires before any improvement; <= 0 skips the search
    # entirely and keeps the greedy seed.
    solver_budget_ms: int = 1000
    # Pass-manager configuration (see repro.core.passes).  Optimization
    # passes named here are skipped (CLI --disable-pass); a non-None
    # pass_pipeline replaces the strategy's named pass list outright with
    # an explicit ordering (CLI --pipeline a,b,c).  Orderings other than
    # the defaults are for experiments: the manager keeps every run sound
    # via the Latest-placement terminal fallback, but schedules may lose
    # optimizations that depend on the canonical §4.5→§4.6→§4.7 order.
    disabled_passes: tuple[str, ...] = ()
    pass_pipeline: "tuple[str, ...] | None" = None
    # Runtime kernel codegen tier (see repro.runtime.kernels): 'auto'
    # probes for numba and otherwise emits fused numpy statements;
    # 'python'/'numba' force a tier ('numba' degrades to 'python' with a
    # recorded reason when unavailable); 'off' keeps the interpreted
    # block path.  SPMDExecutor(kernels=...) overrides per run.
    kernels: str = "auto"  # 'auto' | 'python' | 'numba' | 'off'


class AnalysisContext:
    """All compiler analyses for one elaborated, scalarized program."""

    def __init__(self, info: ProgramInfo, options: CompilerOptions | None = None) -> None:
        self.info = info
        self.options = options or CompilerOptions()
        # The single accessor every combining pass (greedy, ILP, exact
        # solver) reads the message-size threshold through.
        self.cost_model = CostModel(
            machine=resolve_machine(self.options.machine),
            override_threshold_bytes=self.options.combine_threshold_bytes,
        )
        self.cfg = CFG(info.program)
        self.dom = DominatorInfo(self.cfg)
        tracked = set(info.layouts) | set(info.scalars)
        self.ssa = SSA(self.cfg, self.dom, tracked)
        caches_on = self.options.enable_caches
        self.cache_stats = CacheStatsRegistry()
        self.tester = DependenceTester(
            info,
            self.cfg,
            cache_enabled=caches_on,
            stats=self.cache_stats.get("dependence"),
        )
        self.sections = SectionBuilder(
            info,
            self.cfg,
            cache_enabled=caches_on,
            stats=self.cache_stats.get("section"),
        )
        self.classifier = PatternClassifier(info)
        # Pass-level verdict caches (paper §4.6/§4.7 predicates).  Both
        # predicates depend on the queried Position only through its
        # *node* — sections and live ranges are per-node — so verdicts are
        # keyed so every position of a block shares one entry.  The
        # subsumption cache is split into a static stage keyed on the
        # ordered Use-identity pair (Use objects live as long as the SSA,
        # i.e. as long as this context) and a section stage keyed on the
        # ordered pair of hash-consed descriptor ids (the builder's intern
        # pool holds strong references, so ids are stable); both survive
        # entry re-collection, which mints fresh entry ids every round.
        self._combinable_cache: dict[tuple[int, int, int], bool] = {}
        self._subsumes_static_cache: dict[tuple[int, int], bool] = {}
        self._subsumes_section_cache: dict[tuple[int, int], bool] = {}

    # -- position helpers -------------------------------------------------------

    def node_of(self, pos: Position) -> Node:
        return self.cfg.node_by_id(pos.node_id)

    def position_dominates(self, a: Position, b: Position) -> bool:
        return self.dom.position_dominates(a, b)

    def positions_in_node(
        self, node: Node, start: int = -1, end: int | None = None
    ) -> list[Position]:
        if end is None:
            end = len(node.stmts) - 1
        position = self.cfg.position
        return [position(node.id, i) for i in range(start, end + 1)]

    # -- entry discovery -----------------------------------------------------------

    def collect_entries(self) -> list[CommEntry]:
        """One :class:`CommEntry` per distributed-array use that needs
        communication, in program order."""
        distributed = {
            name for name in self.info.layouts if self.info.is_distributed(name)
        }
        entries: list[CommEntry] = []
        for use in self.ssa.array_uses(distributed):
            pattern = self.classifier.classify(use)
            if pattern is None:
                continue
            entries.append(CommEntry(use=use, pattern=pattern))
        return entries

    def describe_position(self, pos: Position) -> str:
        node = self.node_of(pos)
        if pos.index < 0:
            return f"top of {node.label or node.kind}"
        stmt = node.stmts[pos.index]
        return f"after s{stmt.sid} ({stmt})"
