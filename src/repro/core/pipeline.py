"""The compilation pipeline and the three placement strategies.

* ``Strategy.ORIG`` ("orig" in the paper's Figure 10) — message
  vectorization only: every communication at its Latest point, no
  redundancy detection, no combining.  This is the classical single
  loop-nest treatment.
* ``Strategy.EARLIEST`` ("nored") — every communication hoisted to its
  Earliest point, with forward redundancy elimination (an earlier-placed,
  dominating communication that subsumes a later one kills it); no
  combining.  This models earliest-placement dataflow schemes.
* ``Strategy.GLOBAL`` ("comb") — the paper's algorithm: candidate marking
  (§4.4), subset elimination (§4.5), global redundancy elimination (§4.6),
  and greedy combining with push-late group placement (§4.7).

:func:`compile_program` runs parse → elaborate → scalarize → CFG/SSA →
classify → place and returns a :class:`CompilationResult` with the
schedule, counts, per-pass traces, and everything needed by the
simulator and reports.

Placement itself is orchestrated by the :class:`~repro.core.passes.PassManager`:
each strategy is a named pass list (see :data:`repro.core.passes.PIPELINES`),
and every optimization pass runs inside the manager's **fault boundary**
(see :mod:`repro.core.faults`): because ``Latest(u)`` is always a sound
placement, a pass that raises degrades — per-entry for the analyses,
whole-pass with :meth:`PlacementState.clone` snapshot/rollback for the
set-shrinking passes — instead of failing the compile.
``CompilerOptions(strict=True)`` turns the boundaries off.

The pass implementations are invoked through *this module's namespace*
(``pipeline.subset_eliminate`` and so on), so chaos harnesses can break
any pass with a single ``monkeypatch.setattr`` on this module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, TextIO

from ..comm.entries import CommEntry
from ..errors import InternalCompilerError, ReproError
from ..frontend import ast_nodes as ast
from ..frontend.analysis import ProgramInfo, elaborate
from ..frontend.parser import parse
from ..frontend.scalarizer import scalarize
from ..ir.cfg import Position
from .candidates import mark_candidates, verify_candidates
from .context import AnalysisContext, CompilerOptions
from .earliest import compute_earliest
from .faults import DegradationEvent
from .greedy import greedy_choose, ilp_choose
from .latest import compute_latest
from .passes import (
    PassManager,
    PassTrace,
    PlacementPass,
    PlacementRun,
    register_pass,
)
from .redundancy import redundancy_eliminate, subsumes_at
from .state import PlacedComm, PlacementState
from .subset import subset_eliminate


class Strategy(enum.Enum):
    """Compiler versions of the paper's evaluation (Figure 10)."""

    ORIG = "orig"
    EARLIEST = "nored"
    GLOBAL = "comb"

    @staticmethod
    def parse(name: "str | Strategy") -> "Strategy":
        if isinstance(name, Strategy):
            return name
        lowered = name.lower()
        aliases = {
            "orig": Strategy.ORIG,
            "original": Strategy.ORIG,
            "latest": Strategy.ORIG,
            "nored": Strategy.EARLIEST,
            "earliest": Strategy.EARLIEST,
            "redundancy": Strategy.EARLIEST,
            "comb": Strategy.GLOBAL,
            "global": Strategy.GLOBAL,
            "combined": Strategy.GLOBAL,
        }
        if lowered not in aliases:
            raise ValueError(f"unknown strategy {name!r}")
        return aliases[lowered]


@dataclass
class CompilationResult:
    """Everything produced by one compile: analyses, entries, schedule.

    ``degradations`` lists every fault-boundary fallback taken during this
    compile (empty for a clean run); the schedule is sound either way.
    ``pass_traces`` holds one :class:`~repro.core.passes.PassTrace` per
    executed pass — wall time, degradation flag, and counters — surfaced
    by the CLI's ``--trace-json`` and the perf bench harness.
    """

    ctx: AnalysisContext
    strategy: Strategy
    entries: list[CommEntry]
    placed: list[PlacedComm]
    stats: dict[str, int] = field(default_factory=dict)
    degradations: list[DegradationEvent] = field(default_factory=list)
    pass_traces: list[PassTrace] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    @property
    def info(self) -> ProgramInfo:
        return self.ctx.info

    @property
    def program(self) -> ast.Program:
        return self.ctx.info.program

    def call_sites(self) -> int:
        """Static communication call sites (the paper's message counts:
        a combined group is a single site)."""
        return len(self.placed)

    def call_sites_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for pc in self.placed:
            counts[pc.kind] = counts.get(pc.kind, 0) + 1
        return counts

    def eliminated_entries(self) -> list[CommEntry]:
        return [e for e in self.entries if not e.alive]


def analyze_entries(
    ctx: AnalysisContext,
    faults: list[DegradationEvent] | None = None,
) -> list[CommEntry]:
    """Discover entries and compute Latest/Earliest/candidates for each.

    Each per-entry analysis runs inside a fault boundary: a failing
    ``compute_latest`` pins the entry immediately before its use (the most
    conservative sound point); a failing ``compute_earliest`` or candidate
    marking collapses the entry's flexibility to Latest alone.  Events go
    into ``faults``; ``strict`` options re-raise.
    """
    strict = ctx.options.strict
    if faults is None:
        faults = []
    entries = ctx.collect_entries()
    for entry in entries:
        try:
            compute_latest(ctx, entry)
        except Exception as exc:
            if strict:
                raise
            entry.comm_level = entry.use.node.nl
            entry.latest_pos = ctx.cfg.position_before(entry.use.stmt)
            faults.append(DegradationEvent.from_exception(
                "latest", exc, "pinned immediately before the use", entry
            ))
        try:
            compute_earliest(ctx, entry)
        except Exception as exc:
            if strict:
                raise
            entry.earliest_pos = entry.latest_pos
            faults.append(DegradationEvent.from_exception(
                "earliest", exc, "no hoisting (Earliest := Latest)", entry
            ))
        try:
            mark_candidates(ctx, entry)
            verify_candidates(ctx, entry)
        except Exception as exc:
            if strict:
                raise
            assert entry.latest_pos is not None
            entry.earliest_pos = entry.latest_pos
            entry.candidates = [entry.latest_pos]
            entry._candidate_set = None
            faults.append(DegradationEvent.from_exception(
                "candidates", exc, "single-position chain at Latest", entry
            ))
    return entries


def _reset_eliminations(entries: list[CommEntry]) -> None:
    """Undo every redundancy-elimination mark so all entries are alive
    again (the precondition for the latest-placement fallback)."""
    for entry in entries:
        entry.eliminated_by = None
        entry.absorbed = []


def _latest_placement(entries: list[CommEntry]) -> list[PlacedComm]:
    """The always-sound schedule: every entry, alone, at its Latest point
    (identical to ``Strategy.ORIG``)."""
    placed = [PlacedComm(e.latest_pos, [e]) for e in entries if e.latest_pos]
    placed.sort(key=lambda pc: pc.position)
    return placed


def place(
    ctx: AnalysisContext,
    entries: list[CommEntry],
    strategy: Strategy,
    faults: list[DegradationEvent] | None = None,
    traces: list[PassTrace] | None = None,
    dump_after: tuple[str, ...] = (),
    dump_stream: Optional[TextIO] = None,
) -> tuple[list[PlacedComm], dict[str, int]]:
    """Run one placement strategy over analyzed entries.

    Thin wrapper over the :class:`~repro.core.passes.PassManager`: the
    strategy resolves to a pass list (honoring ``options.pass_pipeline``,
    ``options.disabled_passes``, and ``options.placement_search``) and
    the manager supplies the snapshot/rollback fault boundary, the
    degradation events, and — when ``traces`` is given — one
    :class:`PassTrace` per executed pass.
    """
    if faults is None:
        faults = []
    manager = PassManager.for_strategy(
        strategy, ctx.options, dump_after=dump_after, dump_stream=dump_stream
    )
    run = manager.execute(ctx, entries, faults, traces)
    return run.placed, run.stats


def _place_earliest(
    ctx: AnalysisContext, entries: list[CommEntry], stats: dict[str, int]
) -> list[PlacedComm]:
    """Earliest placement with forward redundancy elimination only."""

    def dominance_key(entry: CommEntry) -> tuple[int, int, int]:
        pos = entry.earliest_pos
        assert pos is not None
        node = ctx.node_of(pos)
        return (ctx.dom.dominator_depth(node), pos.index, entry.id)

    def covers(winner: CommEntry, loser: CommEntry) -> bool:
        p, lp = winner.earliest_pos, loser.earliest_pos
        assert p is not None and lp is not None
        # Earliest-placement redundancy is backward-looking availability:
        # the winner must already be placed at (or above) the loser's point
        # — this is exactly why the scheme misses Figure 4's b1/b2 pair —
        # and its placement must be a valid delivery point for the loser's
        # data (inside the loser's candidate chain), subsuming it there.
        return (
            ctx.position_dominates(p, lp)
            and p in loser.candidate_set()
            and subsumes_at(ctx, winner, loser, p)
        )

    kept: list[CommEntry] = []
    redundant = 0
    for entry in sorted(entries, key=dominance_key):
        killer = next((prior for prior in kept if covers(prior, entry)), None)
        if killer is not None:
            entry.eliminated_by = killer
            killer.absorbed.append(entry)
            redundant += 1
            continue
        # Pairwise check both ways (paper: each pair of entries placed at a
        # point is tested): this entry may subsume an already-kept one.
        for prior in list(kept):
            if covers(entry, prior):
                prior.eliminated_by = entry
                entry.absorbed.append(prior)
                kept.remove(prior)
                redundant += 1
        kept.append(entry)
    stats["redundant"] = redundant
    placed = [PlacedComm(e.earliest_pos, [e]) for e in kept if e.earliest_pos]
    placed.sort(key=lambda pc: pc.position)
    return placed


# ---------------------------------------------------------------------------
# Pipeline-level passes (analysis and the two single-pass strategies).
# The set-shrinking/combining passes register next to their
# implementations in subset.py / redundancy.py / greedy.py / ilp.py.
# ---------------------------------------------------------------------------


@register_pass
class AnalyzePass(PlacementPass):
    """§4.2–4.4: Latest/Earliest walks and candidate-chain construction.

    Fault handling is *per entry* inside :func:`analyze_entries` (a flaky
    analysis pins one entry, not the whole program), so the manager's
    whole-pass boundary stays out of the way: an exception escaping the
    per-entry boundaries is a structural failure and propagates.
    """

    name = "analyze"
    section = "§4.2-4.4"
    description = "Latest/Earliest analysis and candidate chains, per entry"
    optimization = False  # the algorithm cannot run without its inputs
    sound = True

    def run(self, run: PlacementRun) -> Optional[dict[str, int]]:
        run.entries = analyze_entries(run.ctx, run.faults)
        return None


@register_pass
class LatestPlacementPass(PlacementPass):
    """§4.2 terminal pass: every entry, alone, at its Latest point.

    This *is* the soundness floor every boundary falls back to, so it has
    no fault boundary of its own — a failure here is a compiler bug and
    surfaces as :class:`InternalCompilerError`.
    """

    name = "latest-placement"
    section = "§4.2"
    description = "message-vectorized baseline: each entry at Latest"
    optimization = False
    sound = True

    def run(self, run: PlacementRun) -> Optional[dict[str, int]]:
        run.placed = _latest_placement(run.entries)
        return None


@register_pass
class EarliestPlacementPass(PlacementPass):
    """§4.3-style dataflow scheme: Earliest placement plus forward
    redundancy elimination (the ``nored`` column of Figure 10)."""

    name = "earliest-placement"
    section = "§4.3"
    description = "hoist to Earliest with forward redundancy elimination"
    mutates_entries = True  # forward elimination marks roll back on fault
    fallback_desc = "every entry at its Latest point"

    def run(self, run: PlacementRun) -> dict[str, int]:
        from . import pipeline as pl  # late: monkeypatchable namespace

        run.placed = pl._place_earliest(run.ctx, run.entries, run.stats)
        return {"redundant": run.stats.get("redundant", 0)}

    def recover(self, run: PlacementRun) -> dict[str, int]:
        run.placed = _latest_placement(run.entries)
        return {"redundant": 0}


def compile_program(
    source: "str | ast.Program",
    params: dict[str, int] | None = None,
    strategy: "str | Strategy" = Strategy.GLOBAL,
    options: CompilerOptions | None = None,
    dump_after: tuple[str, ...] = (),
    dump_stream: Optional[TextIO] = None,
) -> CompilationResult:
    """Front door: compile mini-HPF source (or a parsed program) and place
    its communication with the chosen strategy.

    ``dump_after`` names passes whose working state should be dumped as
    text (to ``dump_stream``, default stdout) right after they run.

    Crash-free frontier: any failure surfaces as a :class:`ReproError`
    subclass — an unexpected exception (a compiler bug) is wrapped in
    :class:`InternalCompilerError` rather than escaping raw.  With
    ``options.strict`` the raw exception propagates unwrapped, so tests
    can assert on the original type.
    """
    strat = Strategy.parse(strategy)  # bad strategy names raise ValueError
    opts = options or CompilerOptions()
    faults: list[DegradationEvent] = []
    traces: list[PassTrace] = []
    try:
        program = parse(source) if isinstance(source, str) else source
        info = elaborate(program, params)
        scalarized = scalarize(program, info)
        info = elaborate(scalarized, params)

        ctx = AnalysisContext(info, opts)
        manager = PassManager.for_strategy(
            strat, opts, include_analysis=True,
            dump_after=dump_after, dump_stream=dump_stream,
        )
        run = manager.execute(ctx, [], faults, traces)
    except ReproError:
        raise
    except Exception as exc:
        if opts.strict:
            raise
        raise InternalCompilerError(
            f"unexpected {type(exc).__name__} during compilation: {exc}"
        ) from exc
    return CompilationResult(
        ctx, strat, run.entries, run.placed, run.stats, faults, traces
    )


def compile_all_strategies(
    source: "str | ast.Program",
    params: dict[str, int] | None = None,
    options: CompilerOptions | None = None,
    dump_after: tuple[str, ...] = (),
    dump_stream: Optional[TextIO] = None,
) -> dict[Strategy, CompilationResult]:
    """Compile once per strategy over one shared analysis context.

    The frontend (parse → elaborate → scalarize) and the analysis stack
    (CFG, dominators, SSA, section builder, classifier) are strategy-
    independent, so the Figure-10 workflow builds them once; entries are
    still re-collected per strategy because placement mutates them
    (``eliminated_by``/``absorbed``).  Sharing the context also shares
    its memoized verdict caches, so later strategies hit the section and
    subsumption caches the first strategy warmed.
    """
    opts = options or CompilerOptions()
    try:
        program = parse(source) if isinstance(source, str) else source
        info = elaborate(program, params)
        scalarized = scalarize(program, info)
        info = elaborate(scalarized, params)
        ctx = AnalysisContext(info, opts)
    except ReproError:
        raise
    except Exception as exc:
        if opts.strict:
            raise
        raise InternalCompilerError(
            f"unexpected {type(exc).__name__} during compilation: {exc}"
        ) from exc
    results: dict[Strategy, CompilationResult] = {}
    for strat in Strategy:
        faults: list[DegradationEvent] = []
        traces: list[PassTrace] = []
        try:
            manager = PassManager.for_strategy(
                strat, opts, include_analysis=True,
                dump_after=dump_after, dump_stream=dump_stream,
            )
            run = manager.execute(ctx, [], faults, traces)
        except ReproError:
            raise
        except Exception as exc:
            if opts.strict:
                raise
            raise InternalCompilerError(
                f"unexpected {type(exc).__name__} during compilation: {exc}"
            ) from exc
        results[strat] = CompilationResult(
            ctx, strat, run.entries, run.placed, run.stats, faults, traces
        )
    return results
