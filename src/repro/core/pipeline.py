"""The compilation pipeline and the three placement strategies.

* ``Strategy.ORIG`` ("orig" in the paper's Figure 10) — message
  vectorization only: every communication at its Latest point, no
  redundancy detection, no combining.  This is the classical single
  loop-nest treatment.
* ``Strategy.EARLIEST`` ("nored") — every communication hoisted to its
  Earliest point, with forward redundancy elimination (an earlier-placed,
  dominating communication that subsumes a later one kills it); no
  combining.  This models earliest-placement dataflow schemes.
* ``Strategy.GLOBAL`` ("comb") — the paper's algorithm: candidate marking
  (§4.4), subset elimination (§4.5), global redundancy elimination (§4.6),
  and greedy combining with push-late group placement (§4.7).

:func:`compile_program` runs parse → elaborate → scalarize → CFG/SSA →
classify → place and returns a :class:`CompilationResult` with the
schedule, counts, and everything needed by the simulator and reports.

Every optimization pass runs inside a **fault boundary** (see
:mod:`repro.core.faults`): because ``Latest(u)`` is always a sound
placement, a pass that raises degrades — per-entry for the analyses,
whole-pass for the set-shrinking passes — instead of failing the compile.
``CompilerOptions(strict=True)`` turns the boundaries off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..comm.entries import CommEntry
from ..errors import InternalCompilerError, ReproError
from ..frontend import ast_nodes as ast
from ..frontend.analysis import ProgramInfo, elaborate
from ..frontend.parser import parse
from ..frontend.scalarizer import scalarize
from ..ir.cfg import Position
from .candidates import mark_candidates, verify_candidates
from .context import AnalysisContext, CompilerOptions
from .earliest import compute_earliest
from .faults import DegradationEvent
from .greedy import greedy_choose, ilp_choose
from .latest import compute_latest
from .redundancy import redundancy_eliminate, subsumes_at
from .state import PlacedComm, PlacementState
from .subset import subset_eliminate


class Strategy(enum.Enum):
    """Compiler versions of the paper's evaluation (Figure 10)."""

    ORIG = "orig"
    EARLIEST = "nored"
    GLOBAL = "comb"

    @staticmethod
    def parse(name: "str | Strategy") -> "Strategy":
        if isinstance(name, Strategy):
            return name
        lowered = name.lower()
        aliases = {
            "orig": Strategy.ORIG,
            "original": Strategy.ORIG,
            "latest": Strategy.ORIG,
            "nored": Strategy.EARLIEST,
            "earliest": Strategy.EARLIEST,
            "redundancy": Strategy.EARLIEST,
            "comb": Strategy.GLOBAL,
            "global": Strategy.GLOBAL,
            "combined": Strategy.GLOBAL,
        }
        if lowered not in aliases:
            raise ValueError(f"unknown strategy {name!r}")
        return aliases[lowered]


@dataclass
class CompilationResult:
    """Everything produced by one compile: analyses, entries, schedule.

    ``degradations`` lists every fault-boundary fallback taken during this
    compile (empty for a clean run); the schedule is sound either way.
    """

    ctx: AnalysisContext
    strategy: Strategy
    entries: list[CommEntry]
    placed: list[PlacedComm]
    stats: dict[str, int] = field(default_factory=dict)
    degradations: list[DegradationEvent] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    @property
    def info(self) -> ProgramInfo:
        return self.ctx.info

    @property
    def program(self) -> ast.Program:
        return self.ctx.info.program

    def call_sites(self) -> int:
        """Static communication call sites (the paper's message counts:
        a combined group is a single site)."""
        return len(self.placed)

    def call_sites_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for pc in self.placed:
            counts[pc.kind] = counts.get(pc.kind, 0) + 1
        return counts

    def eliminated_entries(self) -> list[CommEntry]:
        return [e for e in self.entries if not e.alive]


def analyze_entries(
    ctx: AnalysisContext,
    faults: list[DegradationEvent] | None = None,
) -> list[CommEntry]:
    """Discover entries and compute Latest/Earliest/candidates for each.

    Each per-entry analysis runs inside a fault boundary: a failing
    ``compute_latest`` pins the entry immediately before its use (the most
    conservative sound point); a failing ``compute_earliest`` or candidate
    marking collapses the entry's flexibility to Latest alone.  Events go
    into ``faults``; ``strict`` options re-raise.
    """
    strict = ctx.options.strict
    if faults is None:
        faults = []
    entries = ctx.collect_entries()
    for entry in entries:
        try:
            compute_latest(ctx, entry)
        except Exception as exc:
            if strict:
                raise
            entry.comm_level = entry.use.node.nl
            entry.latest_pos = ctx.cfg.position_before(entry.use.stmt)
            faults.append(DegradationEvent.from_exception(
                "latest", exc, "pinned immediately before the use", entry
            ))
        try:
            compute_earliest(ctx, entry)
        except Exception as exc:
            if strict:
                raise
            entry.earliest_pos = entry.latest_pos
            faults.append(DegradationEvent.from_exception(
                "earliest", exc, "no hoisting (Earliest := Latest)", entry
            ))
        try:
            mark_candidates(ctx, entry)
            verify_candidates(ctx, entry)
        except Exception as exc:
            if strict:
                raise
            assert entry.latest_pos is not None
            entry.earliest_pos = entry.latest_pos
            entry.candidates = [entry.latest_pos]
            entry._candidate_set = None
            faults.append(DegradationEvent.from_exception(
                "candidates", exc, "single-position chain at Latest", entry
            ))
    return entries


def _reset_eliminations(entries: list[CommEntry]) -> None:
    """Undo every redundancy-elimination mark so all entries are alive
    again (the precondition for the latest-placement fallback)."""
    for entry in entries:
        entry.eliminated_by = None
        entry.absorbed = []


def _latest_placement(entries: list[CommEntry]) -> list[PlacedComm]:
    """The always-sound schedule: every entry, alone, at its Latest point
    (identical to ``Strategy.ORIG``)."""
    placed = [PlacedComm(e.latest_pos, [e]) for e in entries if e.latest_pos]
    placed.sort(key=lambda pc: pc.position)
    return placed


def place(
    ctx: AnalysisContext,
    entries: list[CommEntry],
    strategy: Strategy,
    faults: list[DegradationEvent] | None = None,
) -> tuple[list[PlacedComm], dict[str, int]]:
    """Run one placement strategy over analyzed entries.

    The set-shrinking passes (subset, redundancy) and the final combining
    pass degrade whole-pass: a snapshot of the :class:`PlacementState` is
    taken before each mutation so a midway failure rolls back cleanly, and
    a failing combining pass abandons all eliminations and emits the
    latest-placement schedule.
    """
    strict = ctx.options.strict
    if faults is None:
        faults = []
    stats: dict[str, int] = {"entries": len(entries)}

    if strategy is Strategy.ORIG:
        return _latest_placement(entries), stats

    if strategy is Strategy.EARLIEST:
        try:
            placed = _place_earliest(ctx, entries, stats)
        except Exception as exc:
            if strict:
                raise
            _reset_eliminations(entries)
            placed = _latest_placement(entries)
            stats["redundant"] = 0
            faults.append(DegradationEvent.from_exception(
                "earliest-placement", exc, "every entry at its Latest point"
            ))
        return placed, stats

    state = PlacementState(ctx, entries)
    if ctx.options.enable_subset_elimination:
        snapshot = state.clone()
        try:
            stats["subset_emptied"] = subset_eliminate(ctx, state)
        except Exception as exc:
            if strict:
                raise
            state = snapshot  # discard partial deactivations
            stats["subset_emptied"] = 0
            faults.append(DegradationEvent.from_exception(
                "subset", exc, "pass skipped (all candidates kept)"
            ))
    if ctx.options.enable_redundancy_elimination:
        snapshot = state.clone()
        try:
            stats["redundant"] = redundancy_eliminate(ctx, state)
        except Exception as exc:
            if strict:
                raise
            # The pass mutates entries (eliminated_by/absorbed) as well as
            # the state; roll both back.
            _reset_eliminations(entries)
            state = snapshot
            stats["redundant"] = 0
            faults.append(DegradationEvent.from_exception(
                "redundancy", exc, "pass rolled back (no eliminations)"
            ))
    try:
        if ctx.options.placement_search == "ilp":
            try:
                placed = ilp_choose(ctx, state)
            except Exception as exc:
                if strict:
                    raise
                faults.append(DegradationEvent.from_exception(
                    "ilp", exc, "greedy combining (§4.7 heuristic)"
                ))
                placed = greedy_choose(ctx, state)
        else:
            placed = greedy_choose(ctx, state)
    except Exception as exc:
        if strict:
            raise
        # Combining failed: abandon every refinement.  Eliminated entries
        # must come back alive — their elimination is only sound if the
        # final group placement honors the coverage constraints, which the
        # fallback does not consult.
        _reset_eliminations(entries)
        if "redundant" in stats:
            stats["redundant"] = 0
        placed = _latest_placement(entries)
        faults.append(DegradationEvent.from_exception(
            "greedy", exc, "every entry at its Latest point"
        ))
    stats["groups"] = len(placed)
    return placed, stats


def _place_earliest(
    ctx: AnalysisContext, entries: list[CommEntry], stats: dict[str, int]
) -> list[PlacedComm]:
    """Earliest placement with forward redundancy elimination only."""

    def dominance_key(entry: CommEntry) -> tuple[int, int, int]:
        pos = entry.earliest_pos
        assert pos is not None
        node = ctx.node_of(pos)
        return (ctx.dom.dominator_depth(node), pos.index, entry.id)

    def covers(winner: CommEntry, loser: CommEntry) -> bool:
        p, lp = winner.earliest_pos, loser.earliest_pos
        assert p is not None and lp is not None
        # Earliest-placement redundancy is backward-looking availability:
        # the winner must already be placed at (or above) the loser's point
        # — this is exactly why the scheme misses Figure 4's b1/b2 pair —
        # and its placement must be a valid delivery point for the loser's
        # data (inside the loser's candidate chain), subsuming it there.
        return (
            ctx.position_dominates(p, lp)
            and p in loser.candidate_set()
            and subsumes_at(ctx, winner, loser, p)
        )

    kept: list[CommEntry] = []
    redundant = 0
    for entry in sorted(entries, key=dominance_key):
        killer = next((prior for prior in kept if covers(prior, entry)), None)
        if killer is not None:
            entry.eliminated_by = killer
            killer.absorbed.append(entry)
            redundant += 1
            continue
        # Pairwise check both ways (paper: each pair of entries placed at a
        # point is tested): this entry may subsume an already-kept one.
        for prior in list(kept):
            if covers(entry, prior):
                prior.eliminated_by = entry
                entry.absorbed.append(prior)
                kept.remove(prior)
                redundant += 1
        kept.append(entry)
    stats["redundant"] = redundant
    placed = [PlacedComm(e.earliest_pos, [e]) for e in kept if e.earliest_pos]
    placed.sort(key=lambda pc: pc.position)
    return placed


def compile_program(
    source: "str | ast.Program",
    params: dict[str, int] | None = None,
    strategy: "str | Strategy" = Strategy.GLOBAL,
    options: CompilerOptions | None = None,
) -> CompilationResult:
    """Front door: compile mini-HPF source (or a parsed program) and place
    its communication with the chosen strategy.

    Crash-free frontier: any failure surfaces as a :class:`ReproError`
    subclass — an unexpected exception (a compiler bug) is wrapped in
    :class:`InternalCompilerError` rather than escaping raw.  With
    ``options.strict`` the raw exception propagates unwrapped, so tests
    can assert on the original type.
    """
    strat = Strategy.parse(strategy)  # bad strategy names raise ValueError
    opts = options or CompilerOptions()
    faults: list[DegradationEvent] = []
    try:
        program = parse(source) if isinstance(source, str) else source
        info = elaborate(program, params)
        scalarized = scalarize(program, info)
        info = elaborate(scalarized, params)

        ctx = AnalysisContext(info, opts)
        entries = analyze_entries(ctx, faults)
        placed, stats = place(ctx, entries, strat, faults)
    except ReproError:
        raise
    except Exception as exc:
        if opts.strict:
            raise
        raise InternalCompilerError(
            f"unexpected {type(exc).__name__} during compilation: {exc}"
        ) from exc
    return CompilationResult(ctx, strat, entries, placed, stats, faults)


def compile_all_strategies(
    source: "str | ast.Program",
    params: dict[str, int] | None = None,
    options: CompilerOptions | None = None,
) -> dict[Strategy, CompilationResult]:
    """Compile once per strategy over one shared analysis context.

    The frontend (parse → elaborate → scalarize) and the analysis stack
    (CFG, dominators, SSA, section builder, classifier) are strategy-
    independent, so the Figure-10 workflow builds them once; entries are
    still re-collected per strategy because placement mutates them
    (``eliminated_by``/``absorbed``).  Sharing the context also shares
    its memoized verdict caches, so later strategies hit the section and
    subsumption caches the first strategy warmed.
    """
    opts = options or CompilerOptions()
    try:
        program = parse(source) if isinstance(source, str) else source
        info = elaborate(program, params)
        scalarized = scalarize(program, info)
        info = elaborate(scalarized, params)
        ctx = AnalysisContext(info, opts)
    except ReproError:
        raise
    except Exception as exc:
        if opts.strict:
            raise
        raise InternalCompilerError(
            f"unexpected {type(exc).__name__} during compilation: {exc}"
        ) from exc
    results: dict[Strategy, CompilationResult] = {}
    for strat in Strategy:
        faults: list[DegradationEvent] = []
        try:
            entries = analyze_entries(ctx, faults)
            placed, stats = place(ctx, entries, strat, faults)
        except ReproError:
            raise
        except Exception as exc:
            if opts.strict:
                raise
            raise InternalCompilerError(
                f"unexpected {type(exc).__name__} during compilation: {exc}"
            ) from exc
        results[strat] = CompilationResult(
            ctx, strat, entries, placed, stats, faults
        )
    return results
