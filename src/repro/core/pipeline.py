"""The compilation pipeline and the three placement strategies.

* ``Strategy.ORIG`` ("orig" in the paper's Figure 10) — message
  vectorization only: every communication at its Latest point, no
  redundancy detection, no combining.  This is the classical single
  loop-nest treatment.
* ``Strategy.EARLIEST`` ("nored") — every communication hoisted to its
  Earliest point, with forward redundancy elimination (an earlier-placed,
  dominating communication that subsumes a later one kills it); no
  combining.  This models earliest-placement dataflow schemes.
* ``Strategy.GLOBAL`` ("comb") — the paper's algorithm: candidate marking
  (§4.4), subset elimination (§4.5), global redundancy elimination (§4.6),
  and greedy combining with push-late group placement (§4.7).

:func:`compile_program` runs parse → elaborate → scalarize → CFG/SSA →
classify → place and returns a :class:`CompilationResult` with the
schedule, counts, and everything needed by the simulator and reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..comm.entries import CommEntry
from ..frontend import ast_nodes as ast
from ..frontend.analysis import ProgramInfo, elaborate
from ..frontend.parser import parse
from ..frontend.scalarizer import scalarize
from ..ir.cfg import Position
from .candidates import mark_candidates, verify_candidates
from .context import AnalysisContext, CompilerOptions
from .earliest import compute_earliest
from .greedy import greedy_choose
from .latest import compute_latest
from .redundancy import redundancy_eliminate, subsumes_at
from .state import PlacedComm, PlacementState
from .subset import subset_eliminate


class Strategy(enum.Enum):
    """Compiler versions of the paper's evaluation (Figure 10)."""

    ORIG = "orig"
    EARLIEST = "nored"
    GLOBAL = "comb"

    @staticmethod
    def parse(name: "str | Strategy") -> "Strategy":
        if isinstance(name, Strategy):
            return name
        lowered = name.lower()
        aliases = {
            "orig": Strategy.ORIG,
            "original": Strategy.ORIG,
            "latest": Strategy.ORIG,
            "nored": Strategy.EARLIEST,
            "earliest": Strategy.EARLIEST,
            "redundancy": Strategy.EARLIEST,
            "comb": Strategy.GLOBAL,
            "global": Strategy.GLOBAL,
            "combined": Strategy.GLOBAL,
        }
        if lowered not in aliases:
            raise ValueError(f"unknown strategy {name!r}")
        return aliases[lowered]


@dataclass
class CompilationResult:
    """Everything produced by one compile: analyses, entries, schedule."""

    ctx: AnalysisContext
    strategy: Strategy
    entries: list[CommEntry]
    placed: list[PlacedComm]
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def info(self) -> ProgramInfo:
        return self.ctx.info

    @property
    def program(self) -> ast.Program:
        return self.ctx.info.program

    def call_sites(self) -> int:
        """Static communication call sites (the paper's message counts:
        a combined group is a single site)."""
        return len(self.placed)

    def call_sites_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for pc in self.placed:
            counts[pc.kind] = counts.get(pc.kind, 0) + 1
        return counts

    def eliminated_entries(self) -> list[CommEntry]:
        return [e for e in self.entries if not e.alive]


def analyze_entries(ctx: AnalysisContext) -> list[CommEntry]:
    """Discover entries and compute Latest/Earliest/candidates for each."""
    entries = ctx.collect_entries()
    for entry in entries:
        compute_latest(ctx, entry)
        compute_earliest(ctx, entry)
        mark_candidates(ctx, entry)
        verify_candidates(ctx, entry)
    return entries


def place(ctx: AnalysisContext, entries: list[CommEntry],
          strategy: Strategy) -> tuple[list[PlacedComm], dict[str, int]]:
    """Run one placement strategy over analyzed entries."""
    stats: dict[str, int] = {"entries": len(entries)}

    if strategy is Strategy.ORIG:
        placed = [
            PlacedComm(e.latest_pos, [e]) for e in entries if e.latest_pos
        ]
        placed.sort(key=lambda pc: pc.position)
        return placed, stats

    if strategy is Strategy.EARLIEST:
        placed = _place_earliest(ctx, entries, stats)
        return placed, stats

    state = PlacementState(ctx, entries)
    if ctx.options.enable_subset_elimination:
        stats["subset_emptied"] = subset_eliminate(ctx, state)
    if ctx.options.enable_redundancy_elimination:
        stats["redundant"] = redundancy_eliminate(ctx, state)
    placed = greedy_choose(ctx, state)
    stats["groups"] = len(placed)
    return placed, stats


def _place_earliest(
    ctx: AnalysisContext, entries: list[CommEntry], stats: dict[str, int]
) -> list[PlacedComm]:
    """Earliest placement with forward redundancy elimination only."""

    def dominance_key(entry: CommEntry) -> tuple[int, int, int]:
        pos = entry.earliest_pos
        assert pos is not None
        node = ctx.node_of(pos)
        return (ctx.dom.dominator_depth(node), pos.index, entry.id)

    def covers(winner: CommEntry, loser: CommEntry) -> bool:
        p, lp = winner.earliest_pos, loser.earliest_pos
        assert p is not None and lp is not None
        # Earliest-placement redundancy is backward-looking availability:
        # the winner must already be placed at (or above) the loser's point
        # — this is exactly why the scheme misses Figure 4's b1/b2 pair —
        # and its placement must be a valid delivery point for the loser's
        # data (inside the loser's candidate chain), subsuming it there.
        return (
            ctx.position_dominates(p, lp)
            and p in loser.candidate_set()
            and subsumes_at(ctx, winner, loser, p)
        )

    kept: list[CommEntry] = []
    redundant = 0
    for entry in sorted(entries, key=dominance_key):
        killer = next((prior for prior in kept if covers(prior, entry)), None)
        if killer is not None:
            entry.eliminated_by = killer
            killer.absorbed.append(entry)
            redundant += 1
            continue
        # Pairwise check both ways (paper: each pair of entries placed at a
        # point is tested): this entry may subsume an already-kept one.
        for prior in list(kept):
            if covers(entry, prior):
                prior.eliminated_by = entry
                entry.absorbed.append(prior)
                kept.remove(prior)
                redundant += 1
        kept.append(entry)
    stats["redundant"] = redundant
    placed = [PlacedComm(e.earliest_pos, [e]) for e in kept if e.earliest_pos]
    placed.sort(key=lambda pc: pc.position)
    return placed


def compile_program(
    source: "str | ast.Program",
    params: dict[str, int] | None = None,
    strategy: "str | Strategy" = Strategy.GLOBAL,
    options: CompilerOptions | None = None,
) -> CompilationResult:
    """Front door: compile mini-HPF source (or a parsed program) and place
    its communication with the chosen strategy."""
    program = parse(source) if isinstance(source, str) else source
    info = elaborate(program, params)
    scalarized = scalarize(program, info)
    info = elaborate(scalarized, params)

    ctx = AnalysisContext(info, options)
    entries = analyze_entries(ctx)
    strat = Strategy.parse(strategy)
    placed, stats = place(ctx, entries, strat)
    return CompilationResult(ctx, strat, entries, placed, stats)


def compile_all_strategies(
    source: "str | ast.Program",
    params: dict[str, int] | None = None,
    options: CompilerOptions | None = None,
) -> dict[Strategy, CompilationResult]:
    """Compile once per strategy (entries are re-analyzed per run because
    placement mutates them)."""
    return {
        strat: compile_program(source, params, strat, options)
        for strat in Strategy
    }
