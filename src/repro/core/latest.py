"""Latest placement (paper §4.2).

``Latest(u)`` is the classic message-vectorization point: communication is
hoisted just outside the outermost loop carrying no true dependence onto
the use, or sits immediately before the statement when every enclosing
level carries one.

Following the paper: for each regular def ``d`` reaching ``u`` through the
SSA graph, ``DepLevel(d, u)`` is the deepest common-loop level at which a
flow dependence ``d → u`` may be carried (a loop-independent dependence
contributes the full common nesting level); ``CommLevel(u)`` is the max
over reaching defs; the communication lands

* immediately before the statement containing ``u`` when
  ``CommLevel(u) == NL(u)``,
* in the preheader of the level-``CommLevel+1`` loop containing ``u``
  otherwise.

Reductions are pinned to their statement (paper §6.2: the prototype does
not candidate-mark reductions; their communication follows the local
partial computation).
"""

from __future__ import annotations

from ..comm.entries import CommEntry
from ..frontend import ast_nodes as ast
from ..ir.cfg import Position
from ..ir.ssa import EntryDef, PhiDef, RegularDef, SSADef, Use
from .context import AnalysisContext


def reaching_regular_defs(use: Use) -> list[SSADef]:
    """Every regular def (plus the ENTRY pseudo-def) that may reach ``use``
    through φ parameters and preserving-def links."""
    found: list[SSADef] = []
    seen: set[int] = set()
    stack: list[SSADef] = [use.reaching]
    while stack:
        d = stack.pop()
        if d.id in seen:
            continue
        seen.add(d.id)
        if isinstance(d, PhiDef):
            stack.extend(p for p in d.params if p is not None)
        elif isinstance(d, RegularDef):
            found.append(d)
            if d.preserving and d.prev is not None:
                stack.append(d.prev)
        else:  # EntryDef
            found.append(d)
    return found


def comm_level(ctx: AnalysisContext, use: Use) -> int:
    """The paper's CommLevel(u)."""
    level = 0
    for d in reaching_regular_defs(use):
        if isinstance(d, EntryDef):
            continue  # initial values constrain nothing for Latest
        assert isinstance(d, RegularDef)
        if not isinstance(d.ref, ast.ArrayRef) or not isinstance(
            use.ref, ast.ArrayRef
        ):
            continue
        dep = ctx.tester.flow_dependence(d.stmt, d.ref, use.stmt, use.ref)
        level = max(level, dep.max_level())
    return level


def compute_latest(ctx: AnalysisContext, entry: CommEntry) -> None:
    """Fill ``entry.latest_pos`` and ``entry.comm_level``."""
    use = entry.use
    if entry.is_reduction:
        # Reductions communicate at the statement: partial results exist
        # only once the local computation has run.  With the §6.2
        # extension enabled, the combine phase may slide *later*, down to
        # just before the first use of the result (a reversed reached-uses
        # analysis) — opening combining opportunities across statements.
        entry.comm_level = use.node.nl
        entry.latest_pos = ctx.cfg.position_before(use.stmt)
        if ctx.options.reduction_flexibility:
            extended = extend_reduction_latest(ctx, entry)
            if extended is not None:
                entry.latest_pos = extended
        return

    level = comm_level(ctx, use)
    nl_u = use.node.nl
    entry.comm_level = level
    if level >= nl_u:
        entry.latest_pos = ctx.cfg.position_before(use.stmt)
        return
    # Preheader of the loop at level ``level + 1`` containing u
    # (loops_containing is outermost-first, so index ``level``).
    loop = use.node.loops_containing()[level]
    pre = loop.preheader
    entry.latest_pos = ctx.cfg.position(pre.id, len(pre.stmts) - 1)


def extend_reduction_latest(
    ctx: AnalysisContext, entry: CommEntry
) -> Position | None:
    """The paper's §6.2 'reversed SSA analysis': iterate through the
    *reached uses* of the reduction's result to find the latest safe
    point for the combine phase.

    Every use of the scalar the reduction defines (directly, or flowing
    into a φ) is a barrier; the combine must be placed at a position that
    still dominates all of them, and no earlier than right after the
    statement computing the partials.  Returns None when the result is
    used immediately (no flexibility gained).
    """
    stmt = entry.use.stmt
    defs = ctx.ssa.defs_of_stmt.get(stmt.sid, [])
    scalar_defs = [d for d in defs if not d.preserving]
    if len(scalar_defs) != 1:
        return None  # reduction result not a tracked scalar
    (result_def,) = scalar_defs

    barriers: list[Position] = []
    for u in ctx.ssa.uses:
        if u.reaching is result_def:
            barriers.append(ctx.cfg.position_before(u.stmt))
    for phis in ctx.ssa.phis.values():
        for phi in phis:
            if any(p is result_def for p in phi.params):
                barriers.append(ctx.cfg.position(phi.node.id, -1))
    if not barriers:
        return None

    # Nearest common dominator block of all barriers.
    nodes = [ctx.node_of(p) for p in barriers]
    nca = nodes[0]
    for node in nodes[1:]:
        a, b = nca, node
        while a is not b:
            da, db = ctx.dom.dominator_depth(a), ctx.dom.dominator_depth(b)
            if da >= db:
                a = ctx.dom.dom_tree_parent(a) or a
            else:
                b = ctx.dom.dom_tree_parent(b) or b
            if a is ctx.cfg.entry or b is ctx.cfg.entry:
                a = b = ctx.cfg.entry
        nca = a
    limit = len(nca.stmts) - 1
    for p in barriers:
        if p.node_id == nca.id:
            limit = min(limit, p.index)
    extended = ctx.cfg.position(nca.id, limit)

    after_stmt = ctx.cfg.position_after(stmt)
    if not ctx.position_dominates(after_stmt, extended):
        return None  # cannot even reach past the statement safely
    for p in barriers:
        if not ctx.position_dominates(extended, p):
            return None
    return extended
