"""Exact placement selection (paper §6.1) and the hardness story.

The paper proves (Claim 6.1, by reduction from chromatic number) that
choosing one candidate position per communication to minimize total cost
under the startup+bandwidth model is NP-hard, justifying the greedy
heuristic of §4.7.  This module provides the exact reference the claim is
measured against:

* :func:`optimal_placement` — branch-and-bound over the per-entry
  candidate chains with the §6.1 cost model (per emitted group:
  ``C`` + volume × inverse bandwidth, summed over groups); exact on the
  small instances where it is tractable;
* :func:`placement_cost` — the same cost applied to any assignment, so
  the greedy result can be scored for the optimality-gap ablation
  benchmark.
"""

from __future__ import annotations

from itertools import combinations

from ..comm.compatibility import message_volume
from ..comm.entries import CommEntry
from ..cost.model import PlacementCostModel
from ..errors import PlacementError
from ..ir.cfg import Position
from .context import AnalysisContext
from .greedy import _combinable_at

# The §6.1 search cost model now lives in the unified cost layer
# (repro.cost.model); this alias keeps the historical import path.
CostModel = PlacementCostModel


def _group_entries(
    ctx: AnalysisContext, entries: list[CommEntry], pos: Position
) -> list[list[CommEntry]]:
    """Greedy compatible grouping at one position (same rule as §4.7)."""
    groups: list[list[CommEntry]] = []
    for entry in sorted(entries, key=lambda e: e.id):
        for group in groups:
            if all(_combinable_at(ctx, entry, member, pos) for member in group):
                group.append(entry)
                break
        else:
            groups.append([entry])
    return groups


def placement_cost(
    ctx: AnalysisContext,
    assignment: dict[int, Position],
    entries: list[CommEntry],
    model: CostModel | None = None,
) -> float:
    """Total §6.1 cost of placing each entry at its assigned position."""
    model = model or ctx.cost_model.placement_model()
    by_pos: dict[Position, list[CommEntry]] = {}
    for entry in entries:
        by_pos.setdefault(assignment[entry.id], []).append(entry)

    total = 0.0
    for pos, here in by_pos.items():
        node = ctx.node_of(pos)
        ranges = ctx.sections.live_ranges_at(node)
        execs = 1
        for loop in node.loops_containing():
            # Static cost model: weight per-iteration placements by a
            # nominal trip factor so hoisted placements are preferred.
            execs *= 8
        for group in _group_entries(ctx, here, pos):
            volume = sum(
                message_volume(
                    ctx.info, e, ctx.sections.section_at(e.use, node), ranges
                )
                for e in group
            )
            total += execs * (model.startup + model.inv_bandwidth * volume)
    return total


def optimal_placement(
    ctx: AnalysisContext,
    entries: list[CommEntry],
    model: CostModel | None = None,
    search_limit: int = 250_000,
) -> tuple[dict[int, Position], float]:
    """Exact minimum-cost assignment by branch-and-bound.

    Raises :class:`PlacementError` when the search space exceeds
    ``search_limit`` — the practical face of Claim 6.1.
    """
    model = model or ctx.cost_model.placement_model()
    live = [e for e in entries if e.alive and e.candidates]
    space = 1
    for e in live:
        space *= len(e.candidates)
        if space > search_limit:
            raise PlacementError(
                f"placement search space exceeds {search_limit} assignments "
                f"(NP-hard in general: paper Claim 6.1)"
            )

    best_cost = float("inf")
    best_assignment: dict[int, Position] = {}
    assignment: dict[int, Position] = {}

    # Order entries most-constrained-first for better pruning.
    order = sorted(live, key=lambda e: (len(e.candidates), e.id))

    def search(i: int) -> None:
        nonlocal best_cost, best_assignment
        if i == len(order):
            cost = placement_cost(ctx, assignment, live, model)
            if cost < best_cost:
                best_cost = cost
                best_assignment = dict(assignment)
            return
        entry = order[i]
        for pos in entry.candidates:
            assignment[entry.id] = pos
            # Partial-assignment lower bound: the cost of what is already
            # placed can only grow as more entries are added at *other*
            # positions, but grouping can absorb same-position additions —
            # so only prune on the cost of fully-assigned prefixes when it
            # already exceeds the best complete solution.
            prefix = {e.id: assignment[e.id] for e in order[: i + 1]}
            if placement_cost(ctx, prefix, order[: i + 1], model) < best_cost:
                search(i + 1)
        assignment.pop(entry.id, None)

    search(0)
    if not best_assignment and live:
        raise PlacementError("no feasible assignment found")
    return best_assignment, best_cost


def assignment_of_result(result) -> dict[int, Position]:
    """The assignment a finished compilation actually chose (read back
    from its placed groups) — for optimality-gap measurement."""
    out: dict[int, Position] = {}
    for pc in result.placed:
        for entry in pc.entries:
            out[entry.id] = pc.position
    return out


def milp_placement(
    ctx: AnalysisContext,
    entries: list[CommEntry],
    model: CostModel | None = None,
) -> tuple[dict[int, Position], float]:
    """§6.1's integer-linear-program formulation, solved with scipy.

    Variables: ``x[c,p] ∈ {0,1}`` — entry ``c`` placed at candidate ``p``;
    ``z[p,m] ∈ {0,1}`` — a message with mapping class ``m`` is emitted at
    ``p``.  Minimize ``Σ z·C·w(p) + Σ x·vol(c,p)·w(p)`` subject to
    ``Σ_p x[c,p] = 1`` and ``x[c,p] ≤ z[p, class(c)]`` — the linearized
    form of "all same-mapping entries at one position share one startup".
    (The nonlinear refinements — the combined-size threshold and the
    union-descriptor growth rule — are relaxed; on halo-sized messages
    they do not bind and the MILP optimum equals the branch-and-bound
    optimum, which the test suite checks.)
    """
    import numpy as np
    from scipy.optimize import LinearConstraint, milp
    from scipy.sparse import lil_matrix

    model = model or ctx.cost_model.placement_model()
    live = [e for e in entries if e.alive and e.candidates]
    if not live:
        return {}, 0.0

    def weight(pos: Position) -> float:
        node = ctx.node_of(pos)
        return float(8 ** len(node.loops_containing()))

    def volume(e: CommEntry, pos: Position) -> float:
        node = ctx.node_of(pos)
        ranges = ctx.sections.live_ranges_at(node)
        return float(
            message_volume(
                ctx.info, e, ctx.sections.section_at(e.use, node), ranges
            )
        )

    x_index: dict[tuple[int, Position], int] = {}
    z_index: dict[tuple[Position, object], int] = {}
    costs: list[float] = []
    for e in live:
        for pos in e.candidates:
            x_index[(e.id, pos)] = len(costs)
            costs.append(model.inv_bandwidth * volume(e, pos) * weight(pos))
            key = (pos, e.pattern.mapping)
            if key not in z_index:
                z_index[key] = -1  # placeholder; numbered after the x block
    for key in sorted(z_index, key=lambda k: (k[0], str(k[1]))):
        z_index[key] = len(costs)
        costs.append(model.startup * weight(key[0]))

    nvars = len(costs)
    rows: list[tuple[dict[int, float], float, float]] = []
    for e in live:  # Σ_p x = 1
        row = {x_index[(e.id, pos)]: 1.0 for pos in e.candidates}
        rows.append((row, 1.0, 1.0))
    for (eid_pos, xi) in x_index.items():  # x ≤ z
        eid, pos = eid_pos
        e = next(en for en in live if en.id == eid)
        zi = z_index[(pos, e.pattern.mapping)]
        rows.append(({xi: 1.0, zi: -1.0}, -np.inf, 0.0))

    a = lil_matrix((len(rows), nvars))
    lb = np.empty(len(rows))
    ub = np.empty(len(rows))
    for i, (row, lo, hi) in enumerate(rows):
        for j, v in row.items():
            a[i, j] = v
        lb[i], ub[i] = lo, hi

    result = milp(
        c=np.array(costs),
        constraints=LinearConstraint(a.tocsr(), lb, ub),
        integrality=np.ones(nvars),
        bounds=None,
    )
    if not result.success:
        raise PlacementError(f"MILP solve failed: {result.message}")

    assignment: dict[int, Position] = {}
    for (eid, pos), xi in x_index.items():
        if result.x[xi] > 0.5:
            assignment[eid] = pos
    return assignment, float(result.fun)


def pairwise_conflicts(ctx: AnalysisContext, entries: list[CommEntry]) -> int:
    """Count of entry pairs that can never share a position — the edge set
    of the conflict graph underlying the chromatic-number reduction."""
    conflicts = 0
    live = [e for e in entries if e.alive]
    for a, b in combinations(live, 2):
        if not (a.candidate_set() & b.candidate_set()):
            conflicts += 1
    return conflicts


from .passes import PlacementPass, PlacementRun, register_pass  # noqa: E402


@register_pass
class ILPCombinePass(PlacementPass):
    """§6.1 adapter: exact combining where tractable.

    An intractable or failing solve degrades to the §4.7 greedy heuristic
    inside this pass (emitting an ``ilp`` event); if the greedy fallback
    *also* fails, the manager's boundary fires under the name ``greedy``
    and :meth:`recover` emits the Latest placement — the same two-level
    degradation ladder the monolithic pipeline implemented by nesting
    try/except blocks.
    """

    name = "ilp"
    section = "§6.1"
    description = "exact branch-and-bound combining, greedy on overflow"
    needs_state = True
    mutates_entries = True
    fault_name = "greedy"  # the outer boundary guards the greedy fallback
    fallback_desc = "every entry at its Latest point"

    def run(self, run: PlacementRun) -> dict[str, int]:
        from . import pipeline as pl  # late: monkeypatchable namespace
        from .faults import DegradationEvent

        assert run.state is not None
        if run.options.strict:
            run.placed = pl.ilp_choose(run.ctx, run.state)
            return {"groups": len(run.placed)}
        try:
            run.placed = pl.ilp_choose(run.ctx, run.state)
        except Exception as exc:
            from ..errors import SOLVER_FALLBACK_CODE

            run.faults.append(DegradationEvent.from_exception(
                "ilp", exc, "greedy combining (§4.7 heuristic)",
                code=SOLVER_FALLBACK_CODE,
            ))
            run.placed = pl.greedy_choose(run.ctx, run.state)
        return {"groups": len(run.placed)}

    def recover(self, run: PlacementRun) -> dict[str, int]:
        from . import pipeline as pl

        run.placed = pl._latest_placement(run.entries)
        stats: dict[str, int] = {"groups": len(run.placed)}
        if "redundant" in run.stats:
            stats["redundant"] = 0
        return stats
