"""Earliest placement (paper §4.3, Figure 8).

``Earliest(u)`` is the *single earliest dominating point* at which the
communication for use ``u`` may be issued.  The search walks the SSA
use-def graph upward from ``u``'s reaching def in depth-first preorder and
returns the first def ``d`` for which ``Test(d, u)`` holds:

* a regular def tests ``IsArrayDep(d, u, CNL(d, u))`` — may ``d`` write
  data that ``u`` reads, at the innermost common level or loop-
  independently?  If so the communication cannot move above ``d``;
* a φ-def tests whether **two or more** of its parameters have
  dependence-bearing paths (``Rcount``): then no single dominating point
  above the merge exists and the φ's node is the earliest point;
* the ENTRY pseudo-def always tests true (values flowing in from outside
  the routine are conservatively live).

``Rcount`` (Fig 8c) counts, per φ-parameter, reachable defs that bear a
dependence.  Following the paper's pseudocode exactly, the shared visited
set marks **φ-defs only**: cycles through loop back-edges are cut, but a
regular def (or the ENTRY pseudo-def) reachable around both arms of a
branch diamond is counted once per arm.  That makes joins *conservative*
barriers — a diamond whose arms write unrelated data still pins Earliest
at its join — but keeps the walk sound: a φ with fewer than two positive
parameters genuinely has all its dependence-bearing paths on one side, so
hoisting above it cannot skip past a relevant def on the other.  (Marking
all defs instead would let the walk descend *into* a branch arm, returning
a non-dominating point — violating Lemma 4.2.)

The walk is guaranteed to terminate with a def: every acyclic chain ends
at ENTRY (Test true), and cyclic chains (through loop back-edge
parameters) are cut by the visit sets.
"""

from __future__ import annotations

from ..comm.entries import CommEntry
from ..frontend import ast_nodes as ast
from ..ir.cfg import Position
from ..ir.ssa import EntryDef, PhiDef, RegularDef, SSADef, Use
from ..errors import PlacementError
from .context import AnalysisContext


def is_array_dep(ctx: AnalysisContext, d: SSADef, use: Use, level: int) -> bool:
    """The paper's IsArrayDep(d, u, l) (Figure 8d)."""
    if isinstance(d, EntryDef):
        return True
    assert isinstance(d, RegularDef)
    if not isinstance(d.ref, ast.ArrayRef) or not isinstance(use.ref, ast.ArrayRef):
        return False
    cnl = ctx.cfg.cnl(d.node, use.node)
    if level > cnl:
        return False
    dep = ctx.tester.flow_dependence(d.stmt, d.ref, use.stmt, use.ref)
    return dep.at_level(level)


def _rcount(
    ctx: AnalysisContext, start: SSADef, use: Use, level: int, visit: set[int]
) -> int:
    """Iterative Rcount (Figure 8c): number of distinct dependence-bearing
    defs reachable from ``start`` through φ parameters and preserving
    links."""
    count = 0
    stack = [start]
    # Bound re-walks of regular-def chains within this one Rcount call
    # (chains can reconverge below a φ); φ-defs use the *shared* visit set
    # per the paper, regular defs a local one.
    local_seen: set[int] = set()
    while stack:
        d = stack.pop()
        if isinstance(d, PhiDef):
            if d.id in visit:
                continue
            visit.add(d.id)
            stack.extend(p for p in d.params if p is not None)
        elif isinstance(d, EntryDef):
            count += 1
        else:
            assert isinstance(d, RegularDef)
            if d.id in local_seen:
                continue
            local_seen.add(d.id)
            if is_array_dep(ctx, d, use, level):
                count += 1
            elif d.preserving and d.prev is not None:
                stack.append(d.prev)
    return count


def _test(ctx: AnalysisContext, d: SSADef, use: Use) -> bool:
    """The paper's Test(d, u) (Figure 8b)."""
    if isinstance(d, PhiDef):
        cnl = ctx.cfg.cnl(d.node, use.node)
        visit: set[int] = {d.id}
        positives = 0
        for param in d.params:
            if param is None:
                continue
            if _rcount(ctx, param, use, cnl, visit) > 0:
                positives += 1
                if positives >= 2:
                    return True
        return False
    return is_array_dep(ctx, d, use, ctx.cfg.cnl(d.node, use.node))


def earliest_def(ctx: AnalysisContext, use: Use) -> SSADef:
    """Depth-first preorder walk (Figure 8a): the first def passing Test is
    Earliest(u)."""
    seen: set[int] = set()
    stack: list[SSADef] = [use.reaching]
    while stack:
        d = stack.pop()
        if d.id in seen:
            continue
        seen.add(d.id)
        if _test(ctx, d, use):
            return d
        children: list[SSADef] = []
        if isinstance(d, PhiDef):
            children = [p for p in d.params if p is not None]
        elif isinstance(d, RegularDef) and d.preserving and d.prev is not None:
            children = [d.prev]
        # Reverse so the first parameter (acyclic / zero-trip side) is
        # explored first.
        stack.extend(reversed(children))
    raise PlacementError(
        f"Earliest walk for {use!r} exhausted without a dominating def "
        f"(ENTRY should have terminated it)"
    )


def def_position(ctx: AnalysisContext, d: SSADef) -> Position:
    """The placement point 'immediately after d'."""
    if isinstance(d, RegularDef):
        return ctx.cfg.position_after(d.stmt)
    # ENTRY pseudo-def or φ-def: the top of the def's node.
    return ctx.cfg.position(d.node.id, -1)


def compute_earliest(ctx: AnalysisContext, entry: CommEntry) -> None:
    """Fill ``entry.earliest_pos``; clamps to Latest when the two analyses'
    conservatisms disagree (Earliest must dominate Latest, Claim 4.5)."""
    if entry.is_reduction:
        # The partials exist only after the statement runs; with the §6.2
        # extension the latest point may sit further down, so Earliest is
        # pinned just before the statement rather than at Latest.
        entry.earliest_pos = ctx.cfg.position_before(entry.use.stmt)
        return
    d = earliest_def(ctx, entry.use)
    pos = def_position(ctx, d)
    latest = entry.latest_pos
    assert latest is not None, "compute_latest must run first"
    if not ctx.position_dominates(pos, latest):
        # Conservative fallback: no flexibility for this entry.
        pos = latest
    entry.earliest_pos = pos
