"""The paper's global communication-placement algorithm (§4.2-§4.7) and
its §6 extensions."""

from .context import AnalysisContext, CompilerOptions
from .pipeline import (
    CompilationResult,
    Strategy,
    analyze_entries,
    compile_all_strategies,
    compile_program,
    place,
)
from .state import PlacedComm, PlacementState

__all__ = [
    "AnalysisContext",
    "CompilationResult",
    "CompilerOptions",
    "PlacedComm",
    "PlacementState",
    "Strategy",
    "analyze_entries",
    "compile_all_strategies",
    "compile_program",
    "place",
]
