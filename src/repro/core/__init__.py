"""The paper's global communication-placement algorithm (§4.2-§4.7) and
its §6 extensions."""

from .context import AnalysisContext, CompilerOptions
from .passes import (
    PIPELINES,
    PassManager,
    PassTrace,
    PlacementPass,
    PlacementRun,
    build_pipeline,
    format_pass_list,
    list_passes,
    register_pass,
    registered_passes,
)
from .pipeline import (
    CompilationResult,
    Strategy,
    analyze_entries,
    compile_all_strategies,
    compile_program,
    place,
)
from .state import PlacedComm, PlacementState

__all__ = [
    "AnalysisContext",
    "CompilationResult",
    "CompilerOptions",
    "PIPELINES",
    "PassManager",
    "PassTrace",
    "PlacedComm",
    "PlacementPass",
    "PlacementRun",
    "PlacementState",
    "Strategy",
    "analyze_entries",
    "build_pipeline",
    "compile_all_strategies",
    "compile_program",
    "format_pass_list",
    "list_passes",
    "place",
    "register_pass",
    "registered_passes",
]
