"""Placement state: the CommSet machinery of Figure 9.

``PlacementState`` tracks, for every communication entry, which candidate
positions are still *active* — the working sets the subset-elimination,
redundancy-elimination, and greedy passes shrink — while preserving each
entry's full candidate chain for the final push-late group placement
(the paper explicitly reuses "positions disabled during redundancy
elimination" at that step).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.entries import CommEntry
from ..errors import PlacementError
from ..ir.cfg import Position
from .context import AnalysisContext


@dataclass
class PlacedComm:
    """One emitted communication operation: a group of combined entries at
    a final position."""

    position: Position
    entries: list[CommEntry]

    @property
    def kind(self) -> str:
        return self.entries[0].pattern.kind

    def __repr__(self) -> str:
        labels = "+".join(e.label for e in self.entries)
        return f"<placed {labels} @ {self.position}>"


class PlacementState:
    """Active candidate sets for a batch of entries."""

    def __init__(self, ctx: AnalysisContext, entries: list[CommEntry]) -> None:
        self.ctx = ctx
        self.entries = entries
        self.by_id = {e.id: e for e in entries}
        # Active positions per entry (subset of the entry's candidates).
        self.active: dict[int, set[Position]] = {
            e.id: set(e.candidates) for e in entries
        }
        # Inverted CommSet index: position -> ids of entries active there.
        # This is the exact dual of ``active`` (not a memo cache — every
        # mutation below updates both), turning the CommSet(S) view from a
        # scan over all entries into a dict lookup.
        self._at: dict[Position, set[int]] = {}
        for e in entries:
            for p in self.active[e.id]:
                self._at.setdefault(p, set()).add(e.id)
        # Constraint sets from redundancy elimination: when entry A absorbs
        # entry B, A's group must finally land in positions where the
        # subsumption of B holds.
        self.absorb_constraints: dict[int, list[set[Position]]] = {}

    def clone(self) -> "PlacementState":
        """Snapshot of the mutable working sets (entries are shared).

        The fault boundaries in :mod:`repro.core.pipeline` take a snapshot
        before each whole-pass mutation so a pass that raises midway can be
        rolled back instead of leaving half-applied deactivations behind.
        """
        new = object.__new__(PlacementState)
        new.ctx = self.ctx
        new.entries = self.entries
        new.by_id = self.by_id
        new.active = {eid: set(ps) for eid, ps in self.active.items()}
        new._at = {p: set(ids) for p, ids in self._at.items()}
        new.absorb_constraints = {
            eid: [set(c) for c in cs]
            for eid, cs in self.absorb_constraints.items()
        }
        return new

    # -- CommSet views -------------------------------------------------------

    def comm_set(self, pos: Position) -> set[int]:
        """Entry ids active at ``pos`` (the paper's CommSet(S)).

        Returns a live read-only view of the index — callers must not
        mutate it (all current callers iterate or copy).
        """
        ids = self._at.get(pos)
        return ids if ids is not None else set()

    def all_positions(self) -> list[Position]:
        return sorted(p for p, ids in self._at.items() if ids)

    def stmt_set(self, entry: CommEntry) -> set[Position]:
        """The paper's StmtSet(c): positions where the entry is active."""
        return self.active[entry.id]

    # -- mutations ------------------------------------------------------------

    def deactivate(self, entry: CommEntry, pos: Position) -> None:
        positions = self.active[entry.id]
        if pos in positions:
            positions.discard(pos)
            self._at[pos].discard(entry.id)

    def deactivate_dominated(self, entry: CommEntry, pos: Position) -> None:
        """Remove the entry from ``pos`` and every position it dominates
        (Fig 9f's dominance-ordered clearing)."""
        positions = self.active[entry.id]
        doomed = [
            p for p in positions if self.ctx.position_dominates(pos, p)
        ]
        for p in doomed:
            positions.discard(p)
            self._at[p].discard(entry.id)

    def restrict(self, entry: CommEntry, keep: set[Position]) -> None:
        positions = self.active[entry.id]
        for p in positions - keep:
            self._at[p].discard(entry.id)
        positions &= keep

    def alive_entries(self) -> list[CommEntry]:
        return [e for e in self.entries if e.alive]

    def mark_eliminated(
        self, victim: CommEntry, by: CommEntry, valid_positions: set[Position]
    ) -> None:
        if not valid_positions:
            raise PlacementError(
                f"eliminating {victim!r} with empty coverage constraint"
            )
        victim.eliminated_by = by
        by.absorbed.append(victim)
        self.absorb_constraints.setdefault(by.id, []).append(valid_positions)
        for p in self.active[victim.id]:
            self._at[p].discard(victim.id)
        self.active[victim.id] = set()

    def common_positions(
        self, entries: list[CommEntry], extra_constraints: list[set[Position]]
    ) -> set[Position]:
        """Positions common to every entry's full candidate chain and
        every constraint set (a dominance-total chain)."""
        common: set[Position] | None = None
        for e in entries:
            cset = e.candidate_set()
            common = cset if common is None else (common & cset)
        assert common is not None
        for constraint in extra_constraints:
            common &= constraint
        if not common:
            raise PlacementError("no common position for combined group")
        return common

    def latest_common_position(
        self, entries: list[CommEntry], extra_constraints: list[set[Position]]
    ) -> Position:
        """The dominance-latest position common to every entry's full
        candidate chain and every constraint set.

        Candidate chains are dominance-total, so their intersection is a
        chain; the latest element is the one dominated by all others.
        """
        common = self.common_positions(entries, extra_constraints)
        latest = None
        for p in common:
            if latest is None or self.ctx.position_dominates(latest, p):
                latest = p
        assert latest is not None
        return latest

    def earliest_common_position(
        self, entries: list[CommEntry], extra_constraints: list[set[Position]]
    ) -> Position:
        """The dominance-earliest common position (the overlap-maximizing
        choice the paper's §6 contrasts with the default)."""
        common = self.common_positions(entries, extra_constraints)
        earliest = None
        for p in common:
            if earliest is None or self.ctx.position_dominates(p, earliest):
                earliest = p
        assert earliest is not None
        return earliest
