"""Global redundancy elimination (paper §4.6, Figure 9f).

A communication ``(D1, M1)`` is made redundant by ``(D2, M2)`` when
``D1 ⊆ D2`` and ``M2(D1) ⊇ M1(D1)`` — here: same array, same canonical
mapping, and symbolic-section containment *evaluated at the shared
candidate position* (sections widen as positions hoist, so the test is
position-dependent).

Unlike classic availability analysis, the subsumed entry is disabled not
just at the discovering statement but at **every dominated position** —
the key move that lets a *later-than-earliest* placement of ``b2`` fully
eliminate ``b1`` in the paper's Figure 4, where earliest placement keeps
both messages.

When an entry loses all its active positions it is eliminated outright and
attached to its subsumer, along with the set of positions where the
coverage actually holds; the final group placement must land inside every
such constraint set (Claim 4.7's safety).
"""

from __future__ import annotations

from ..comm.entries import CommEntry
from ..comm.patterns import mapping_subsumes
from ..ir.cfg import Position
from .context import AnalysisContext
from .passes import PlacementPass, PlacementRun, register_pass
from .state import PlacementState


def subsumes_at(
    ctx: AnalysisContext, winner: CommEntry, loser: CommEntry, pos: Position
) -> bool:
    """Does ``winner``'s communication at ``pos`` fully cover ``loser``'s?

    Verdicts are memoized in two canonical stages rather than per raw
    ``(winner.id, loser.id, node)`` triple — entry ids are minted fresh
    for every ``collect_entries`` round, so the old key never repeated
    and the cache sat at a 0% hit rate:

    * the *static* stage (same array, same reduction-ness, mapping
      subsumption) depends only on the underlying :class:`~repro.ir.ssa.Use`
      pair, which is stable for the lifetime of the context — keyed on
      the ordered ``(id(winner.use), id(loser.use))`` pair (the predicate
      is not symmetric);
    * the *section* stage is keyed on the ordered pair of hash-consed
      section descriptor ids — ``section_at`` interns descriptors in the
      builder's pool, so every position whose node widens to the same
      footprint shares one id, and re-analysis rounds (multi-strategy
      compiles, fixed-point re-passes) hit instead of recomputing the
      containment.
    """
    if winner is loser:
        return False
    if not ctx.options.enable_caches:
        return _subsumes_at_impl(ctx, winner, loser, pos)
    stats = ctx.cache_stats.get("subsumes")
    pair_key = (id(winner.use), id(loser.use))
    static = ctx._subsumes_static_cache.get(pair_key)
    static_hit = static is not None
    if not static_hit:
        static = _subsumes_static(winner, loser)
        ctx._subsumes_static_cache[pair_key] = static
    if not static:
        if static_hit:
            stats.hits += 1
        else:
            stats.misses += 1
        return False
    node = ctx.node_of(pos)
    sec_w = ctx.sections.section_at(winner.use, node)
    sec_l = ctx.sections.section_at(loser.use, node)
    sec_key = (id(sec_w), id(sec_l))
    verdict = ctx._subsumes_section_cache.get(sec_key)
    if verdict is None:
        verdict = sec_w.contains(sec_l)
        ctx._subsumes_section_cache[sec_key] = verdict
        stats.misses += 1
    elif static_hit:
        stats.hits += 1
    else:
        stats.misses += 1
    return verdict


def _subsumes_static(winner: CommEntry, loser: CommEntry) -> bool:
    """The position-independent part of the predicate."""
    if winner.array != loser.array:
        return False
    if winner.is_reduction != loser.is_reduction:
        return False
    return mapping_subsumes(winner.pattern.mapping, loser.pattern.mapping)


def _subsumes_at_impl(
    ctx: AnalysisContext, winner: CommEntry, loser: CommEntry, pos: Position
) -> bool:
    if not _subsumes_static(winner, loser):
        return False
    node = ctx.node_of(pos)
    sec_w = ctx.sections.section_at(winner.use, node)
    sec_l = ctx.sections.section_at(loser.use, node)
    return sec_w.contains(sec_l)


def coverage_positions(
    ctx: AnalysisContext, winner: CommEntry, loser: CommEntry
) -> set[Position]:
    """Positions in both candidate chains where the subsumption holds —
    the constraint set attached on elimination."""
    shared = winner.candidate_set() & loser.candidate_set()
    return {p for p in shared if subsumes_at(ctx, winner, loser, p)}


def redundancy_eliminate(ctx: AnalysisContext, state: PlacementState) -> int:
    """Figure 9f to a fixed point; returns how many entries were fully
    eliminated."""
    eliminated = 0
    changed = True
    while changed:
        changed = False
        for pos in state.all_positions():
            ids = sorted(state.comm_set(pos))
            for i in ids:
                winner = state.by_id[i]
                if not winner.alive:
                    continue
                for j in ids:
                    loser = state.by_id[j]
                    if not loser.alive or loser is winner:
                        continue
                    if pos not in state.active[loser.id]:
                        continue
                    if not subsumes_at(ctx, winner, loser, pos):
                        continue
                    state.deactivate_dominated(loser, pos)
                    changed = True
                    if not state.active[loser.id]:
                        valid = coverage_positions(ctx, winner, loser)
                        state.mark_eliminated(loser, winner, valid)
                        # Transitive absorption: anything the loser had
                        # absorbed moves to the winner, constraints intact.
                        for moved in loser.absorbed:
                            moved.eliminated_by = winner
                            winner.absorbed.append(moved)
                        loser.absorbed = []
                        for constraint in state.absorb_constraints.pop(
                            loser.id, []
                        ):
                            state.absorb_constraints.setdefault(
                                winner.id, []
                            ).append(constraint)
                        eliminated += 1
    return eliminated


@register_pass
class RedundancyEliminationPass(PlacementPass):
    """§4.6 adapter: dominance-aware global redundancy elimination."""

    name = "redundancy"
    section = "§4.6"
    description = "eliminate communications fully covered by another"
    needs_state = True
    mutates_state = True
    mutates_entries = True  # eliminated_by/absorbed marks roll back too
    fallback_desc = "pass rolled back (no eliminations)"

    def enabled(self, options) -> bool:
        return options.enable_redundancy_elimination

    def run(self, run: PlacementRun) -> dict[str, int]:
        from . import pipeline as pl  # late: monkeypatchable namespace

        assert run.state is not None
        return {"redundant": pl.redundancy_eliminate(run.ctx, run.state)}

    def recover(self, run: PlacementRun) -> dict[str, int]:
        return {"redundant": 0}
