"""Greedy final placement and message combining (paper §4.7, Figure 9g).

Entries are considered most-constrained-first (fewest surviving candidate
positions — the analogue of Click's global code motion heuristic the paper
cites).  Each entry is pinned at the candidate position where it can
combine with the largest number of other still-active entries; ties prefer
the *latest* position (reducing buffer/cache contention, the SP2 "folk
truism" of §4.7).

Entries pinned at the same position are then partitioned into groups of
pairwise-compatible communications under the combined-size threshold, and
each group is finally moved to the **latest position common to the
candidate chains of its members and of every entry absorbed during
redundancy elimination** — deferring the real placement decision to the
last moment, which is the paper's central idea.
"""

from __future__ import annotations

from ..comm.compatibility import entries_combinable, message_volume
from ..comm.entries import CommEntry
from ..errors import PlacementError
from ..ir.cfg import Position
from .context import AnalysisContext
from .passes import PlacementPass, PlacementRun, register_pass
from .state import PlacedComm, PlacementState


def _combinable_at(
    ctx: AnalysisContext, a: CommEntry, b: CommEntry, pos: Position
) -> bool:
    """Memoizing wrapper around the §4.7 compatibility predicate.

    The verdict depends on ``pos`` only through its node (sections and
    live ranges are per-node) and is symmetric in (a, b), so it is cached
    under the unordered id pair plus the node id — one evaluation serves
    every position of a block, in both argument orders.
    """
    if not ctx.options.enable_caches:
        return _combinable_at_impl(ctx, a, b, pos)
    if a.id <= b.id:
        key = (a.id, b.id, pos.node_id)
    else:
        key = (b.id, a.id, pos.node_id)
    stats = ctx.cache_stats.get("combinable")
    verdict = ctx._combinable_cache.get(key)
    if verdict is not None:
        stats.hits += 1
        return verdict
    stats.misses += 1
    verdict = _combinable_at_impl(ctx, a, b, pos)
    ctx._combinable_cache[key] = verdict
    return verdict


def _combinable_at_impl(
    ctx: AnalysisContext, a: CommEntry, b: CommEntry, pos: Position
) -> bool:
    node = ctx.node_of(pos)
    ranges = ctx.sections.live_ranges_at(node)
    sec_a = ctx.sections.section_at(a.use, node)
    sec_b = ctx.sections.section_at(b.use, node)
    opts = ctx.options
    return entries_combinable(
        ctx.info,
        a,
        b,
        sec_a,
        sec_b,
        ranges,
        ctx.cost_model.threshold_bytes(),
        opts.hull_slack,
        opts.hull_const,
    )


def _entry_order(ctx: AnalysisContext, state: PlacementState,
                 entries: list[CommEntry]) -> list[CommEntry]:
    mode = ctx.options.greedy_order
    if mode == "constrained":
        return sorted(entries, key=lambda e: (len(state.stmt_set(e)), e.id))
    if mode == "reversed":
        return sorted(entries, key=lambda e: (-len(state.stmt_set(e)), e.id))
    return sorted(entries, key=lambda e: e.id)  # 'arbitrary': program order


def greedy_choose(ctx: AnalysisContext, state: PlacementState) -> list[PlacedComm]:
    """Pin every surviving entry, group, and push groups late."""
    alive = [e for e in state.alive_entries() if state.stmt_set(e)]
    for entry in _entry_order(ctx, state, alive):
        # Candidate positions in chain order, latest last, so the final
        # max() tie-breaks toward the latest position.
        chain = [p for p in entry.candidates if p in state.stmt_set(entry)]
        if not chain:
            raise PlacementError(f"{entry!r} has no active position left")
        best_pos = chain[-1]
        best_count = -1
        for pos in chain:  # earliest → latest; ">=" prefers the latest tie
            others = [
                state.by_id[i]
                for i in state.comm_set(pos)
                if i != entry.id and state.by_id[i].alive
            ]
            count = sum(1 for o in others if _combinable_at(ctx, entry, o, pos))
            if count >= best_count:
                best_count = count
                best_pos = pos
        state.restrict(entry, {best_pos})

    # Partition per position into compatible groups.
    by_pos: dict[Position, list[CommEntry]] = {}
    for entry in alive:
        (pos,) = state.stmt_set(entry)
        by_pos.setdefault(pos, []).append(entry)
    return finalize_groups(ctx, state, by_pos)


def finalize_groups(
    ctx: AnalysisContext,
    state: PlacementState,
    by_pos: dict[Position, list[CommEntry]],
) -> list[PlacedComm]:
    """Shared tail of the combining pass: partition each position's pinned
    entries into compatible groups and push every group late (the paper's
    final placement rule), honoring absorbed-entry coverage constraints."""
    placed: list[PlacedComm] = []
    for pos in sorted(by_pos):
        groups = _partition_groups(ctx, by_pos[pos], pos)
        for group in groups:
            final_pos = _final_position(ctx, state, group, pos)
            placed.append(PlacedComm(final_pos, group))
    placed.sort(key=lambda pc: pc.position)
    return placed


def ilp_choose(ctx: AnalysisContext, state: PlacementState) -> list[PlacedComm]:
    """Exact combining (§6.1): branch-and-bound assignment, then the same
    group partitioning and push-late finalization as the greedy pass.

    Raises :class:`PlacementError` when the candidate-chain product exceeds
    the search limit — the pipeline's fault boundary then degrades to
    :func:`greedy_choose`.  Does not mutate ``state``, so that fallback
    runs on untouched working sets.
    """
    from .ilp import optimal_placement  # local: ilp imports from greedy

    alive = [e for e in state.alive_entries() if state.stmt_set(e)]
    if not alive:
        return []
    assignment, _cost = optimal_placement(ctx, alive)
    by_pos: dict[Position, list[CommEntry]] = {}
    for entry in alive:
        by_pos.setdefault(assignment[entry.id], []).append(entry)
    return finalize_groups(ctx, state, by_pos)


def _partition_groups(
    ctx: AnalysisContext, entries: list[CommEntry], pos: Position
) -> list[list[CommEntry]]:
    """Greedy pairwise-compatible grouping under the volume threshold."""
    node = ctx.node_of(pos)
    ranges = ctx.sections.live_ranges_at(node)
    volumes = {
        e.id: message_volume(
            ctx.info, e, ctx.sections.section_at(e.use, node), ranges
        )
        for e in entries
    }
    threshold = ctx.cost_model.threshold_bytes()
    groups: list[list[CommEntry]] = []
    group_vol: list[int] = []
    for entry in sorted(entries, key=lambda e: e.id):
        for gi, group in enumerate(groups):
            if group_vol[gi] + volumes[entry.id] > threshold:
                continue
            if all(_combinable_at(ctx, entry, m, pos) for m in group):
                group.append(entry)
                group_vol[gi] += volumes[entry.id]
                break
        else:
            groups.append([entry])
            group_vol.append(volumes[entry.id])
    return groups


def _final_position(
    ctx: AnalysisContext,
    state: PlacementState,
    group: list[CommEntry],
    fallback: Position,
) -> Position:
    """Latest position common to the group's candidate chains and to every
    absorbed entry's coverage constraint."""
    constraints: list[set[Position]] = []
    for entry in group:
        constraints.extend(state.absorb_constraints.get(entry.id, []))
    try:
        if ctx.options.group_placement == "earliest":
            return state.earliest_common_position(group, constraints)
        return state.latest_common_position(group, constraints)
    except PlacementError:
        # The chosen greedy position is always a sound fallback: it is in
        # every member's chain (they were pinned there) and the coverage
        # constraints each contain their discovery position which dominates
        # it... if even that fails, keep the pin.
        return fallback


@register_pass
class GreedyCombinePass(PlacementPass):
    """§4.7 adapter: greedy combining with push-late group placement.

    On fault the manager resets every elimination (an elimination is only
    sound if the final placement honors its coverage constraints, which
    the fallback does not consult) and :meth:`recover` emits the Latest
    placement.
    """

    name = "greedy"
    section = "§4.7"
    description = "pin, group, and push-late combine surviving entries"
    needs_state = True
    mutates_entries = True
    fallback_desc = "every entry at its Latest point"

    def run(self, run: PlacementRun) -> dict[str, int]:
        from . import pipeline as pl  # late: monkeypatchable namespace

        assert run.state is not None
        run.placed = pl.greedy_choose(run.ctx, run.state)
        return {"groups": len(run.placed)}

    def recover(self, run: PlacementRun) -> dict[str, int]:
        from . import pipeline as pl

        run.placed = pl._latest_placement(run.entries)
        stats: dict[str, int] = {"groups": len(run.placed)}
        if "redundant" in run.stats:
            stats["redundant"] = 0
        return stats
