"""The placement pass framework: one fault boundary, one trace format.

The paper's algorithm is explicitly a sequence of interdependent passes —
candidate generation (§4.4), subset elimination (§4.5), global redundancy
elimination (§4.6), greedy combining (§4.7) — and each strategy of the
Figure-10 evaluation is just a different pass list over the same analyzed
entries.  This module turns that structure into an explicit architecture:

* :class:`PlacementPass` — the pass protocol: a name, a paper-section
  tag, a ``run(PlacementRun)`` body returning per-pass counters, and
  declarative fault-recovery metadata (what to roll back, what fallback
  to apply, what the :class:`~repro.core.faults.DegradationEvent` is
  called).
* :class:`PassManager` — owns ordering, enable/disable resolution, the
  whole-pass :meth:`PlacementState.clone` snapshot/rollback boundary,
  strict-mode re-raise, degradation-event emission, per-pass wall-time
  and counter collection (:class:`PassTrace`), and post-pass textual
  dumps (``--dump-after``).
* :data:`PIPELINES` — the named pass lists behind ``orig`` / ``nored`` /
  ``comb``; :func:`build_pipeline` resolves one plus
  :attr:`CompilerOptions.pass_pipeline` overrides and
  :attr:`CompilerOptions.disabled_passes`.

Soundness invariant (the reason one generic boundary suffices): the
Latest placement is always a correct schedule, every optimization pass is
an optional refinement, and every refinement's working state is either
the :class:`PlacementState` (snapshot/restored by the manager) or the
entries' elimination marks (reset by the manager when the pass declares
``mutates_entries``).  A pipeline that ends without a schedule — because
the combining pass was disabled or every pass degraded — falls back to
the Latest placement of all entries, with eliminations abandoned, since
an elimination is only sound if the final placement honors its coverage
constraints.

Pass *implementations* stay in their own modules (``subset.py``,
``redundancy.py``, ``greedy.py``, ``ilp.py``, ``pipeline.py``); each
registers a thin :class:`PlacementPass` adapter here.  Adapters invoke
the underlying functions **through the pipeline module namespace**
(``pipeline.subset_eliminate`` etc.) so test harnesses that monkeypatch
``repro.core.pipeline`` attributes keep working.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Optional, TextIO

from ..comm.entries import CommEntry
from .context import AnalysisContext, CompilerOptions
from .faults import DegradationEvent
from .state import PlacedComm, PlacementState


def _pipeline():
    """The pipeline module, resolved late (it imports this module)."""
    from . import pipeline

    return pipeline


# ---------------------------------------------------------------------------
# Run state and traces
# ---------------------------------------------------------------------------


@dataclass
class PlacementRun:
    """Mutable state threaded through one pipeline execution."""

    ctx: AnalysisContext
    entries: list[CommEntry]
    faults: list[DegradationEvent]
    state: Optional[PlacementState] = None
    placed: Optional[list[PlacedComm]] = None
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def options(self) -> CompilerOptions:
        return self.ctx.options


@dataclass
class PassTrace:
    """Structured record of one executed pass.

    ``stats`` holds the pass's own counters (e.g. ``subset_emptied``)
    plus the manager's generic ones: ``deactivated`` active candidate
    positions removed, ``eliminated`` entries killed, and ``cache_hits``
    across every memoized analysis cache, all measured as deltas over
    this pass alone.
    """

    name: str
    section: str
    wall_s: float
    degraded: bool = False
    stats: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "pass": self.name,
            "section": self.section,
            "wall_s": round(self.wall_s, 6),
            "degraded": self.degraded,
            "stats": dict(self.stats),
        }


# ---------------------------------------------------------------------------
# The pass protocol
# ---------------------------------------------------------------------------


class PlacementPass:
    """Base class for placement passes.

    Subclasses set the class attributes and implement :meth:`run`; the
    manager supplies the fault boundary around it.  ``recover`` runs
    *after* the manager's generic rollback (state snapshot restore +
    elimination reset) and applies the pass's fallback result — it must
    leave the run in a sound state.
    """

    #: Registry key, ``--disable-pass`` / ``--dump-after`` name.
    name: str = ""
    #: Paper-section tag shown in traces and ``--list-passes``.
    section: str = ""
    description: str = ""
    #: Optimization passes may be disabled; structural passes may not.
    optimization: bool = True
    #: Needs a PlacementState (built lazily before the first such pass).
    needs_state: bool = False
    #: Snapshot/restore the PlacementState around the pass on fault.
    mutates_state: bool = False
    #: Reset entry elimination marks (``eliminated_by``/``absorbed``) on fault.
    mutates_entries: bool = False
    #: No fault boundary at all: a raise propagates even in non-strict
    #: mode (used for the terminal Latest placement, which has nothing
    #: sound left to fall back to).
    sound: bool = False
    #: DegradationEvent pass name on fault (defaults to ``name``).
    fault_name: Optional[str] = None
    #: Human description of the applied fallback, for the event record.
    fallback_desc: str = ""

    def enabled(self, options: CompilerOptions) -> bool:
        """Legacy option switches (``enable_subset_elimination`` …)."""
        return True

    def run(self, run: PlacementRun) -> Optional[dict[str, int]]:
        raise NotImplementedError

    def recover(self, run: PlacementRun) -> Optional[dict[str, int]]:
        """Apply the fallback after a fault; returns stat overrides."""
        return None


# ---------------------------------------------------------------------------
# Registry and named pipelines
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, PlacementPass] = {}


def register_pass(cls: type[PlacementPass]) -> type[PlacementPass]:
    """Class decorator: instantiate and register one pass singleton."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"pass {cls.__name__} has no name")
    _REGISTRY[instance.name] = instance
    return cls


def registered_passes() -> dict[str, PlacementPass]:
    """Every registered pass, importing the defining modules first."""
    _pipeline()  # importing the pipeline registers the standard passes
    from . import ilp  # noqa: F401  (lazily imported elsewhere: §6.1 pass)
    from .. import solver  # noqa: F401  (registers the 'exact' pass)

    return dict(_REGISTRY)


def resolve_pass(name: str) -> PlacementPass:
    passes = registered_passes()
    if name not in passes:
        known = ", ".join(sorted(passes))
        raise ValueError(f"unknown pass {name!r} (known: {known})")
    return passes[name]


def validate_pass_names(names: "list[str] | tuple[str, ...]") -> None:
    """Raise ValueError on unknown or non-disableable pass names."""
    for name in names:
        resolve_pass(name)


#: The named pipeline configurations behind the three strategies.  Every
#: pipeline implicitly starts with the ``analyze`` pass (Latest/Earliest/
#: candidate analysis); these are the placement pass lists that follow.
PIPELINES: dict[str, tuple[str, ...]] = {
    "orig": ("latest-placement",),
    "nored": ("earliest-placement",),
    "comb": ("subset", "redundancy", "greedy"),
    # Whole-pipeline exact search (repro.solver): builds its own greedy
    # comb incumbent internally, so the single pass subsumes §4.5-§4.7.
    "exact": ("exact",),
}


def build_pipeline(
    strategy: "Any",
    options: CompilerOptions,
    include_analysis: bool = False,
) -> list[PlacementPass]:
    """Resolve the pass list for one strategy under the given options.

    ``options.pass_pipeline`` (a tuple of pass names) overrides the
    strategy's named pipeline outright; ``options.placement_search ==
    'ilp'`` swaps the exact §6.1 combiner in for the greedy one;
    ``options.disabled_passes`` filtering happens at execution time so a
    built manager stays reusable across option tweaks.
    """
    if options.pass_pipeline is not None:
        names = list(options.pass_pipeline)
    else:
        names = list(PIPELINES[strategy.value])
        if options.placement_search == "ilp":
            names = ["ilp" if n == "greedy" else n for n in names]
    if include_analysis and "analyze" not in names:
        names.insert(0, "analyze")
    return [resolve_pass(name) for name in names]


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------


class PassManager:
    """Runs a pass list over analyzed entries with one shared fault
    boundary, per-pass tracing, and optional post-pass dumps."""

    def __init__(
        self,
        passes: list[PlacementPass],
        dump_after: "tuple[str, ...] | frozenset[str]" = (),
        dump_stream: Optional[TextIO] = None,
    ) -> None:
        self.passes = list(passes)
        self.dump_after = frozenset(dump_after)
        self.dump_stream = dump_stream

    @classmethod
    def for_strategy(
        cls,
        strategy: "Any",
        options: CompilerOptions,
        include_analysis: bool = False,
        **kwargs: Any,
    ) -> "PassManager":
        return cls(
            build_pipeline(strategy, options, include_analysis), **kwargs
        )

    # -- execution ----------------------------------------------------------

    def execute(
        self,
        ctx: AnalysisContext,
        entries: list[CommEntry],
        faults: list[DegradationEvent],
        traces: Optional[list[PassTrace]] = None,
    ) -> PlacementRun:
        """Run every enabled pass; the returned run always carries a
        sound schedule in ``run.placed``."""
        run = PlacementRun(
            ctx=ctx,
            entries=entries,
            faults=faults,
            stats={"entries": len(entries)},
        )
        for p in self.passes:
            if p.name == "analyze":
                # Analysis replaces the entry list wholesale.
                self._run_pass(p, run, traces)
                run.stats["entries"] = len(run.entries)
                continue
            if not self._enabled(p, ctx.options):
                continue
            self._run_pass(p, run, traces)
        if run.placed is None:
            self._terminal_fallback(run)
        return run

    def _enabled(self, p: PlacementPass, options: CompilerOptions) -> bool:
        if p.name in options.disabled_passes and p.optimization:
            return False
        return p.enabled(options)

    def _run_pass(
        self,
        p: PlacementPass,
        run: PlacementRun,
        traces: Optional[list[PassTrace]],
    ) -> None:
        ctx = run.ctx
        strict = ctx.options.strict
        if p.needs_state and run.state is None:
            run.state = PlacementState(ctx, run.entries)
        boundary = not strict and not p.sound
        snapshot = (
            run.state.clone()
            if boundary and run.state is not None and p.mutates_state
            else None
        )
        active_before = self._active_positions(run)
        eliminated_before = self._eliminated(run)
        hits_before = self._cache_hits(ctx)
        degraded = False
        t0 = time.perf_counter()
        try:
            pass_stats = p.run(run) or {}
        except Exception as exc:
            if not boundary:
                raise
            degraded = True
            if snapshot is not None:
                run.state = snapshot
            if p.mutates_entries:
                _pipeline()._reset_eliminations(run.entries)
            run.faults.append(
                DegradationEvent.from_exception(
                    p.fault_name or p.name, exc, p.fallback_desc
                )
            )
            pass_stats = p.recover(run) or {}
        wall = time.perf_counter() - t0
        run.stats.update(pass_stats)
        if traces is not None:
            counters = dict(pass_stats)
            counters["deactivated"] = max(
                0, active_before - self._active_positions(run)
            )
            counters["eliminated"] = max(
                0, self._eliminated(run) - eliminated_before
            )
            counters["cache_hits"] = self._cache_hits(ctx) - hits_before
            traces.append(
                PassTrace(
                    name=p.name,
                    section=p.section,
                    wall_s=wall,
                    degraded=degraded,
                    stats=counters,
                )
            )
        if p.name in self.dump_after:
            self.dump(p.name, run)

    def _terminal_fallback(self, run: PlacementRun) -> None:
        """No pass produced a schedule (combining disabled, or every
        refinement degraded): emit the always-sound Latest placement.
        Eliminations are abandoned — they are only sound under a final
        placement that honors their coverage constraints."""
        pl = _pipeline()
        if any(e.eliminated_by is not None for e in run.entries):
            pl._reset_eliminations(run.entries)
        if "redundant" in run.stats:
            run.stats["redundant"] = 0
        run.placed = pl._latest_placement(run.entries)

    # -- trace counters ------------------------------------------------------

    @staticmethod
    def _active_positions(run: PlacementRun) -> int:
        if run.state is None:
            return 0
        return sum(len(ps) for ps in run.state.active.values())

    @staticmethod
    def _eliminated(run: PlacementRun) -> int:
        return sum(1 for e in run.entries if e.eliminated_by is not None)

    @staticmethod
    def _cache_hits(ctx: AnalysisContext) -> int:
        return sum(s.hits for s in ctx.cache_stats.stats.values())

    # -- dumps ---------------------------------------------------------------

    def dump(self, pass_name: str, run: PlacementRun) -> None:
        stream = self.dump_stream or sys.stdout
        stream.write(format_state_dump(pass_name, run))
        stream.write("\n")


def format_state_dump(pass_name: str, run: PlacementRun) -> str:
    """Textual dump of the CommSet/PlacementState working sets, suitable
    for eyeballing what a pass did (``--dump-after PASS``)."""
    ctx = run.ctx
    alive = [e for e in run.entries if e.alive]
    lines = [
        f"== dump after pass '{pass_name}': "
        f"{len(alive)}/{len(run.entries)} entries alive =="
    ]
    for e in run.entries:
        if e.eliminated_by is not None:
            lines.append(
                f"  {e.label:16s} ELIMINATED by {e.eliminated_by.label}"
            )
            continue
        chain = e.candidates or []
        if run.state is not None:
            active = run.state.stmt_set(e)
            marks = [
                ("*" if p in active else "-") + ctx.describe_position(p)
                for p in chain
            ]
            lines.append(
                f"  {e.label:16s} active {len(active)}/{len(chain)}: "
                + "; ".join(marks)
            )
        else:
            span = []
            if e.earliest_pos is not None:
                span.append(f"earliest={ctx.describe_position(e.earliest_pos)}")
            if e.latest_pos is not None:
                span.append(f"latest={ctx.describe_position(e.latest_pos)}")
            lines.append(
                f"  {e.label:16s} candidates {len(chain)}: " + ", ".join(span)
            )
    if run.state is not None:
        occupied = [
            p for p in run.state.all_positions() if run.state.comm_set(p)
        ]
        lines.append(f"  CommSet over {len(occupied)} positions:")
        for p in occupied:
            members = sorted(
                run.state.by_id[i].label for i in run.state.comm_set(p)
            )
            lines.append(
                f"    {ctx.describe_position(p):32s} {{{', '.join(members)}}}"
            )
    if run.placed is not None:
        lines.append(f"  schedule: {len(run.placed)} call sites")
        for pc in run.placed:
            labels = "+".join(e.label for e in pc.entries)
            lines.append(
                f"    {ctx.describe_position(pc.position):32s} {labels}"
            )
    return "\n".join(lines)


def list_passes(
    options: Optional[CompilerOptions] = None,
) -> list[dict[str, Any]]:
    """Rows for ``--list-passes``: every registered pass with its paper
    section, the pipelines that include it, and its enabled state under
    ``options`` (default options when omitted)."""
    opts = options or CompilerOptions()
    in_pipelines: dict[str, list[str]] = {}
    for pipe_name, names in PIPELINES.items():
        for n in names:
            in_pipelines.setdefault(n, []).append(pipe_name)
    in_pipelines.setdefault("analyze", ["all"])
    in_pipelines.setdefault("ilp", ["comb (placement_search=ilp)"])
    rows = []
    for name in sorted(registered_passes()):
        p = _REGISTRY[name]
        enabled = p.enabled(opts) and not (
            name in opts.disabled_passes and p.optimization
        )
        rows.append(
            {
                "name": p.name,
                "section": p.section,
                "pipelines": in_pipelines.get(name, []),
                "optimization": p.optimization,
                "enabled": enabled,
                "description": p.description,
            }
        )
    return rows


def format_pass_list(rows: list[dict[str, Any]]) -> str:
    header = (
        f"{'pass':20s} {'paper':10s} {'pipelines':28s} {'enabled':8s} "
        "description"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        flag = "yes" if row["enabled"] else "no"
        if not row["optimization"]:
            flag += " (always)"
        lines.append(
            f"{row['name']:20s} {row['section']:10s} "
            f"{', '.join(row['pipelines']):28s} {flag:8s} "
            f"{row['description']}"
        )
    return "\n".join(lines)
