"""Subset elimination (paper §4.5).

With the number and volume of messages prioritized over overlap, a
position whose CommSet is a subset of another position's CommSet offers
strictly less combining opportunity and can be dropped without hurting the
final solution: ``CommSet(S1) ⊆ CommSet(S2)  ⇒  CommSet(S1) := ∅``.

For *equal* sets either may be emptied (paper); we keep the later
(dominance-deepest) position, consistent with the final push-late rule.
The paper notes this step must be dropped if overlap optimization is ever
added (§6) — the ablation benchmark exercises exactly that switch.
"""

from __future__ import annotations

from ..ir.cfg import Position
from .context import AnalysisContext
from .state import PlacementState


def subset_eliminate(ctx: AnalysisContext, state: PlacementState) -> int:
    """Run subset elimination to a fixed point; returns the number of
    positions emptied."""
    emptied = 0
    changed = True
    while changed:
        changed = False
        positions = [p for p in state.all_positions() if state.comm_set(p)]
        sets = {p: frozenset(state.comm_set(p)) for p in positions}
        for p1 in positions:
            s1 = sets[p1]
            if not s1:
                continue
            for p2 in positions:
                if p1 == p2:
                    continue
                s2 = sets[p2]
                if not s1 <= s2:
                    continue
                if s1 == s2 and not ctx.position_dominates(p1, p2):
                    # Equal sets: empty only the earlier position.
                    continue
                for eid in s1:
                    state.deactivate(state.by_id[eid], p1)
                sets[p1] = frozenset()
                emptied += 1
                changed = True
                break
    return emptied
