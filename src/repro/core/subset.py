"""Subset elimination (paper §4.5).

With the number and volume of messages prioritized over overlap, a
position whose CommSet is a subset of another position's CommSet offers
strictly less combining opportunity and can be dropped without hurting the
final solution: ``CommSet(S1) ⊆ CommSet(S2)  ⇒  CommSet(S1) := ∅``.

For *equal* sets either may be emptied (paper); we keep the later
(dominance-deepest) position, consistent with the final push-late rule.
The paper notes this step must be dropped if overlap optimization is ever
added (§6) — the ablation benchmark exercises exactly that switch.
"""

from __future__ import annotations

from ..ir.cfg import Position
from .context import AnalysisContext, CompilerOptions
from .passes import PlacementPass, PlacementRun, register_pass
from .state import PlacementState


def subset_eliminate(ctx: AnalysisContext, state: PlacementState) -> int:
    """Run subset elimination; returns the number of positions emptied.

    One pass reaches the fixed point: emptying CommSet(S1) never changes
    any other position's CommSet, so the subset relation among the
    *initial* sets already determines the outcome.  (A witness that is
    itself emptied is fine — following witness links, which only grow the
    set or move strictly later in dominance, always terminates at a
    surviving witness for the same position.)  Comparing against
    positions with smaller CommSets is skipped outright.
    """
    positions = [p for p in state.all_positions() if state.comm_set(p)]
    sets = {p: frozenset(state.comm_set(p)) for p in positions}
    # Positions sharing a CommSet behave identically, so compare *distinct*
    # sets (far fewer than positions — every interior position of a block
    # has the same set) and resolve equal-set ties inside each bucket.
    buckets: dict[frozenset[int], list[Position]] = {}
    for p in positions:
        buckets.setdefault(sets[p], []).append(p)
    distinct = list(buckets)
    doomed: list[Position] = []
    for s1 in distinct:
        n1 = len(s1)
        if any(n1 < len(s2) and s1 <= s2 for s2 in distinct):
            # Strictly contained: every position with this set goes.
            doomed.extend(buckets[s1])
            continue
        # Equal sets: empty only the earlier positions (keep the
        # dominance-maximal ones, consistent with the push-late rule).
        group = buckets[s1]
        if len(group) > 1:
            dominates = ctx.position_dominates
            doomed.extend(
                p1
                for p1 in group
                if any(p1 is not p2 and dominates(p1, p2) for p2 in group)
            )
    for p in doomed:
        for eid in sets[p]:
            state.deactivate(state.by_id[eid], p)
    return len(doomed)


@register_pass
class SubsetEliminationPass(PlacementPass):
    """§4.5 adapter: empty positions offering strictly less combining."""

    name = "subset"
    section = "§4.5"
    description = "empty CommSets that are subsets of another position's"
    needs_state = True
    mutates_state = True
    fallback_desc = "pass skipped (all candidates kept)"

    def enabled(self, options: CompilerOptions) -> bool:
        return options.enable_subset_elimination

    def run(self, run: PlacementRun) -> dict[str, int]:
        from . import pipeline as pl  # late: monkeypatchable namespace

        assert run.state is not None
        return {"subset_emptied": pl.subset_eliminate(run.ctx, run.state)}

    def recover(self, run: PlacementRun) -> dict[str, int]:
        return {"subset_emptied": 0}
