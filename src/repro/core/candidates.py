"""Candidate position marking (paper §4.4, Figure 9e).

Any safe single placement point for use ``u`` must dominate ``u``; by
Claims 4.5/4.6 the candidates are exactly the statements encountered while
following dominator-tree parent links from the basic block of
``Latest(u)`` up to the basic block of ``Earliest(u)``:

* in the Latest block, positions up to ``Latest(u)``;
* in intermediate blocks, every position;
* in the Earliest block, positions from ``Earliest(u)`` onward.

Positions include each block's top anchor (index -1), which is where
preheader placements and φ-def points live.  The resulting list is
dominator-ordered: ``candidates[0]`` is Earliest, ``candidates[-1]`` is
Latest — a chain, since dominators of a node are totally ordered.
"""

from __future__ import annotations

from ..comm.entries import CommEntry
from ..errors import PlacementError
from ..ir.cfg import Position
from .context import AnalysisContext


def mark_candidates(ctx: AnalysisContext, entry: CommEntry) -> None:
    """Fill ``entry.candidates`` (earliest-first chain)."""
    e_pos, l_pos = entry.earliest_pos, entry.latest_pos
    if e_pos is None or l_pos is None:
        raise PlacementError(f"entry {entry!r} missing earliest/latest")

    e_node = ctx.node_of(e_pos)
    l_node = ctx.node_of(l_pos)

    if e_node is l_node:
        if e_pos.index > l_pos.index:
            raise PlacementError(
                f"{entry!r}: Earliest {e_pos} after Latest {l_pos} in one block"
            )
        entry.candidates = ctx.positions_in_node(
            e_node, start=e_pos.index, end=l_pos.index
        )
        entry._candidate_set = None
        return

    path = ctx.dom.dom_tree_path(l_node, e_node)  # latest ... earliest
    chain: list[Position] = []
    for i, node in enumerate(path):
        if i == 0:  # Latest's block: up to Latest
            chain.extend(reversed(ctx.positions_in_node(node, end=l_pos.index)))
        elif i == len(path) - 1:  # Earliest's block: from Earliest on
            chain.extend(reversed(ctx.positions_in_node(node, start=e_pos.index)))
        else:
            chain.extend(reversed(ctx.positions_in_node(node)))
    chain.reverse()  # earliest-first
    entry.candidates = chain
    entry._candidate_set = None


def verify_candidates(ctx: AnalysisContext, entry: CommEntry) -> None:
    """Internal invariant check (Claim 4.6): every candidate dominates the
    use, the chain is dominance-ordered, and the endpoints match."""
    use_pos = ctx.cfg.position_before(entry.use.stmt)
    cands = entry.candidates
    if not cands:
        raise PlacementError(f"{entry!r} has no candidates")
    if cands[0] != entry.earliest_pos or cands[-1] != entry.latest_pos:
        raise PlacementError(f"{entry!r}: candidate endpoints do not match")
    for a, b in zip(cands, cands[1:]):
        if not ctx.position_dominates(a, b):
            raise PlacementError(f"{entry!r}: candidates not a dominance chain")
    if entry.is_reduction:
        # A reduction's combine phase may sit at-or-after its statement
        # (§6.2 flexibility); every candidate must be reachable from the
        # partial computation instead of dominating it.
        for p in cands:
            if not ctx.position_dominates(use_pos, p):
                raise PlacementError(
                    f"{entry!r}: reduction candidate {p} precedes the partials"
                )
        return
    for p in cands:
        if not ctx.position_dominates(p, use_pos) and p != use_pos:
            raise PlacementError(
                f"{entry!r}: candidate {p} does not dominate the use"
            )
