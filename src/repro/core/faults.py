"""Fault boundaries for the placement pipeline (degraded-mode compilation).

The paper's structure contains a built-in safety net: ``Latest(u)`` —
classic message-vectorized placement (§4.2) — is a sound position for
every communication entry, so each later pass (Earliest, candidate
marking, subset elimination, redundancy elimination, greedy/ILP
combining) is an *optional refinement*.  When a pass raises, the pipeline
abandons that refinement — per-entry where the pass works entry-at-a-time,
whole-pass otherwise — and continues from a state that is still correct,
merely less optimized.

Every such fallback is recorded as a :class:`DegradationEvent` on the
:class:`~repro.core.pipeline.CompilationResult`, rendered as a ``W0601``
warning diagnostic.  ``CompilerOptions(strict=True)`` disables the
boundaries entirely (faults re-raise), which is what the chaos tests use
to prove an injected fault is actually reaching the pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..comm.entries import CommEntry
from ..errors import DEGRADED_CODE, Diagnostic


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded fallback: which pass failed, for what, and what the
    pipeline did instead.

    ``entry_id``/``entry_label`` are ``None`` for whole-pass fallbacks
    (subset, redundancy, and the final combining pass degrade as a unit;
    the per-entry analyses degrade one entry at a time).
    """

    pass_name: str
    fallback: str
    error: str
    error_type: str
    entry_id: Optional[int] = None
    entry_label: Optional[str] = None
    #: Diagnostic code: W0601 for generic boundary fallbacks, W0604 when
    #: an exact placement search degraded to the greedy schedule.
    code: str = DEGRADED_CODE

    @classmethod
    def from_exception(
        cls,
        pass_name: str,
        exc: BaseException,
        fallback: str,
        entry: CommEntry | None = None,
        code: str = DEGRADED_CODE,
    ) -> "DegradationEvent":
        return cls(
            pass_name=pass_name,
            fallback=fallback,
            error=str(exc) or repr(exc),
            error_type=type(exc).__name__,
            entry_id=entry.id if entry is not None else None,
            entry_label=entry.label if entry is not None else None,
            code=code,
        )

    @property
    def scope(self) -> str:
        if self.entry_id is None:
            return "whole pass"
        return f"entry {self.entry_label or self.entry_id}"

    def diagnostic(self) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            severity="warning",
            message=(
                f"pass {self.pass_name!r} degraded ({self.scope}): "
                f"{self.error_type}: {self.error}; fallback: {self.fallback}"
            ),
            phase="placement",
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "pass": self.pass_name,
            "scope": self.scope,
            "entry_id": self.entry_id,
            "entry_label": self.entry_label,
            "error_type": self.error_type,
            "error": self.error,
            "fallback": self.fallback,
        }
