"""Combining compatibility and message-volume estimation (paper §4.7).

Two communications may be combined into one message only when the startup
of all but one can actually be eliminated:

1. their sender→receiver mappings are identical (checked in physical
   processor space — :func:`repro.comm.patterns.mappings_combinable`);
2. the combined transmitted volume stays below a threshold derived from
   the machine's Figure 5 knee (~18 KB on the SP2 preset; the paper reads
   ~20 KB off the measured curve) — beyond it, packing costs eat the
   startup savings.  The predicate stays parameterized on the byte count;
   callers obtain it from ``AnalysisContext.cost_model.threshold_bytes()``
   (see :mod:`repro.cost.model`), the single owner of that decision;
3. the single section descriptor approximating ``D1 ∪ D2`` does not exceed
   ``|D1| + |D2|`` by more than a small constant (array sections are not
   closed under union); for different arrays the union descriptor holds
   identical sections of each array.
"""

from __future__ import annotations

import math

from ..frontend.analysis import ProgramInfo
from ..sections.symbolic import SymSection
from .entries import CommEntry
from .patterns import (
    AllGatherMapping,
    ReductionMapping,
    ShiftMapping,
    mappings_combinable,
)


def message_volume(
    info: ProgramInfo,
    entry: CommEntry,
    section: SymSection,
    ranges: dict[str, tuple[int, int]],
) -> int:
    """Estimated bytes *transmitted per processor* for one execution of the
    communication.

    For shifts, only the halo slab moves: the shifted dimensions contribute
    their offset width, unshifted distributed dimensions contribute the
    per-processor share of the section, collapsed dimensions their full
    count.  Reductions move the result slab; allgathers the whole section.
    """
    layout = info.layout(entry.array)
    counts = [d.max_count(ranges) for d in section.dims]
    elem = layout.elem_bytes
    pattern = entry.pattern
    mapping = pattern.mapping

    if isinstance(mapping, ShiftMapping):
        shifted = dict(pattern.elem_shifts)
        vol = 1
        for dim, count in enumerate(counts):
            if dim in shifted:
                vol *= min(abs(shifted[dim]), max(count, 1))
            elif layout.dims[dim].is_distributed:
                vol *= max(1, -(-count // layout.procs_along(dim)))
            else:
                vol *= max(count, 1)
        return vol * elem

    if isinstance(mapping, ReductionMapping):
        # The combine phase moves the result: the non-reduced dimensions.
        from ..frontend import ast_nodes as ast

        ref = entry.use.ref
        assert isinstance(ref, ast.ArrayRef)
        vol = 1
        for dim, sub in enumerate(ref.subscripts):
            if isinstance(sub, ast.Triplet):
                continue  # reduced away
            if layout.dims[dim].is_distributed:
                vol *= max(1, -(-counts[dim] // layout.procs_along(dim)))
            else:
                vol *= max(counts[dim], 1)
        return vol * elem

    if isinstance(mapping, AllGatherMapping):
        return max(1, math.prod(max(c, 1) for c in counts)) * elem

    # General: per-processor share of the section.
    total = math.prod(max(c, 1) for c in counts) * elem
    procs = layout.grid.size
    return max(elem, total // max(procs, 1))


def sections_combinable(
    a: SymSection,
    b: SymSection,
    count_a: int,
    count_b: int,
    slack: float,
    const: int,
) -> bool:
    """§4.7's union-descriptor growth constraint."""
    if a.array == b.array:
        hull = a.hull(b)
        if hull is None:
            return False
        ranges: dict[str, tuple[int, int]] = {}
        # Hull bounds share the sections' live symbols; a constant-span
        # comparison is enough, so evaluate counts with degenerate ranges
        # where needed by treating the hull span per dimension.
        hull_count = 1
        for dim in hull.dims:
            c = dim.count_const()
            if c is None:
                return False
            hull_count *= max(c, 1)
        return hull_count <= (count_a + count_b) * (1 + slack) + const
    # Different arrays: the combined descriptor carries one section applied
    # to both arrays; require conformable shapes so the single descriptor
    # covers each without blow-up.
    if a.same_shape(b):
        return True
    # Conformable after a constant offset is also fine if spans match; the
    # same_shape check already compares spans, so fall back to a hull-style
    # count comparison on spans.
    return False


def entries_combinable(
    info: ProgramInfo,
    a: CommEntry,
    b: CommEntry,
    section_a: SymSection,
    section_b: SymSection,
    ranges: dict[str, tuple[int, int]],
    threshold_bytes: int,
    slack: float = 0.25,
    const: int = 64,
) -> bool:
    """Full §4.7 compatibility test for two entries at a shared position."""
    if not mappings_combinable(a.pattern.mapping, b.pattern.mapping):
        return False
    vol_a = message_volume(info, a, section_a, ranges)
    vol_b = message_volume(info, b, section_b, ranges)
    if vol_a + vol_b > threshold_bytes:
        return False
    if a.is_reduction and b.is_reduction:
        # Combined reductions concatenate their (small) result slabs into
        # one message; the union-descriptor rule governs *transmitted
        # sections* and does not apply (paper §6.2: reductions placed at
        # the same point are combined).
        return True
    count_a = section_a.max_count(ranges)
    count_b = section_b.max_count(ranges)
    return sections_combinable(section_a, section_b, count_a, count_b, slack, const)
