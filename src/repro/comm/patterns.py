"""Communication pattern classification.

For every SSA use of a distributed array, decide — under the owner-computes
rule — what communication shape fetching the remote data has:

* **SHIFT / NNC** — the reference is a constant element offset from the
  statement's owner along distributed dimensions (nearest-neighbour when
  the offset stays within one block);
* **REDUCTION** — the use is the argument of a reduction intrinsic; the
  communication is the inverted pattern the paper describes in §6.2
  (compute partial results locally, then combine across the grid axes the
  reduced dimensions span);
* **ALLGATHER** — a replicated left-hand side (or scalar) reads distributed
  data: every processor needs the section;
* **GENERAL** — anything else (transposes, mismatched grids/layouts).

Mappings are canonicalized to *physical processor space* (the paper's
extension for NNC equality in §4.7): a shift of 1 element and a shift of 3
elements with block size ≥ 3 are the same neighbour mapping; their data
sections differ and the section machinery accounts for that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Union

from ..affine import NonAffineError
from ..distribution.layout import DistFormat, Layout
from ..frontend import ast_nodes as ast
from ..frontend.analysis import ProgramInfo
from ..ir.ssa import Use

GridKey = tuple[str, tuple[int, ...]]


def _grid_key(layout: Layout) -> GridKey:
    return (layout.grid.name, layout.grid.shape)


@dataclass(frozen=True, slots=True)
class ShiftMapping:
    """Processor-space shift: ``proc_shifts[axis]`` processors along each
    grid axis (0 = no movement along that axis)."""

    grid: GridKey
    proc_shifts: tuple[int, ...]
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.grid, self.proc_shifts)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_nnc(self) -> bool:
        return all(abs(s) <= 1 for s in self.proc_shifts)

    @property
    def partners(self) -> int:
        """Distinct processors each processor receives from."""
        return 1 if any(self.proc_shifts) else 0

    def __str__(self) -> str:
        arrows = ",".join(f"{s:+d}" for s in self.proc_shifts)
        return f"shift({arrows})"


@dataclass(frozen=True, slots=True)
class ReductionMapping:
    """Combine partial results across ``axes`` of the grid with ``op``."""

    grid: GridKey
    axes: tuple[int, ...]
    op: str
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.grid, self.axes, self.op)))

    def __hash__(self) -> int:
        return self._hash

    def procs_combined(self) -> int:
        shape = self.grid[1]
        return math.prod(shape[a] for a in self.axes)

    def __str__(self) -> str:
        return f"reduce[{self.op}](axes={list(self.axes)})"


@dataclass(frozen=True, slots=True)
class AllGatherMapping:
    """Every processor receives the section (replicated consumer)."""

    grid: GridKey
    axes: tuple[int, ...]
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.grid, self.axes)))

    def __hash__(self) -> int:
        return self._hash

    def procs_combined(self) -> int:
        shape = self.grid[1]
        return math.prod(shape[a] for a in self.axes)

    def __str__(self) -> str:
        return f"allgather(axes={list(self.axes)})"


@dataclass(frozen=True, slots=True)
class GeneralMapping:
    """Catch-all many-to-many mapping, keyed by a structural signature so
    identical general communications can still combine."""

    grid: GridKey
    signature: str
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.grid, self.signature)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"general({self.signature})"


Mapping = Union[ShiftMapping, ReductionMapping, AllGatherMapping, GeneralMapping]


def mappings_combinable(a: Mapping, b: Mapping) -> bool:
    """The paper's compatibility criterion: identical sender-receiver
    relations (or one a subset of the other).  With processor-space
    canonical forms, that reduces to equality.  Mappings are interned by
    the classifier, so the identity fast path usually decides."""
    return a is b or a == b


def mapping_subsumes(a: Mapping, b: Mapping) -> bool:
    """May a communication with mapping ``a`` satisfy one with mapping
    ``b`` (given the data sections subsume)?  ``M1(D1) ⊆ M2(D1)`` in the
    paper; equality after canonicalization."""
    return a is b or a == b


@dataclass(frozen=True, slots=True)
class CommPattern:
    """The classified communication requirement of one use."""

    kind: str  # 'shift' | 'reduction' | 'allgather' | 'general'
    mapping: Mapping
    # For shifts: per-array-dimension element offsets (dim -> delta).
    elem_shifts: tuple[tuple[int, int], ...] = ()
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.kind, self.mapping, self.elem_shifts))
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_reduction(self) -> bool:
        return self.kind == "reduction"

    def __str__(self) -> str:
        return f"{self.kind}:{self.mapping}"


class PatternClassifier:
    """Classifies uses of distributed arrays into communication patterns.

    Patterns (and the mappings inside them) are hash-consed through a
    per-classifier intern pool: value-equal patterns are returned as the
    *same* object, so the equality tests in ``mappings_combinable`` /
    ``mapping_subsumes`` almost always decide via the identity fast path.
    """

    def __init__(self, info: ProgramInfo) -> None:
        self.info = info
        self._pattern_pool: dict[CommPattern, CommPattern] = {}
        self._mapping_pool: dict[Mapping, Mapping] = {}

    def _intern(self, pattern: Optional[CommPattern]) -> Optional[CommPattern]:
        if pattern is None:
            return None
        mapping = self._mapping_pool.setdefault(pattern.mapping, pattern.mapping)
        if mapping is not pattern.mapping:
            pattern = CommPattern(pattern.kind, mapping, pattern.elem_shifts)
        return self._pattern_pool.setdefault(pattern, pattern)

    def classify(self, use: Use) -> Optional[CommPattern]:
        """Return the pattern for ``use``, or None when no communication is
        required (local or replicated data)."""
        ref = use.ref
        if not isinstance(ref, ast.ArrayRef):
            return None  # scalar reads are replicated
        layout = self.info.layout(ref.name)
        if not layout.distributed_dims:
            return None  # replicated array: every processor has it

        if use.in_reduction:
            return self._intern(self._classify_reduction(ref, layout, use))
        return self._intern(self._classify_elementwise(use.stmt, ref, layout))

    # -- reductions ----------------------------------------------------------

    def _classify_reduction(
        self, ref: ast.ArrayRef, layout: Layout, use: Use
    ) -> Optional[CommPattern]:
        op = self._reduction_op(use.stmt, ref)
        axes = sorted(
            layout.dims[dim].grid_axis
            for dim, sub in enumerate(ref.subscripts)
            if isinstance(sub, ast.Triplet) and layout.dims[dim].is_distributed
        )
        if not axes:
            return None  # reduced dims all local: partial sums need no comm
        mapping = ReductionMapping(_grid_key(layout), tuple(axes), op)
        return CommPattern("reduction", mapping)

    def _reduction_op(self, stmt: ast.Assign, ref: ast.ArrayRef) -> str:
        for node in ast.walk_expr(stmt.rhs):
            if isinstance(node, ast.Reduction) and node.arg is ref:
                return node.op
        return "SUM"

    # -- element-wise references ------------------------------------------------

    def _classify_elementwise(
        self, stmt: ast.Assign, ref: ast.ArrayRef, layout: Layout
    ) -> Optional[CommPattern]:
        lhs = stmt.lhs
        grid_key = _grid_key(layout)

        if isinstance(lhs, ast.VarRef):
            lhs_layout = None
        else:
            lhs_layout = self.info.layout(lhs.name)
            if not lhs_layout.distributed_dims:
                lhs_layout = None

        if lhs_layout is None:
            # Replicated consumer: everyone needs the section.
            axes = tuple(
                sorted(
                    layout.dims[d].grid_axis for d in layout.distributed_dims
                )
            )
            return CommPattern("allgather", AllGatherMapping(grid_key, axes))

        if lhs_layout.grid != layout.grid:
            return CommPattern(
                "general",
                GeneralMapping(grid_key, f"xgrid:{lhs_layout.grid.name}"),
            )

        proc_shifts = [0] * len(layout.grid.shape)
        elem_shifts: list[tuple[int, int]] = []
        for dim in layout.distributed_dims:
            axis = layout.dims[dim].grid_axis
            assert axis is not None
            lhs_dim = self._dim_on_axis(lhs_layout, axis)
            if lhs_dim is None:
                return CommPattern(
                    "general", GeneralMapping(grid_key, f"axis{axis}:unmatched")
                )
            if (
                lhs_layout.dims[lhs_dim].format != layout.dims[dim].format
                or lhs_layout.dims[lhs_dim].extent != layout.dims[dim].extent
            ):
                return CommPattern(
                    "general", GeneralMapping(grid_key, f"axis{axis}:layout")
                )
            delta = self._subscript_delta(
                ref.subscripts[dim], lhs.subscripts[lhs_dim]
            )
            if delta is None:
                # The paper's special case (§4.7): a *constant* source
                # position — every consumer fetches from the fixed owner of
                # that coordinate.  Canonicalizing the mapping by the owner
                # coordinate lets identical constant-source communications
                # combine (pHPF's physical-space equality extension).
                const_coord = self._constant_source(ref.subscripts[dim], layout, dim)
                if const_coord is not None:
                    return CommPattern(
                        "general",
                        GeneralMapping(
                            grid_key, f"const-src:axis{axis}@{const_coord}"
                        ),
                    )
                return CommPattern(
                    "general", GeneralMapping(grid_key, f"axis{axis}:nonconst")
                )
            if delta == 0:
                continue
            if layout.procs_along(dim) == 1:
                continue  # a single processor on this axis: always local
            fmt = layout.dims[dim].format
            if fmt is DistFormat.BLOCK:
                block = layout.block_size(dim)
                hops = -(-abs(delta) // block)  # ceil
                proc_shifts[axis] = hops if delta > 0 else -hops
            else:  # CYCLIC: any nonzero element shift moves |delta| procs
                procs = layout.procs_along(dim)
                proc_shifts[axis] = delta % procs if delta > 0 else -((-delta) % procs)
            elem_shifts.append((dim, delta))

        if not any(proc_shifts):
            return None  # perfectly aligned: all accesses local

        mapping = ShiftMapping(grid_key, tuple(proc_shifts))
        return CommPattern("shift", mapping, tuple(elem_shifts))

    @staticmethod
    def _dim_on_axis(layout: Layout, axis: int) -> Optional[int]:
        for dim, m in enumerate(layout.dims):
            if m.grid_axis == axis:
                return dim
        return None

    def _constant_source(
        self, sub: ast.Subscript, layout: Layout, dim: int
    ) -> Optional[int]:
        """Owner grid coordinate when the subscript is a compile-time
        constant index on a distributed dimension, else None."""
        if not isinstance(sub, ast.Index):
            return None
        try:
            form = self.info.affine(sub.expr)
        except NonAffineError:
            return None
        if not form.is_constant:
            return None
        if not 1 <= form.const <= layout.dims[dim].extent:
            return None
        return layout.owner_coord(dim, form.const)

    def _subscript_delta(
        self, rhs_sub: ast.Subscript, lhs_sub: ast.Subscript
    ) -> Optional[int]:
        """rhs - lhs subscript difference when it is a compile-time
        constant (after parameter folding), else None."""
        if not (isinstance(rhs_sub, ast.Index) and isinstance(lhs_sub, ast.Index)):
            return None
        try:
            diff = self.info.affine(rhs_sub.expr) - self.info.affine(lhs_sub.expr)
        except NonAffineError:
            return None
        if diff.is_constant:
            return diff.const
        return None
