"""Communication entries and placement-dependent section computation.

A :class:`CommEntry` is the unit the placement algorithm moves around: one
use of a distributed array that requires communication, together with its
pattern, its legal placement range (``earliest``/``latest``/candidates,
filled in by :mod:`repro.core`), and a way to compute the data section *as
a function of the placement point* (hoisting out of a loop widens the
section over that loop's range — message vectorization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..affine import Affine, NonAffineError
from ..errors import PlacementError
from ..frontend import ast_nodes as ast
from ..frontend.analysis import ProgramInfo
from ..ir.cfg import CFG, Loop, Node, Position
from ..ir.ssa import Use
from ..perf.stats import CacheStats
from ..sections.symbolic import SymDim, SymSection
from .patterns import CommPattern


class SectionBuilder:
    """Computes the symbolic data section a use needs when its
    communication is placed at a given CFG node.

    Sections are hash-consed: value-equal results share one object via the
    intern pool, and the per-(use, node) memo cache makes repeated queries
    from the redundancy/combining passes O(1).  Both caches can be
    disabled (``cache_enabled=False``) for the ablation/equivalence suite;
    results are byte-identical either way.
    """

    def __init__(
        self,
        info: ProgramInfo,
        cfg: CFG,
        cache_enabled: bool = True,
        stats: "CacheStats | None" = None,
    ) -> None:
        self.info = info
        self.cfg = cfg
        self.cache_enabled = cache_enabled
        self.stats = stats
        self._cache: dict[tuple[int, int, int], SymSection] = {}
        self._section_pool: dict[SymSection, SymSection] = {}
        self._ranges_cache: dict[int, dict[str, tuple[int, int]]] = {}

    # -- loop range helpers ------------------------------------------------------

    def loop_ranges(self, loops: list[Loop]) -> dict[str, tuple[int, int]]:
        """Concrete [min, max] value ranges for a chain of loops
        (outermost first), widening symbolic bounds via intervals."""
        ranges: dict[str, tuple[int, int]] = {}
        for loop in loops:
            lo = self.info.affine(loop.stmt.lo)
            hi = self.info.affine(loop.stmt.hi)
            try:
                lo_min, _ = lo.interval(ranges)
                _, hi_max = hi.interval(ranges)
            except NonAffineError as exc:
                raise PlacementError(
                    f"loop {loop.var!r} bounds not resolvable: {exc}"
                ) from None
            ranges[loop.var] = (lo_min, max(lo_min, hi_max))
        return ranges

    def _loop_widen_params(
        self, loop: Loop, outer_ranges: dict[str, tuple[int, int]]
    ) -> tuple[Affine, int, int, bool]:
        """(lo, step, trips, exact) widening data for one loop."""
        lo = self.info.affine(loop.stmt.lo)
        hi = self.info.affine(loop.stmt.hi)
        step_form = self.info.affine(loop.stmt.step)
        if not step_form.is_constant or step_form.const < 1:
            raise PlacementError(f"loop {loop.var!r} step must be positive constant")
        step = step_form.const
        diff = hi - lo
        if diff.is_constant:
            return lo, step, max(0, diff.const // step), True
        lo_min, _ = lo.interval(outer_ranges)
        _, hi_max = hi.interval(outer_ranges)
        return lo, step, max(0, (hi_max - lo_min) // step), False

    # -- section computation ----------------------------------------------------

    def section_at(self, use: Use, placement: Node) -> SymSection:
        """The section ``use`` reads, widened over every loop that contains
        the use but not the placement node."""
        if not self.cache_enabled:
            return self._build(use, placement)
        key = (use.stmt.sid, id(use.ref), placement.id)
        cached = self._cache.get(key)
        if cached is not None:
            if self.stats is not None:
                self.stats.hits += 1
            return cached
        if self.stats is not None:
            self.stats.misses += 1
        section = self._build(use, placement)
        # Hash-consing: placements widening to the same footprint share one
        # descriptor, so downstream equality checks hit the identity path.
        section = self._section_pool.setdefault(section, section)
        self._cache[key] = section
        return section

    def _build(self, use: Use, placement: Node) -> SymSection:
        ref = use.ref
        assert isinstance(ref, ast.ArrayRef)
        use_loops = use.node.loops_containing()
        placement_loops = set(id(l) for l in placement.loops_containing())
        widen = [l for l in use_loops if id(l) not in placement_loops]

        # Start from the raw subscript forms.
        dims: list[SymDim] = []
        shape = self.info.shape(ref.name)
        for dim, sub in enumerate(ref.subscripts):
            if isinstance(sub, ast.Index):
                try:
                    dims.append(SymDim.point(self.info.affine(sub.expr)))
                except NonAffineError:
                    # Unknown subscript: whole dimension, inexact.
                    dims.append(
                        SymDim(
                            Affine.constant(1),
                            Affine.constant(shape[dim]),
                            1,
                            exact=False,
                        )
                    )
            else:
                lo = (
                    Affine.constant(1)
                    if sub.lo is None
                    else self.info.affine(sub.lo)
                )
                hi = (
                    Affine.constant(shape[dim])
                    if sub.hi is None
                    else self.info.affine(sub.hi)
                )
                step_form = (
                    Affine.constant(1)
                    if sub.step is None
                    else self.info.affine(sub.step)
                )
                step = step_form.const if step_form.is_constant else 1
                dims.append(SymDim(lo, hi, max(1, step), exact=step_form.is_constant))

        # Widen innermost-first so triangular inner bounds (which mention
        # outer variables) are substituted before the outer loop is widened.
        outer_ranges = self.loop_ranges(use_loops)
        for loop in reversed(widen):
            lo, step, trips, exact = self._loop_widen_params(loop, outer_ranges)
            dims = [d.widen(loop.var, lo, step, trips, exact) for d in dims]

        return SymSection(ref.name, tuple(dims))

    def live_ranges_at(self, node: Node) -> dict[str, tuple[int, int]]:
        """Value ranges of loop variables live at ``node`` (memoized per
        node — the greedy pass asks for the same node's ranges once per
        entry pair)."""
        if not self.cache_enabled:
            return self.loop_ranges(node.loops_containing())
        ranges = self._ranges_cache.get(node.id)
        if ranges is None:
            ranges = self.loop_ranges(node.loops_containing())
            self._ranges_cache[node.id] = ranges
        return ranges


_entry_counter = 0


@dataclass(eq=False, slots=True)
class CommEntry:
    """One communication requirement, tracked through placement.

    ``candidates`` is filled by candidate marking (paper §4.4) and is a
    dominator-ordered chain of positions: ``candidates[0]`` is the
    earliest, ``candidates[-1]`` the latest.  ``absorbed`` accumulates
    entries this one subsumed during global redundancy elimination — the
    final group placement must stay within their constraint sets too.
    """

    use: Use
    pattern: CommPattern
    earliest_pos: Optional[Position] = None
    latest_pos: Optional[Position] = None
    comm_level: int = -1
    candidates: list[Position] = field(default_factory=list)
    absorbed: list["CommEntry"] = field(default_factory=list)
    eliminated_by: Optional["CommEntry"] = None
    id: int = -1
    label: str = ""
    _candidate_set: Optional[frozenset[Position]] = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        global _entry_counter
        if self.id < 0:
            self.id = _entry_counter
            _entry_counter += 1
        if not self.label:
            self.label = f"{self.use.var}@s{self.use.stmt.sid}"

    @property
    def array(self) -> str:
        return self.use.var

    @property
    def is_reduction(self) -> bool:
        return self.pattern.is_reduction

    @property
    def alive(self) -> bool:
        return self.eliminated_by is None

    def candidate_set(self) -> frozenset[Position]:
        """The candidate chain as a set, memoized — candidate marking
        invalidates it when (re)assigning the chain."""
        cached = self._candidate_set
        if cached is None or len(cached) != len(self.candidates):
            cached = self._candidate_set = frozenset(self.candidates)
        return cached

    def __repr__(self) -> str:
        return f"<comm {self.id} {self.label} {self.pattern}>"
