"""Communication representation: patterns, entries, combining rules."""

from .compatibility import entries_combinable, message_volume, sections_combinable
from .entries import CommEntry, SectionBuilder
from .patterns import (
    AllGatherMapping,
    CommPattern,
    GeneralMapping,
    PatternClassifier,
    ReductionMapping,
    ShiftMapping,
    mapping_subsumes,
    mappings_combinable,
)

__all__ = [
    "AllGatherMapping",
    "CommEntry",
    "CommPattern",
    "GeneralMapping",
    "PatternClassifier",
    "ReductionMapping",
    "SectionBuilder",
    "ShiftMapping",
    "entries_combinable",
    "mapping_subsumes",
    "mappings_combinable",
    "message_volume",
    "sections_combinable",
]
