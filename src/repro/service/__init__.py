"""Asyncio compile service.

A long-running HTTP/JSON-RPC server around
:func:`repro.core.pipeline.compile_program`: clients POST mini-HPF
sources and get back schedules, diagnostics, and pass traces, with the
expensive global analysis amortized **across requests** by the shared
two-tier :class:`repro.perf.cache.ScheduleCache` and by in-flight
request coalescing.  See ``docs/PERFORMANCE.md`` ("Compile service").

Layers, innermost first:

* :mod:`repro.service.payload` — the deterministic response payload for
  one compile (what the cache stores and the load harness verifies
  bitwise against a direct :func:`compile_program` call);
* :mod:`repro.service.quota` — per-tenant token buckets;
* :mod:`repro.service.app` — :class:`CompileService`: cache lookup,
  coalescing, the bounded process pool with the batch driver's
  :class:`~repro.perf.batch.RetryPolicy`, quotas, and backpressure;
* :mod:`repro.service.server` — the asyncio HTTP/1.1 + JSON-RPC front
  end (pipelined keep-alive connections, NDJSON access log) behind
  ``python -m repro serve``.
"""

from .app import CompileService, ServiceStats, parse_request
from .payload import compile_payload, schedule_payload
from .quota import QuotaRegistry, TokenBucket
from .server import CompileServer

__all__ = [
    "CompileServer",
    "CompileService",
    "QuotaRegistry",
    "ServiceStats",
    "TokenBucket",
    "compile_payload",
    "parse_request",
    "schedule_payload",
]
