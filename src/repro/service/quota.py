"""Per-tenant token-bucket quotas.

One :class:`TokenBucket` per tenant, refilled continuously at ``rate``
tokens/second up to ``burst``.  ``acquire`` is non-blocking: it either
grants (returns 0.0) or returns the seconds until the next token — the
server turns that into ``429 Too Many Requests`` with a ``Retry-After``
header, so one client can saturate at most its own bucket, never the
compile pool.

The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class TokenBucket:
    """A standard token bucket; thread-safe, monotonic-clock based."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens: 0.0 when granted, else seconds until the
        deficit refills (the request is NOT queued)."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= n:
                self._tokens -= n
                return 0.0
            return (n - self._tokens) / self.rate


class QuotaRegistry:
    """Buckets by tenant name.

    ``rate``/``burst`` are the default per-tenant quota (``rate=None``
    means unlimited — every tenant is granted unless it has an explicit
    override in ``tenants``).  Buckets are created lazily on first use,
    one per tenant, so tenants never share tokens.
    """

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: float = 1.0,
        tenants: "dict[str, tuple[float, float]] | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self._overrides = dict(tenants or {})
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def acquire(self, tenant: str) -> float:
        """0.0 when granted; else the tenant's Retry-After seconds."""
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                if tenant in self._overrides:
                    rate, burst = self._overrides[tenant]
                elif self.rate is not None:
                    rate, burst = self.rate, self.burst
                else:
                    return 0.0  # unlimited tenant: no bucket at all
                bucket = TokenBucket(rate, burst, clock=self._clock)
                self._buckets[tenant] = bucket
        return bucket.acquire()
