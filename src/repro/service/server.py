"""Asyncio HTTP/1.1 + JSON-RPC front end for the compile service.

Stdlib-only (``asyncio.start_server``): the container bakes no HTTP
framework, and the protocol surface is small.  Endpoints:

* ``POST /v1/compile`` — body is the JSON compile request (``source``,
  ``params``, ``strategy``, ``options``, ``tenant``, ``diagnostics``,
  ``trace``, ``id``); answers the service verdict (200 schedule, 422
  program error, 429 quota/backpressure with ``Retry-After``, 503
  quarantined, 500 internal);
* ``POST /rpc`` — JSON-RPC 2.0 (methods ``compile``, ``stats``,
  ``ping``), same verdict carried inside ``result.status``;
* ``GET /v1/stats`` — service + cache + server counters;
* ``GET /healthz`` — liveness.

Connections are keep-alive and **pipelined**: a reader task parses
requests as fast as they arrive and spawns one handler task each, while
a writer task streams the responses back in request order — so a single
connection can have many compiles in flight (the load harness uses this
to hold 1000+ concurrent requests on a bounded socket count).

Every completed request appends one JSON object to the NDJSON **access
log** (stdout under ``python -m repro serve``): method, path, status,
cache tier, coalesced flag, tenant, wall — a long-running server is
observable line by line, not via an end-of-run document.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from datetime import datetime, timezone
from typing import Any, Optional, TextIO

from .app import CompileService, RequestError, parse_request

MAX_BODY_BYTES = 8 * 1024 * 1024
MAX_HEAD_BYTES = 64 * 1024

REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _error_body(code: str, message: str) -> bytes:
    return json.dumps(
        {"ok": False, "error": {"code": code, "message": message}}
    ).encode()


class CompileServer:
    """One listening socket in front of a :class:`CompileService`."""

    def __init__(
        self,
        service: CompileService,
        host: str = "127.0.0.1",
        port: int = 0,
        access_log: Optional[TextIO] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.access_log = access_log
        self.requests_total = 0
        self.inflight = 0
        self.inflight_high_water = 0
        self.connections = 0
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: "set[asyncio.Task]" = set()

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port,
            limit=MAX_HEAD_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        await self.service.close()

    # -- connection handling --------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        queue: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.ensure_future(self._write_loop(queue, writer))
        cancelled = False
        try:
            await self._read_loop(reader, queue)
        except asyncio.CancelledError:
            cancelled = True  # server shutdown: swallow, close below
        finally:
            if cancelled:
                writer_task.cancel()
            else:
                queue.put_nowait(None)
            try:
                await writer_task
            except (asyncio.CancelledError, ConnectionError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass  # a cancel landing here must not mark the task
                # cancelled: asyncio's streams callback would log it
            self.connections -= 1
            if task is not None:
                self._conn_tasks.discard(task)

    async def _read_loop(
        self, reader: asyncio.StreamReader, queue: asyncio.Queue
    ) -> None:
        """Parse pipelined requests eagerly, one handler task each."""
        while True:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    ConnectionError):
                return
            try:
                method, target, headers = self._parse_head(head)
            except ValueError:
                await queue.put(self._static_response(
                    400, _error_body("bad_request", "malformed request"),
                    close=True, meta={"method": "?", "path": "?"},
                ))
                return
            length = headers.get("content-length", "0")
            try:
                length = int(length)
            except ValueError:
                length = -1
            if length < 0 or length > MAX_BODY_BYTES:
                await queue.put(self._static_response(
                    413, _error_body("too_large", "body too large"),
                    close=True,
                    meta={"method": method, "path": target},
                ))
                return
            try:
                body = await reader.readexactly(length) if length else b""
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            close = headers.get("connection", "").lower() == "close"
            self.requests_total += 1
            self.inflight += 1
            self.inflight_high_water = max(
                self.inflight_high_water, self.inflight
            )
            task = asyncio.ensure_future(
                self._dispatch(method, target, headers, body, close)
            )
            await queue.put(task)
            if close:
                return

    async def _write_loop(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        """Stream responses back in request order; a slow handler only
        delays its own and later responses on this connection."""
        dead = False
        while True:
            item = await queue.get()
            if item is None:
                return
            if isinstance(item, tuple):  # pre-rendered (parse errors)
                status, payload, headers, close, meta = item
            else:
                try:
                    status, payload, headers, close, meta = await item
                finally:
                    self.inflight -= 1
            if dead:
                continue  # peer gone: still retire the remaining tasks
            head = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
                    "Content-Type: application/json",
                    f"Content-Length: {len(payload)}",
                    f"Connection: {'close' if close else 'keep-alive'}"]
            head.extend(f"{k}: {v}" for k, v in headers.items())
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                dead = True
                continue
            self._log(status, len(payload), meta)

    @staticmethod
    def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
        text = head.decode("latin-1")
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ValueError(f"bad request line {lines[0]!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"bad header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        return parts[0].upper(), parts[1], headers

    def _static_response(
        self, status: int, payload: bytes, close: bool, meta: dict[str, Any]
    ) -> tuple:
        self.requests_total += 1
        self.service.stats.count(status)
        return (status, payload, {}, close, meta)

    # -- routing --------------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, headers: dict[str, str],
        body: bytes, close: bool,
    ) -> tuple:
        t0 = time.perf_counter()
        meta: dict[str, Any] = {"method": method, "path": target}
        try:
            status, payload, extra = await self._route(
                method, target, headers, body, meta
            )
        except RequestError as exc:
            status, payload, extra = (
                400, _error_body("bad_request", exc.message), {}
            )
            self.service.stats.count(400)
        except Exception as exc:  # noqa: BLE001 - the transport catch-all
            status, payload, extra = (
                500,
                _error_body("internal", f"{type(exc).__name__}: {exc}"),
                {},
            )
            self.service.stats.count(500)
        meta["wall_ms"] = round((time.perf_counter() - t0) * 1000, 3)
        return status, payload, extra, close, meta

    async def _route(
        self, method: str, target: str, headers: dict[str, str],
        body: bytes, meta: dict[str, Any],
    ) -> tuple[int, bytes, dict[str, str]]:
        path = target.split("?", 1)[0]
        if path == "/v1/compile":
            if method != "POST":
                self.service.stats.count(405)
                return 405, _error_body("method", "POST required"), {}
            return await self._compile_http(headers, body, meta)
        if path == "/rpc":
            if method != "POST":
                self.service.stats.count(405)
                return 405, _error_body("method", "POST required"), {}
            return await self._rpc(headers, body, meta)
        if path == "/v1/stats":
            self.service.stats.count(200)
            return 200, json.dumps(self.stats_payload()).encode(), {}
        if path == "/healthz":
            self.service.stats.count(200)
            return 200, b'{"ok": true}', {}
        self.service.stats.count(404)
        return 404, _error_body("not_found", f"no route {path!r}"), {}

    def _decode(self, body: bytes) -> Any:
        try:
            return json.loads(body)
        except ValueError:
            raise RequestError("body is not valid JSON") from None

    async def _compile_http(
        self, headers: dict[str, str], body: bytes, meta: dict[str, Any]
    ) -> tuple[int, bytes, dict[str, str]]:
        obj = self._decode(body)
        if isinstance(obj, dict) and "tenant" not in obj:
            tenant = headers.get("x-tenant")
            if tenant:
                obj = {**obj, "tenant": tenant}
        req = parse_request(obj)
        response = await self.service.handle_compile(req)
        meta.update(
            tenant=req.tenant,
            key=response.body.get("key"),
            cache=response.body.get("cache"),
            coalesced=response.body.get("coalesced"),
        )
        return (
            response.status,
            json.dumps(response.body).encode(),
            response.headers,
        )

    async def _rpc(
        self, headers: dict[str, str], body: bytes, meta: dict[str, Any]
    ) -> tuple[int, bytes, dict[str, str]]:
        obj = self._decode(body)
        rid = obj.get("id") if isinstance(obj, dict) else None

        def rpc_error(code: int, message: str) -> tuple:
            self.service.stats.count(200)
            return 200, json.dumps({
                "jsonrpc": "2.0",
                "error": {"code": code, "message": message},
                "id": rid,
            }).encode(), {}

        if not isinstance(obj, dict) or obj.get("jsonrpc") != "2.0":
            return rpc_error(-32600, "not a JSON-RPC 2.0 request")
        method = obj.get("method")
        params = obj.get("params") or {}
        if method == "ping":
            self.service.stats.count(200)
            result: Any = "pong"
        elif method == "stats":
            self.service.stats.count(200)
            result = self.stats_payload()
        elif method == "compile":
            if not isinstance(params, dict):
                return rpc_error(-32602, "params must be an object")
            if isinstance(headers.get("x-tenant"), str) and "tenant" not in params:
                params = {**params, "tenant": headers["x-tenant"]}
            try:
                req = parse_request(params)
            except RequestError as exc:
                return rpc_error(-32602, exc.message)
            response = await self.service.handle_compile(req)
            meta.update(
                tenant=req.tenant,
                key=response.body.get("key"),
                cache=response.body.get("cache"),
                coalesced=response.body.get("coalesced"),
            )
            result = response.body
        else:
            return rpc_error(-32601, f"unknown method {method!r}")
        return 200, json.dumps(
            {"jsonrpc": "2.0", "result": result, "id": rid}
        ).encode(), {}

    # -- observability --------------------------------------------------------

    def stats_payload(self) -> dict[str, Any]:
        payload = self.service.stats_payload()
        payload["server"] = {
            "requests_total": self.requests_total,
            "inflight": self.inflight,
            "inflight_high_water": self.inflight_high_water,
            "connections": self.connections,
        }
        return payload

    def _log(self, status: int, size: int, meta: dict[str, Any]) -> None:
        if self.access_log is None:
            return
        record = {
            "ts": datetime.now(timezone.utc).isoformat(timespec="milliseconds"),
            "status": status,
            "bytes": size,
            **meta,
        }
        try:
            self.access_log.write(json.dumps(record) + "\n")
            self.access_log.flush()
        except (OSError, ValueError):
            self.access_log = None  # a dead log never kills the server


# -- CLI entry (python -m repro serve) ---------------------------------------


def run_server(args: Any) -> int:
    """Build the service from CLI args and serve until SIGINT/SIGTERM."""
    import signal

    from ..perf.batch import RetryPolicy
    from ..perf.cache import ScheduleCache
    from .quota import QuotaRegistry

    cache = ScheduleCache(
        memory_budget_bytes=args.memory_budget,
        cache_dir=args.cache_dir,
    )
    quotas = None
    if args.quota_rate is not None:
        quotas = QuotaRegistry(rate=args.quota_rate, burst=args.quota_burst)
    service = CompileService(
        cache=cache,
        workers=args.workers,
        policy=RetryPolicy(
            timeout=args.timeout,
            max_retries=args.retries,
            quarantine_after=args.quarantine_after,
        ),
        quotas=quotas,
        max_pending=args.max_pending,
    )
    if args.access_log == "-":
        log: Optional[TextIO] = sys.stdout
        log_close = False
    elif args.access_log in (None, "none"):
        log, log_close = None, False
    else:
        log, log_close = open(args.access_log, "a"), True
    server = CompileServer(
        service, host=args.host, port=args.port, access_log=log
    )

    async def _main() -> None:
        await server.start()
        print(
            f"repro compile service listening on "
            f"http://{args.host}:{server.port} "
            f"(workers={args.workers}, cache_dir={args.cache_dir})",
            file=sys.stderr,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await stop.wait()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        if log_close and log is not None:
            log.close()
    summary = service.stats_payload()
    print(
        f"served {summary['service']['requests']} compile requests "
        f"({summary['service']['compiled']} compiled, "
        f"{summary['service']['coalesced']} coalesced, "
        f"cache hit rate {summary['cache']['hit_rate']:.0%})",
        file=sys.stderr,
    )
    return 0
