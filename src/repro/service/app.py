"""The compile service core: cache, coalescing, pool, quotas.

:class:`CompileService` is transport-agnostic — the HTTP/JSON-RPC front
end in :mod:`repro.service.server` and the tests talk to
:meth:`CompileService.handle_compile` directly.  One request flows:

1. **quota** — the tenant's token bucket either grants or yields a
   ``429`` with ``Retry-After``;
2. **quarantine** — a key that repeatedly killed or timed out its
   worker is answered ``503`` immediately, never recompiled;
3. **cache** — the shared :class:`~repro.perf.cache.ScheduleCache`
   (memory LRU, then content-addressed disk);
4. **coalescing** — identical in-flight programs await one compilation
   future instead of recompiling (N concurrent identical requests cost
   exactly one compile);
5. **pool** — the compile runs in a bounded
   :class:`~concurrent.futures.ProcessPoolExecutor` under the batch
   driver's :class:`~repro.perf.batch.RetryPolicy`: per-attempt
   timeout, kill-and-rebuild of the poisoned pool, bounded retries with
   exponential backoff, then quarantine.  ``workers=0`` compiles on the
   event loop's thread executor instead (tests, tiny deployments) — no
   crash isolation, and a timed-out thread cannot be killed.

Backpressure: when more than ``max_pending`` *distinct* compilations
are in flight the service sheds new cache-missing work with ``429`` —
coalesced waiters and cache hits are always admitted.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field, fields
from typing import Any, Optional

from ..core.context import CompilerOptions
from ..core.pipeline import Strategy
from ..perf.batch import BatchJob, RetryPolicy, job_key, kill_pool
from ..perf.cache import ScheduleCache
from .payload import compile_worker, options_fields, rebuild_options
from .quota import QuotaRegistry

DEFAULT_TENANT = "anon"

#: Retry-After for quarantined keys and shed load (seconds).
QUARANTINE_RETRY_AFTER = 60
BACKPRESSURE_RETRY_AFTER = 1


class RequestError(Exception):
    """A malformed request: HTTP 400 with a one-line reason."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


@dataclass(frozen=True)
class CompileRequest:
    """One validated compile request (see :func:`parse_request`)."""

    source: str
    params: Optional[dict[str, int]] = None
    strategy: str = "comb"
    options: Optional[CompilerOptions] = None
    tenant: str = DEFAULT_TENANT
    want_diagnostics: bool = False
    want_trace: bool = False
    id: Any = None

    def key(self) -> str:
        return job_key(BatchJob(
            name="service", source=self.source, params=self.params,
            strategy=self.strategy, options=self.options,
        ))


_OPTION_FIELDS = {f.name: f for f in fields(CompilerOptions)}
_DEFAULTS = CompilerOptions()


def _parse_options(obj: Any) -> CompilerOptions:
    if not isinstance(obj, dict):
        raise RequestError("'options' must be an object")
    coerced: dict[str, Any] = {}
    for name, value in obj.items():
        f = _OPTION_FIELDS.get(name)
        if f is None:
            known = ", ".join(sorted(_OPTION_FIELDS))
            raise RequestError(f"unknown option {name!r} (known: {known})")
        default = getattr(_DEFAULTS, name)
        if isinstance(default, bool):
            if not isinstance(value, bool):
                raise RequestError(f"option {name!r} must be a boolean")
        elif isinstance(default, int):
            if not isinstance(value, int) or isinstance(value, bool):
                raise RequestError(f"option {name!r} must be an integer")
        elif isinstance(default, float):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise RequestError(f"option {name!r} must be a number")
        elif isinstance(default, str):
            if not isinstance(value, str):
                raise RequestError(f"option {name!r} must be a string")
        elif isinstance(default, tuple) or default is None:
            if value is not None:
                if not isinstance(value, list) or not all(
                    isinstance(v, str) for v in value
                ):
                    raise RequestError(
                        f"option {name!r} must be a list of strings or null"
                    )
                value = tuple(value)
        coerced[name] = value
    return CompilerOptions(**coerced)


def parse_request(obj: Any) -> CompileRequest:
    """Validate a decoded JSON body into a :class:`CompileRequest`."""
    if not isinstance(obj, dict):
        raise RequestError("request body must be a JSON object")
    source = obj.get("source")
    if not isinstance(source, str) or not source.strip():
        raise RequestError("'source' (mini-HPF program text) is required")
    params = obj.get("params")
    if params is not None:
        if not isinstance(params, dict) or not all(
            isinstance(k, str) and isinstance(v, int)
            and not isinstance(v, bool)
            for k, v in params.items()
        ):
            raise RequestError("'params' must map names to integers")
    strategy = obj.get("strategy", "comb")
    try:
        strategy = Strategy.parse(strategy).value
    except (ValueError, AttributeError, TypeError):
        raise RequestError(f"unknown strategy {strategy!r}") from None
    options = None
    if obj.get("options") is not None:
        options = _parse_options(obj["options"])
    tenant = obj.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise RequestError("'tenant' must be a non-empty string")
    for flag in ("diagnostics", "trace"):
        if not isinstance(obj.get(flag, False), bool):
            raise RequestError(f"'{flag}' must be a boolean")
    return CompileRequest(
        source=source,
        params=params,
        strategy=strategy,
        options=options,
        tenant=tenant,
        want_diagnostics=obj.get("diagnostics", False),
        want_trace=obj.get("trace", False),
        id=obj.get("id"),
    )


@dataclass
class ServiceResponse:
    """Transport-ready verdict: status + JSON body + extra headers."""

    status: int
    body: dict[str, Any]
    headers: dict[str, str] = field(default_factory=dict)


@dataclass
class ServiceStats:
    requests: int = 0
    compiled: int = 0
    coalesced: int = 0
    quota_rejected: int = 0
    backpressure_rejected: int = 0
    timeouts: int = 0
    retries: int = 0
    quarantined: int = 0
    pool_rebuilds: int = 0
    by_status: dict[int, int] = field(default_factory=dict)
    pending_high_water: int = 0

    def count(self, status: int) -> None:
        self.by_status[status] = self.by_status.get(status, 0) + 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "compiled": self.compiled,
            "coalesced": self.coalesced,
            "quota_rejected": self.quota_rejected,
            "backpressure_rejected": self.backpressure_rejected,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "pool_rebuilds": self.pool_rebuilds,
            "by_status": {str(k): v for k, v in self.by_status.items()},
            "pending_high_water": self.pending_high_water,
        }


class CompileService:
    """See the module docstring for the request flow."""

    def __init__(
        self,
        cache: ScheduleCache | None = None,
        workers: int = 2,
        policy: RetryPolicy | None = None,
        quotas: QuotaRegistry | None = None,
        max_pending: int = 1024,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        # `cache or ...` would discard an *empty* cache: ScheduleCache
        # defines __len__, so a fresh one is falsy.
        self.cache = cache if cache is not None else ScheduleCache()
        self.workers = workers
        self.policy = policy or RetryPolicy(timeout=120.0)
        self.quotas = quotas
        self.max_pending = max_pending
        self.stats = ServiceStats()
        self.quarantined: set[str] = set()
        self._pool: ProcessPoolExecutor | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._started = time.monotonic()

    # -- lifecycle ------------------------------------------------------------

    async def start(self, prewarm: bool = True) -> None:
        """Create (and optionally pre-fork) the worker pool."""
        if self.workers > 0 and self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            if prewarm:
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(self._pool, int, 0)

    async def close(self) -> None:
        for fut in list(self._inflight.values()):
            if not fut.done():
                fut.cancel()
        self._inflight.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _rebuild_pool(self) -> None:
        self.stats.pool_rebuilds += 1
        if self._pool is not None:
            kill_pool(self._pool)
            self._pool = ProcessPoolExecutor(max_workers=self.workers)

    # -- the request path -----------------------------------------------------

    async def handle_compile(self, req: CompileRequest) -> ServiceResponse:
        self.stats.requests += 1
        if self.quotas is not None:
            wait = self.quotas.acquire(req.tenant)
            if wait > 0.0:
                self.stats.quota_rejected += 1
                return self._finish(req, {
                    "ok": False,
                    "status": 429,
                    "result": None,
                    "diagnostics": [],
                    "trace": [],
                    "error": {
                        "code": "quota_exceeded",
                        "message": (
                            f"tenant {req.tenant!r} is over its compile "
                            f"quota; retry in {wait:.3f}s"
                        ),
                    },
                }, retry_after=wait)

        key = req.key()
        if key in self.quarantined:
            return self._finish(req, self._quarantined_payload(key), key=key,
                                retry_after=QUARANTINE_RETRY_AFTER)

        payload, tier = self.cache.lookup(key)
        if payload is not None:
            return self._finish(req, payload, key=key, cache=tier)

        fut = self._inflight.get(key)
        if fut is not None:
            self.stats.coalesced += 1
            payload = await asyncio.shield(fut)
            return self._finish(req, payload, key=key, coalesced=True)

        if len(self._inflight) >= self.max_pending:
            self.stats.backpressure_rejected += 1
            return self._finish(req, {
                "ok": False,
                "status": 429,
                "result": None,
                "diagnostics": [],
                "trace": [],
                "error": {
                    "code": "backpressure",
                    "message": (
                        f"{len(self._inflight)} compilations already in "
                        f"flight; retry shortly"
                    ),
                },
            }, retry_after=BACKPRESSURE_RETRY_AFTER)

        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._inflight[key] = fut
        self.stats.pending_high_water = max(
            self.stats.pending_high_water, len(self._inflight)
        )
        # The compile runs as its own task so a dropped client
        # connection (cancelled handler) never cancels work that
        # coalesced waiters are counting on.
        asyncio.ensure_future(self._compile_and_publish(req, key, fut))
        payload = await asyncio.shield(fut)
        return self._finish(req, payload, key=key)

    async def _compile_and_publish(
        self, req: CompileRequest, key: str, fut: asyncio.Future
    ) -> None:
        try:
            payload = await self._compile_with_policy(req, key)
        except Exception as exc:  # noqa: BLE001 - the 5xx of last resort
            payload = {
                "ok": False,
                "status": 500,
                "result": None,
                "diagnostics": [],
                "trace": [],
                "error": {
                    "code": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                },
            }
        finally:
            self._inflight.pop(key, None)
        if payload["ok"]:
            self.stats.compiled += 1
            self.cache.put(key, payload, durable=True)
        elif payload["status"] == 422:
            # Diagnosable program errors are deterministic: cache them
            # in memory so a retry storm of a broken program stays
            # cheap, but never persist them.
            self.cache.put(key, payload, durable=False)
        if not fut.done():
            fut.set_result(payload)

    async def _invoke_worker(self, req: CompileRequest) -> dict[str, Any]:
        """One pooled compile attempt (patchable in tests)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool,
            compile_worker,
            req.source,
            req.params,
            req.strategy,
            options_fields(req.options),
        )

    async def _compile_with_policy(
        self, req: CompileRequest, key: str
    ) -> dict[str, Any]:
        """The batch driver's timeout/retry/quarantine ladder, async."""
        policy = self.policy
        attempts = 0
        while True:
            attempts += 1
            try:
                return await asyncio.wait_for(
                    self._invoke_worker(req), timeout=policy.timeout
                )
            except (asyncio.TimeoutError, TimeoutError):
                self.stats.timeouts += 1
                why = f"timed out after {policy.timeout}s"
                self._rebuild_pool()  # the stuck worker still holds it
            except (BrokenExecutor, RuntimeError, OSError) as exc:
                why = f"worker crashed ({type(exc).__name__})"
                self._rebuild_pool()
            out_of_retries = attempts > policy.max_retries
            if attempts >= policy.quarantine_after or out_of_retries:
                self.quarantined.add(key)
                self.stats.quarantined += 1
                payload = self._quarantined_payload(key)
                payload["error"]["message"] = (
                    f"quarantined after {attempts} failed attempts: {why}"
                )
                return payload
            self.stats.retries += 1
            await asyncio.sleep(policy.backoff * (2 ** max(0, attempts - 1)))

    def _quarantined_payload(self, key: str) -> dict[str, Any]:
        return {
            "ok": False,
            "status": 503,
            "result": None,
            "diagnostics": [],
            "trace": [],
            "error": {
                "code": "quarantined",
                "message": f"program {key[:12]}… is quarantined",
            },
        }

    # -- response assembly ----------------------------------------------------

    def _finish(
        self,
        req: CompileRequest,
        payload: dict[str, Any],
        key: str | None = None,
        cache: str | None = None,
        coalesced: bool = False,
        retry_after: float | None = None,
    ) -> ServiceResponse:
        body: dict[str, Any] = {
            "ok": payload["ok"],
            "status": payload["status"],
            "key": key,
            "cache": cache,
            "coalesced": coalesced,
            "compile_ms": payload.get("compile_ms"),
            "result": payload.get("result"),
        }
        if req.id is not None:
            body["id"] = req.id
        if req.want_diagnostics or not payload["ok"]:
            body["diagnostics"] = payload.get("diagnostics", [])
        if req.want_trace:
            body["trace"] = payload.get("trace", [])
        if "error" in payload:
            body["error"] = payload["error"]
        headers: dict[str, str] = {}
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
        self.stats.count(payload["status"])
        return ServiceResponse(payload["status"], body, headers)

    def stats_payload(self) -> dict[str, Any]:
        return {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "workers": self.workers,
            "max_pending": self.max_pending,
            "inflight": len(self._inflight),
            "quarantined_keys": sorted(self.quarantined),
            "service": self.stats.as_dict(),
            "cache": self.cache.stats.as_dict(),
            "cache_memory_bytes": self.cache.memory_bytes,
            "cache_entries": len(self.cache),
        }


__all__ = [
    "CompileRequest",
    "CompileService",
    "RequestError",
    "ServiceResponse",
    "ServiceStats",
    "parse_request",
    "rebuild_options",
]
