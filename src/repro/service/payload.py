"""Deterministic compile payloads.

The service's unit of caching and of correctness: everything under
``payload["result"]`` (and ``payload["diagnostics"]``) is a pure
function of the request's (source, params, strategy, options) — no wall
times, no pids — so the load harness can verify any response, served
from any tier or coalesced onto any in-flight future, **bitwise** against
a direct :func:`repro.core.pipeline.compile_program` call.  Wall-clock
measurements ride outside, in ``compile_ms`` and ``trace`` (the per-pass
:class:`~repro.core.passes.PassTrace` records include ``wall_s``).

:func:`compile_worker` is the process-pool entry point: it takes only
picklable primitives and returns only JSON types, so a poison program
can at worst kill its worker process, never the server.
"""

from __future__ import annotations

import time
from dataclasses import fields
from typing import Any, Optional

from ..core.context import CompilerOptions
from ..core.pipeline import CompilationResult, Strategy, compile_program
from ..errors import InternalCompilerError, ReproError


def schedule_payload(result: CompilationResult) -> dict[str, Any]:
    """The canonical, deterministic schedule summary of one compile."""
    return {
        "strategy": result.strategy.value,
        "call_sites": result.call_sites(),
        "call_sites_by_kind": result.call_sites_by_kind(),
        "entries": len(result.entries),
        "eliminated": sorted(e.label for e in result.eliminated_entries()),
        "schedule": [
            [str(pc.position), pc.kind, sorted(e.label for e in pc.entries)]
            for pc in result.placed
        ],
        "degraded": result.degraded,
    }


def options_fields(options: Optional[CompilerOptions]) -> dict[str, Any]:
    """CompilerOptions as a picklable/JSON-able field dict (tuples to
    lists); None stays None (worker rebuilds the defaults)."""
    if options is None:
        return {}
    out: dict[str, Any] = {}
    for f in fields(CompilerOptions):
        value = getattr(options, f.name)
        out[f.name] = list(value) if isinstance(value, tuple) else value
    return out


def rebuild_options(field_dict: dict[str, Any]) -> Optional[CompilerOptions]:
    if not field_dict:
        return None
    coerced = {
        name: tuple(value) if isinstance(value, list) else value
        for name, value in field_dict.items()
    }
    return CompilerOptions(**coerced)


def compile_payload(
    source: str,
    params: Optional[dict[str, int]],
    strategy: "str | Strategy",
    options: Optional[CompilerOptions] = None,
) -> dict[str, Any]:
    """Compile once and reduce to a JSON payload; never raises for
    program-level failures.

    ``status`` carries the HTTP verdict: 200 for a schedule, 422 for a
    diagnosable program error, 500 for an internal compiler error (the
    crash-free frontier's structured wrapper).
    """
    t0 = time.perf_counter()
    try:
        result = compile_program(source, params, strategy, options)
    except InternalCompilerError as exc:
        return {
            "ok": False,
            "status": 500,
            "result": None,
            "diagnostics": [exc.diagnostic().to_dict()],
            "trace": [],
            "compile_ms": round((time.perf_counter() - t0) * 1000, 3),
        }
    except ReproError as exc:
        return {
            "ok": False,
            "status": 422,
            "result": None,
            "diagnostics": [exc.diagnostic().to_dict()],
            "trace": [],
            "compile_ms": round((time.perf_counter() - t0) * 1000, 3),
        }
    return {
        "ok": True,
        "status": 200,
        "result": schedule_payload(result),
        "diagnostics": [d.diagnostic().to_dict() for d in result.degradations],
        "trace": [t.to_dict() for t in result.pass_traces],
        "compile_ms": round((time.perf_counter() - t0) * 1000, 3),
    }


def compile_worker(
    source: str,
    params: Optional[dict[str, int]],
    strategy: str,
    option_fields: dict[str, Any],
) -> dict[str, Any]:
    """Process-pool entry: primitives in, JSON out."""
    return compile_payload(
        source, params, strategy, rebuild_options(option_fields)
    )
