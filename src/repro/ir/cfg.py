"""The augmented control flow graph (paper §4.1, Figure 7).

The CFG makes loop structure explicit in the way the paper requires:

* every loop has a single **preheader** node that dominates the whole loop
  and is the landing pad for hoisted communication;
* every loop has a **postexit** node per exit target, with a **zero-trip
  edge** from the preheader (so SSA postexit φ-defs merge the "loop ran"
  and "loop did not run" versions);
* the loop **header** carries the φ-enter defs with the two parameters the
  paper calls ``r_pre`` and ``r_post``.

Since the mini-HPF language is structured (DO/IF only, no GOTO), lowering
is syntax-directed.  Loops are modelled bottom-tested per Figure 7: header
→ body → latch-back-to-header, header → postexit exit edge, preheader →
postexit zero-trip edge.

The CFG also provides the *position* vocabulary used by placement:
a :class:`Position` is "immediately after statement ``index`` of node
``node``", with index ``-1`` meaning the top of the node — the landing
spot for communication hoisted to a preheader or attached to a φ-def.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import PlacementError
from ..frontend import ast_nodes as ast


class NodeKind(enum.Enum):
    ENTRY = "entry"
    EXIT = "exit"
    BLOCK = "block"
    PREHEADER = "preheader"
    HEADER = "header"
    LATCH = "latch"
    POSTEXIT = "postexit"
    BRANCH = "branch"
    JOIN = "join"

    def __str__(self) -> str:
        return self.value


@dataclass(eq=False, slots=True)
class Node:
    """One basic block of the augmented CFG."""

    id: int
    kind: NodeKind
    stmts: list[ast.Assign] = field(default_factory=list)
    preds: list["Node"] = field(default_factory=list)
    succs: list["Node"] = field(default_factory=list)
    loop: Optional["Loop"] = None  # innermost containing loop
    branch_cond: Optional[ast.Expr] = None
    label: str = ""
    origin_sid: int = -1  # for BRANCH/JOIN: sid of the originating IF
    _loop_chain: Optional[list["Loop"]] = field(default=None, repr=False)

    @property
    def nl(self) -> int:
        """Nesting level: number of loops containing this node."""
        return self.loop.depth if self.loop is not None else 0

    def loops_containing(self) -> list["Loop"]:
        """Enclosing loops, outermost first.  Memoized (the loop nest is
        fixed once the CFG is built); callers treat the list as read-only.
        """
        chain = self._loop_chain
        if chain is None:
            chain = []
            loop = self.loop
            while loop is not None:
                chain.append(loop)
                loop = loop.parent
            chain.reverse()
            self._loop_chain = chain
        return chain

    def __repr__(self) -> str:
        tag = self.label or str(self.kind)
        return f"<node {self.id} {tag}>"


@dataclass(eq=False)
class Loop:
    """One DO loop of the program with its CFG anchor nodes.

    ``depth`` is 1 for an outermost loop (so a node directly inside it has
    ``nl == 1``); the paper's ``NL(L)`` equals ``depth - 1``.
    """

    stmt: ast.Do
    preheader: Node
    header: Node
    latch: Node
    postexit: Node
    parent: Optional["Loop"] = None
    children: list["Loop"] = field(default_factory=list)
    depth: int = 1
    body_nodes: list[Node] = field(default_factory=list)

    @property
    def var(self) -> str:
        return self.stmt.var

    def contains_node(self, node: Node) -> bool:
        """True when ``node`` is inside this loop (preheader/postexit are
        *outside*; header/latch/body are inside)."""
        loop = node.loop
        while loop is not None:
            if loop is self:
                return True
            loop = loop.parent
        return False

    def contains_loop(self, other: "Loop") -> bool:
        loop: Loop | None = other
        while loop is not None:
            if loop is self:
                return True
            loop = loop.parent
        return False

    def __repr__(self) -> str:
        return f"<loop {self.var}@{self.depth}>"


class Position:
    """A placement point: immediately after ``node.stmts[index]``.

    ``index == -1`` addresses the top of the node (before its first
    statement) — where header/postexit φ-defs conceptually live and where
    preheader placements land.  Ordering is (node.id, index), which is only
    meaningful within a node; cross-node ordering questions go through
    dominance.

    Positions are the single hottest value type of the placement passes
    (CommSet members, cache keys, dominance-query operands), so the class
    is slotted, its hash is computed once at construction, and equality
    takes an identity fast path — :meth:`CFG.position` interns them so
    positions of one program usually *are* the same object.
    """

    __slots__ = ("node_id", "index", "_hash")

    def __init__(self, node_id: int, index: int) -> None:
        self.node_id = node_id
        self.index = index
        self._hash = hash((node_id, index))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Position):
            return NotImplemented
        return self.node_id == other.node_id and self.index == other.index

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Position") -> bool:
        return (self.node_id, self.index) < (other.node_id, other.index)

    def __le__(self, other: "Position") -> bool:
        return (self.node_id, self.index) <= (other.node_id, other.index)

    def __gt__(self, other: "Position") -> bool:
        return (self.node_id, self.index) > (other.node_id, other.index)

    def __ge__(self, other: "Position") -> bool:
        return (self.node_id, self.index) >= (other.node_id, other.index)

    def __getstate__(self) -> tuple[int, int]:
        return (self.node_id, self.index)

    def __setstate__(self, state: tuple[int, int]) -> None:
        self.__init__(*state)

    def __repr__(self) -> str:
        return f"Position(node_id={self.node_id}, index={self.index})"

    def __str__(self) -> str:
        return f"n{self.node_id}.{'top' if self.index < 0 else self.index}"


class CFG:
    """The augmented control flow graph of one program."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.nodes: list[Node] = []
        self.loops: list[Loop] = []
        self._stmt_place: dict[int, tuple[Node, int]] = {}
        # Intern pool: one canonical Position object per (node, index) of
        # this program, so set/dict probes hit the identity fast path.
        # Lifetime is tied to the CFG (one compile), so the pool cannot
        # grow across a batch-serving process.
        self._positions: dict[tuple[int, int], Position] = {}
        self.entry = self._new_node(NodeKind.ENTRY, label="ENTRY")
        self.exit = self._new_node(NodeKind.EXIT, label="EXIT")
        self._lower(program)

    # -- construction ----------------------------------------------------------

    def _new_node(
        self,
        kind: NodeKind,
        loop: Loop | None = None,
        label: str = "",
    ) -> Node:
        node = Node(id=len(self.nodes), kind=kind, loop=loop, label=label)
        self.nodes.append(node)
        return node

    @staticmethod
    def _link(a: Node, b: Node) -> None:
        if b not in a.succs:
            a.succs.append(b)
            b.preds.append(a)

    def _lower(self, program: ast.Program) -> None:
        first = self._new_node(NodeKind.BLOCK)
        self._link(self.entry, first)
        last = self._lower_body(program.body, first, loop=None)
        self._link(last, self.exit)
        self._check_consistency()

    def _lower_body(self, body: list[ast.Stmt], current: Node, loop: Loop | None) -> Node:
        """Lower ``body`` starting in block ``current``; return the block
        where control continues afterwards."""
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                current.stmts.append(stmt)
                self._stmt_place[stmt.sid] = (current, len(current.stmts) - 1)
            elif isinstance(stmt, ast.Do):
                current = self._lower_loop(stmt, current, loop)
            elif isinstance(stmt, ast.If):
                current = self._lower_if(stmt, current, loop)
        return current

    def _lower_loop(self, stmt: ast.Do, current: Node, outer: Loop | None) -> Node:
        depth = (outer.depth + 1) if outer is not None else 1
        preheader = self._new_node(
            NodeKind.PREHEADER, loop=outer, label=f"pre({stmt.var})"
        )
        # Loop object is created with placeholder anchors, then patched, so
        # inner nodes can point at it during lowering.
        header = self._new_node(NodeKind.HEADER, label=f"hdr({stmt.var})")
        latch = self._new_node(NodeKind.LATCH, label=f"latch({stmt.var})")
        postexit = self._new_node(
            NodeKind.POSTEXIT, loop=outer, label=f"post({stmt.var})"
        )
        loop = Loop(
            stmt=stmt,
            preheader=preheader,
            header=header,
            latch=latch,
            postexit=postexit,
            parent=outer,
            depth=depth,
        )
        header.loop = loop
        latch.loop = loop
        if outer is not None:
            outer.children.append(loop)
        self.loops.append(loop)

        self._link(current, preheader)
        self._link(preheader, header)
        self._link(preheader, postexit)  # zero-trip edge

        body_first = self._new_node(NodeKind.BLOCK, loop=loop)
        self._link(header, body_first)
        body_last = self._lower_body(stmt.body, body_first, loop)
        self._link(body_last, latch)
        self._link(latch, header)  # back edge
        self._link(header, postexit)  # loop exit edge

        cont = self._new_node(NodeKind.BLOCK, loop=outer)
        self._link(postexit, cont)
        return cont

    def _lower_if(self, stmt: ast.If, current: Node, loop: Loop | None) -> Node:
        branch = self._new_node(NodeKind.BRANCH, loop=loop, label="if")
        branch.branch_cond = stmt.cond
        branch.origin_sid = stmt.sid
        self._link(current, branch)

        join = self._new_node(NodeKind.JOIN, loop=loop, label="endif")
        join.origin_sid = stmt.sid

        then_first = self._new_node(NodeKind.BLOCK, loop=loop)
        self._link(branch, then_first)
        then_last = self._lower_body(stmt.then_body, then_first, loop)
        self._link(then_last, join)

        if stmt.else_body:
            else_first = self._new_node(NodeKind.BLOCK, loop=loop)
            self._link(branch, else_first)
            else_last = self._lower_body(stmt.else_body, else_first, loop)
            self._link(else_last, join)
        else:
            self._link(branch, join)

        cont = self._new_node(NodeKind.BLOCK, loop=loop)
        self._link(join, cont)
        return cont

    def _check_consistency(self) -> None:
        for node in self.nodes:
            for s in node.succs:
                if node not in s.preds:
                    raise PlacementError(f"CFG edge {node}->{s} not mirrored")
        for loop in self.loops:
            loop.body_nodes = []
        for node in self.nodes:  # one ancestor walk per node, in id order
            loop = node.loop
            while loop is not None:
                loop.body_nodes.append(node)
                loop = loop.parent

    # -- queries ------------------------------------------------------------

    def node_of_stmt(self, stmt: ast.Assign) -> Node:
        return self._stmt_place[stmt.sid][0]

    def place_of_stmt(self, stmt: ast.Assign) -> tuple[Node, int]:
        """(node, statement index within node) of an Assign."""
        return self._stmt_place[stmt.sid]

    def position(self, node_id: int, index: int) -> Position:
        """The interned Position for (node_id, index); value-equal to a
        freshly constructed ``Position`` but canonical per CFG."""
        key = (node_id, index)
        pos = self._positions.get(key)
        if pos is None:
            pos = self._positions[key] = Position(node_id, index)
        return pos

    def position_before(self, stmt: ast.Assign) -> Position:
        node, idx = self._stmt_place[stmt.sid]
        return self.position(node.id, idx - 1)

    def position_after(self, stmt: ast.Assign) -> Position:
        node, idx = self._stmt_place[stmt.sid]
        return self.position(node.id, idx)

    def node_by_id(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def assigns(self) -> Iterator[ast.Assign]:
        """Every Assign statement in CFG (program) order."""
        for stmt in self.program.statements():
            if isinstance(stmt, ast.Assign):
                yield stmt

    def nl(self, node: Node) -> int:
        return node.nl

    def common_loops(self, a: Node, b: Node) -> list[Loop]:
        """Loops containing both nodes, outermost first."""
        chain_a = a.loops_containing()
        chain_b = b.loops_containing()
        common: list[Loop] = []
        for la, lb in zip(chain_a, chain_b):
            if la is lb:
                common.append(la)
            else:
                break
        return common

    def cnl(self, a: Node, b: Node) -> int:
        """Common nesting level: NL of the deepest loop containing both."""
        return len(self.common_loops(a, b))

    def reverse_postorder(self) -> list[Node]:
        seen: set[int] = set()
        order: list[Node] = []

        stack: list[tuple[Node, int]] = [(self.entry, 0)]
        seen.add(self.entry.id)
        while stack:
            node, i = stack[-1]
            if i < len(node.succs):
                stack[-1] = (node, i + 1)
                succ = node.succs[i]
                if succ.id not in seen:
                    seen.add(succ.id)
                    stack.append((succ, 0))
            else:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    # -- display ----------------------------------------------------------------

    def dump(self) -> str:
        lines = []
        for node in self.nodes:
            succs = ", ".join(str(s.id) for s in node.succs)
            loop = f" in {node.loop}" if node.loop else ""
            lines.append(f"{node!r}{loop} -> [{succs}]")
            for i, stmt in enumerate(node.stmts):
                lines.append(f"    [{i}] s{stmt.sid}: {stmt}")
        return "\n".join(lines)
