"""Intermediate representation: augmented CFG, dominators, SSA."""

from .cfg import CFG, Loop, Node, NodeKind, Position
from .dominators import DominatorInfo
from .ssa import SSA, EntryDef, PhiDef, RegularDef, SSADef, Use

__all__ = [
    "CFG",
    "DominatorInfo",
    "EntryDef",
    "Loop",
    "Node",
    "NodeKind",
    "PhiDef",
    "Position",
    "RegularDef",
    "SSA",
    "SSADef",
    "Use",
]
