"""SSA form over the augmented CFG (paper §4.1).

The placement analysis walks SSA *use-def chains refined by array
dependence testing* (paper §4: "we find it more efficient to exploit the
SSA def-use information already computed in an earlier phase, refined by
array dependence-testing").  The SSA here has the three features the paper
relies on:

* **preserving defs** — every regular def of an array writes only part of
  it, so the def also links to the version it preserves (``prev``); the
  Earliest walk recurses through these links (Fig 8c);
* **φ-enter / φ-exit** — loop headers carry a φ with the paper's
  ``r_pre``/``r_post`` parameters, and postexit nodes carry a φ merging the
  zero-trip and loop-exit versions (standard dominance-frontier insertion
  produces exactly these on the augmented CFG);
* an **ENTRY pseudo-def** for every variable, which simplifies the
  dataflow: any chain bottom-outs at a def that conservatively "depends".

Scalar defs are killing; array defs are preserving.  Loop induction
variables and parameters are not SSA variables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from ..errors import PlacementError
from ..frontend import ast_nodes as ast
from .cfg import CFG, Node, NodeKind
from .dominators import DominatorInfo

_def_ids = itertools.count()


@dataclass(eq=False)
class SSADef:
    """Base class: one SSA version of one variable."""

    var: str
    node: Node
    version: int = field(default=-1)
    id: int = field(default_factory=lambda: next(_def_ids))

    @property
    def is_phi(self) -> bool:
        return isinstance(self, PhiDef)

    @property
    def is_entry(self) -> bool:
        return isinstance(self, EntryDef)

    def __repr__(self) -> str:
        return f"{self.var}_{self.version}@n{self.node.id}"


@dataclass(eq=False, repr=False)
class EntryDef(SSADef):
    """The pseudo-def at ENTRY (one per variable accessed in the routine)."""

    def __repr__(self) -> str:
        return f"{self.var}_entry"


@dataclass(eq=False, repr=False)
class RegularDef(SSADef):
    """A def from an assignment statement.

    ``preserving`` is True for array defs (they write a section, keeping
    the rest) and False for scalar defs.  ``prev`` is the version visible
    immediately before this def — the version a preserving def passes
    through.
    """

    stmt: ast.Assign = None  # type: ignore[assignment]
    ref: Union[ast.ArrayRef, ast.VarRef] = None  # type: ignore[assignment]
    preserving: bool = True
    prev: Optional[SSADef] = None

    def __repr__(self) -> str:
        return f"{self.var}_{self.version}@s{self.stmt.sid}"


@dataclass(eq=False, repr=False)
class PhiDef(SSADef):
    """A φ-def at a merge node; ``params[i]`` is the version flowing in
    along ``node.preds[i]``.

    At a loop header the parameters are the paper's ``r_pre`` (from the
    preheader) and ``r_post`` (from the latch); at a postexit they merge
    the zero-trip and loop-exit versions.
    """

    params: list[Optional[SSADef]] = field(default_factory=list)

    @property
    def kind(self) -> str:
        if self.node.kind is NodeKind.HEADER:
            return "enter"
        if self.node.kind is NodeKind.POSTEXIT:
            return "exit"
        return "join"

    def __repr__(self) -> str:
        return f"{self.var}_{self.version}=φ{self.kind}@n{self.node.id}"


@dataclass(eq=False)
class Use:
    """One read reference of an SSA variable.

    ``ref`` is the syntactic reference; ``in_reduction`` marks reads that
    appear as the argument of a reduction intrinsic (handled specially by
    communication analysis, paper §6.2).
    """

    var: str
    stmt: ast.Assign
    ref: Union[ast.ArrayRef, ast.VarRef]
    node: Node
    reaching: SSADef
    in_reduction: bool = False

    def __repr__(self) -> str:
        return f"use({self.ref}@s{self.stmt.sid} <- {self.reaching!r})"


class SSA:
    """SSA construction and queries for one CFG."""

    def __init__(self, cfg: CFG, dom: DominatorInfo, tracked_vars: set[str]) -> None:
        """``tracked_vars``: array and scalar names to put into SSA form
        (loop variables and parameters are excluded by the caller)."""
        self.cfg = cfg
        self.dom = dom
        self.vars = set(tracked_vars)
        self.entry_defs: dict[str, EntryDef] = {}
        self.phis: dict[int, list[PhiDef]] = {n.id: [] for n in cfg.nodes}
        self.defs_of_stmt: dict[int, list[RegularDef]] = {}
        self.uses: list[Use] = []
        self._use_key: dict[tuple[int, int], Use] = {}
        self._preserving: dict[str, bool] = {}
        self._version_counters: dict[str, itertools.count] = {}
        self._build()

    # -- structure discovery --------------------------------------------------

    def _defs_in_stmt(self, stmt: ast.Assign) -> list[tuple[str, ast.Expr, bool]]:
        """(var, lhs ref, preserving) for the statement's definition."""
        if isinstance(stmt.lhs, ast.VarRef):
            if stmt.lhs.name in self.vars:
                return [(stmt.lhs.name, stmt.lhs, False)]
            return []
        if stmt.lhs.name in self.vars:
            return [(stmt.lhs.name, stmt.lhs, True)]
        return []

    def _uses_in_stmt(self, stmt: ast.Assign) -> list[tuple[str, ast.Expr, bool]]:
        """(var, ref, in_reduction) for every tracked read in the statement,
        including reads in LHS subscripts (they do not define anything)."""
        found: list[tuple[str, ast.Expr, bool]] = []

        def visit(expr: ast.Expr, in_reduction: bool) -> None:
            if isinstance(expr, ast.VarRef):
                if expr.name in self.vars:
                    found.append((expr.name, expr, in_reduction))
            elif isinstance(expr, ast.ArrayRef):
                if expr.name in self.vars:
                    found.append((expr.name, expr, in_reduction))
                for sub in expr.subscripts:
                    if isinstance(sub, ast.Index):
                        visit(sub.expr, in_reduction)
                    else:
                        for part in (sub.lo, sub.hi, sub.step):
                            if part is not None:
                                visit(part, in_reduction)
            elif isinstance(expr, ast.BinOp):
                visit(expr.left, in_reduction)
                visit(expr.right, in_reduction)
            elif isinstance(expr, ast.UnOp):
                visit(expr.operand, in_reduction)
            elif isinstance(expr, ast.Reduction):
                visit(expr.arg, True)
            elif isinstance(expr, ast.Intrinsic):
                for a in expr.args:
                    visit(a, in_reduction)

        visit(stmt.rhs, False)
        if isinstance(stmt.lhs, ast.ArrayRef):
            for sub in stmt.lhs.subscripts:
                if isinstance(sub, ast.Index):
                    visit(sub.expr, False)
                else:
                    for part in (sub.lo, sub.hi, sub.step):
                        if part is not None:
                            visit(part, False)
        return found

    # -- construction ------------------------------------------------------------

    def _build(self) -> None:
        # 1. Find def sites per variable.
        def_nodes: dict[str, set[int]] = {v: set() for v in self.vars}
        for node in self.cfg.nodes:
            for stmt in node.stmts:
                for var, _ref, _pres in self._defs_in_stmt(stmt):
                    def_nodes[var].add(node.id)

        # 2. Insert φ-defs at iterated dominance frontiers.  The ENTRY
        # pseudo-def counts as a def site so merges with "no def on one
        # path" still get a φ.
        for var in sorted(self.vars):
            self._version_counters[var] = itertools.count()
            worklist = list(def_nodes[var] | {self.cfg.entry.id})
            has_phi: set[int] = set()
            queued = set(worklist)
            while worklist:
                nid = worklist.pop()
                for fid in self.dom.frontier[nid]:
                    if fid in has_phi:
                        continue
                    has_phi.add(fid)
                    fnode = self.cfg.node_by_id(fid)
                    phi = PhiDef(var=var, node=fnode)
                    phi.params = [None] * len(fnode.preds)
                    self.phis[fid].append(phi)
                    if fid not in queued:
                        queued.add(fid)
                        worklist.append(fid)

        # 3. Rename along the dominator tree.
        stacks: dict[str, list[SSADef]] = {}
        for var in self.vars:
            entry_def = EntryDef(var=var, node=self.cfg.entry)
            entry_def.version = next(self._version_counters[var])
            self.entry_defs[var] = entry_def
            stacks[var] = [entry_def]

        self._rename(self.cfg.entry, stacks)

        for node_phis in self.phis.values():
            for phi in node_phis:
                if any(p is None for p in phi.params):
                    raise PlacementError(f"unfilled φ parameter in {phi!r}")

    def _rename(self, root: Node, stacks: dict[str, list[SSADef]]) -> None:
        # Iterative dominator-tree walk (explicit stack): large scalarized
        # programs produce dominator trees deeper than Python's recursion
        # limit.
        work: list[tuple[Node, bool, list[str]]] = [(root, False, [])]
        while work:
            node, leaving, pushed = work.pop()
            if leaving:
                for var in reversed(pushed):
                    stacks[var].pop()
                continue

            for phi in self.phis[node.id]:
                phi.version = next(self._version_counters[phi.var])
                stacks[phi.var].append(phi)
                pushed.append(phi.var)

            for stmt in node.stmts:
                for var, ref, in_reduction in self._uses_in_stmt(stmt):
                    use = Use(
                        var=var,
                        stmt=stmt,
                        ref=ref,
                        node=node,
                        reaching=stacks[var][-1],
                        in_reduction=in_reduction,
                    )
                    self.uses.append(use)
                    self._use_key[(stmt.sid, id(ref))] = use
                for var, ref, preserving in self._defs_in_stmt(stmt):
                    d = RegularDef(
                        var=var,
                        node=node,
                        stmt=stmt,
                        ref=ref,
                        preserving=preserving,
                        prev=stacks[var][-1],
                    )
                    d.version = next(self._version_counters[var])
                    stacks[var].append(d)
                    pushed.append(var)
                    self.defs_of_stmt.setdefault(stmt.sid, []).append(d)

            for succ in node.succs:
                slot = succ.preds.index(node)
                for phi in self.phis[succ.id]:
                    phi.params[slot] = stacks[phi.var][-1]

            work.append((node, True, pushed))
            for child in reversed(self.dom.children[node.id]):
                work.append((child, False, []))

    # -- queries ------------------------------------------------------------

    def use_of(self, stmt: ast.Assign, ref: ast.Expr) -> Use:
        try:
            return self._use_key[(stmt.sid, id(ref))]
        except KeyError:
            raise PlacementError(
                f"no SSA use recorded for {ref} in statement {stmt.sid}"
            ) from None

    def header_phi(self, node: Node, var: str) -> PhiDef | None:
        for phi in self.phis[node.id]:
            if phi.var == var:
                return phi
        return None

    def all_defs(self) -> Iterator[SSADef]:
        yield from self.entry_defs.values()
        for node_phis in self.phis.values():
            yield from node_phis
        for defs in self.defs_of_stmt.values():
            yield from defs

    def array_uses(self, distributed: set[str]) -> list[Use]:
        """Uses of distributed arrays — the communication candidates."""
        return [u for u in self.uses if u.var in distributed]

    def dump(self) -> str:
        lines = []
        for node in self.cfg.nodes:
            items = [repr(phi) for phi in self.phis[node.id]]
            for stmt in node.stmts:
                for d in self.defs_of_stmt.get(stmt.sid, []):
                    items.append(repr(d))
            if items:
                lines.append(f"{node!r}: " + ", ".join(items))
        return "\n".join(lines)
