"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy iterative dominance algorithm over the
augmented CFG, plus the statement-granular dominance relation the placement
algorithm needs: the paper walks *dominator-tree parent links* from
``Latest(u)`` up to ``Earliest(u)`` (Claim 4.5) and repeatedly asks whether
one placement point dominates another (redundancy elimination, Fig 9f).
"""

from __future__ import annotations

from ..errors import PlacementError
from .cfg import CFG, Node, Position


class DominatorInfo:
    """Dominator tree, dominance queries, and dominance frontiers."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self._rpo = cfg.reverse_postorder()
        self._rpo_index = {node.id: i for i, node in enumerate(self._rpo)}
        self.idom: dict[int, Node] = {}
        self._compute_idoms()
        self.children: dict[int, list[Node]] = {n.id: [] for n in self._rpo}
        for node in self._rpo:
            if node is not self.cfg.entry:
                self.children[self.idom[node.id].id].append(node)
        self._dfs_order()
        self.frontier = self._compute_frontiers()

    # -- core algorithm --------------------------------------------------------

    def _compute_idoms(self) -> None:
        entry = self.cfg.entry
        idom: dict[int, Node] = {entry.id: entry}

        def intersect(a: Node, b: Node) -> Node:
            while a is not b:
                while self._rpo_index[a.id] > self._rpo_index[b.id]:
                    a = idom[a.id]
                while self._rpo_index[b.id] > self._rpo_index[a.id]:
                    b = idom[b.id]
            return a

        changed = True
        while changed:
            changed = False
            for node in self._rpo:
                if node is entry:
                    continue
                processed = [p for p in node.preds if p.id in idom]
                if not processed:
                    continue
                new_idom = processed[0]
                for p in processed[1:]:
                    new_idom = intersect(p, new_idom)
                if idom.get(node.id) is not new_idom:
                    idom[node.id] = new_idom
                    changed = True
        self.idom = idom
        for node in self._rpo:
            if node.id not in idom:
                raise PlacementError(f"unreachable node {node!r} in CFG")

    def _dfs_order(self) -> None:
        """Preorder/postorder numbering of the dominator tree enabling O(1)
        dominance queries, plus the dominator-tree depth table.

        All three are dense lists indexed by node id (ids are assigned
        contiguously by the CFG), so dominance queries are two list
        indexings with no dict probing and no node lookup."""
        n = len(self.cfg.nodes)
        self._pre: list[int] = [0] * n
        self._post: list[int] = [0] * n
        self._depth: list[int] = [0] * n
        counter = 0
        stack: list[tuple[Node, bool]] = [(self.cfg.entry, False)]
        while stack:
            node, done = stack.pop()
            if done:
                self._post[node.id] = counter
                counter += 1
                continue
            self._pre[node.id] = counter
            counter += 1
            if node is not self.cfg.entry:
                self._depth[node.id] = self._depth[self.idom[node.id].id] + 1
            stack.append((node, True))
            for child in reversed(self.children[node.id]):
                stack.append((child, False))

    def _compute_frontiers(self) -> dict[int, set[int]]:
        frontier: dict[int, set[int]] = {n.id: set() for n in self._rpo}
        for node in self._rpo:
            if len(node.preds) < 2:
                continue
            for pred in node.preds:
                runner = pred
                while runner is not self.idom[node.id]:
                    frontier[runner.id].add(node.id)
                    runner = self.idom[runner.id]
        return frontier

    # -- queries ------------------------------------------------------------

    def dominates(self, a: Node, b: Node) -> bool:
        """True when a dominates b (reflexively)."""
        return (
            self._pre[a.id] <= self._pre[b.id]
            and self._post[b.id] <= self._post[a.id]
        )

    def strictly_dominates(self, a: Node, b: Node) -> bool:
        return a is not b and self.dominates(a, b)

    def dom_tree_parent(self, node: Node) -> Node | None:
        if node is self.cfg.entry:
            return None
        return self.idom[node.id]

    def dom_tree_path(self, descendant: Node, ancestor: Node) -> list[Node]:
        """Nodes from ``descendant`` up to and including ``ancestor`` along
        dominator-tree parent links (Claim 4.5's walk).  Raises when
        ``ancestor`` does not dominate ``descendant``."""
        if not self.dominates(ancestor, descendant):
            raise PlacementError(
                f"{ancestor!r} does not dominate {descendant!r}; no dom-tree path"
            )
        path = [descendant]
        node = descendant
        while node is not ancestor:
            parent = self.dom_tree_parent(node)
            if parent is None:
                raise PlacementError("walked past ENTRY looking for dominator")
            path.append(parent)
            node = parent
        return path

    # -- statement-granular dominance ---------------------------------------

    def position_dominates(self, a: Position, b: Position) -> bool:
        """Does placement point ``a`` dominate placement point ``b``?

        Within one node, earlier positions dominate later ones; across
        nodes, block dominance decides.  Operates directly on the dense
        pre/post tables keyed by ``node_id`` — no node object is ever
        fetched (this is the single most-called query of the placement
        passes).
        """
        na, nb = a.node_id, b.node_id
        if na == nb:
            return a.index <= b.index
        pre = self._pre
        return pre[na] <= pre[nb] and self._post[nb] <= self._post[na]

    def dominator_depth(self, node: Node) -> int:
        """Depth of ``node`` in the dominator tree (entry = 0), from the
        table filled during :meth:`_dfs_order` — O(1) instead of the old
        O(depth) parent walk."""
        return self._depth[node.id]
