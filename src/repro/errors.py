"""Exception hierarchy for the repro compiler.

Every error raised by the library derives from :class:`ReproError`, so a
downstream user can catch a single exception type at an API boundary.  The
subclasses mirror the phases of the compiler: lexing/parsing, semantic
analysis, scalarization, dependence analysis, communication placement, code
generation, and runtime simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SourceLocation:
    """A (line, column) position in a mini-HPF source file.

    Kept as a tiny value class rather than a tuple so error messages can
    format themselves uniformly and so positions sort naturally.
    """

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int) -> None:
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.line, self.column) == (other.line, other.column)

    def __lt__(self, other: "SourceLocation") -> bool:
        return (self.line, self.column) < (other.line, other.column)

    def __hash__(self) -> int:
        return hash((self.line, self.column))


class LexError(ReproError):
    """Raised when the lexer encounters an unrecognized character."""

    def __init__(self, message: str, location: SourceLocation) -> None:
        super().__init__(f"lex error at {location}: {message}")
        self.location = location


class ParseError(ReproError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message: str, location: SourceLocation | None = None) -> None:
        where = f" at {location}" if location is not None else ""
        super().__init__(f"parse error{where}: {message}")
        self.location = location


class SemanticError(ReproError):
    """Raised for semantic violations: undeclared names, rank mismatches,
    inconsistent distributions, and the like."""


class ScalarizationError(ReproError):
    """Raised when an F90 array statement cannot be scalarized (e.g. the
    section extents of the two sides do not conform)."""


class DependenceError(ReproError):
    """Raised when dependence analysis is asked about malformed references."""


class PlacementError(ReproError):
    """Raised when communication placement reaches an inconsistent state.

    A PlacementError coming out of the core algorithm indicates a bug in the
    compiler, not in the user program; the invariant text in the message says
    which claim of the paper was violated.
    """


class CodegenError(ReproError):
    """Raised when SPMD code generation cannot emit a schedule."""


class SimulationError(ReproError):
    """Raised by the runtime simulator, e.g. when an executed schedule reads
    remote data that no prior communication delivered (a placement-safety
    violation)."""
