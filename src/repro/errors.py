"""Exception hierarchy and structured diagnostics for the repro compiler.

Every error raised by the library derives from :class:`ReproError`, so a
downstream user can catch a single exception type at an API boundary.  The
subclasses mirror the phases of the compiler: lexing/parsing, semantic
analysis, scalarization, dependence analysis, communication placement, code
generation, and runtime simulation.

Every error class carries a stable machine-readable **error code** (the
``code`` class attribute, ``E01xx``-``E09xx`` by phase) and a
:class:`Severity`.  :meth:`ReproError.diagnostic` renders any error as a
:class:`Diagnostic` — the unit the CLI prints one-per-line or serializes
with ``--diagnostics-json``.  Degradation warnings from the fault-tolerant
pipeline (see :mod:`repro.core.faults`) use the ``W06xx`` code space and
the same :class:`Diagnostic` shape, so one consumer handles both.

The full code table lives in :data:`ERROR_CODES` and is documented in
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` aborts the requested operation; ``WARNING`` reports a
    degradation or suspicious construct that did not stop compilation;
    ``NOTE`` attaches context to another diagnostic.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


class SourceLocation:
    """A (line, column) position in a mini-HPF source file.

    Kept as a tiny value class rather than a tuple so error messages can
    format themselves uniformly and so positions sort naturally.
    """

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int) -> None:
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.line, self.column) == (other.line, other.column)

    def __lt__(self, other: "SourceLocation") -> bool:
        return (self.line, self.column) < (other.line, other.column)

    def __hash__(self) -> int:
        return hash((self.line, self.column))


@dataclass(frozen=True)
class Diagnostic:
    """One machine-consumable diagnostic: code, severity, message, place.

    ``line``/``column`` are ``None`` when the error has no source position
    (placement invariants, runtime oracle failures, internal errors).
    """

    code: str
    severity: str
    message: str
    phase: str = "general"
    line: Optional[int] = None
    column: Optional[int] = None

    def format(self, filename: str | None = None) -> str:
        """GCC-style one-liner: ``file:line:col: severity[CODE]: message``."""
        where = filename or "<input>"
        if self.line is not None:
            where += f":{self.line}:{self.column}"
        return f"{where}: {self.severity}[{self.code}]: {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "phase": self.phase,
            "message": self.message,
            "line": self.line,
            "column": self.column,
        }


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Subclasses set ``code`` (stable, machine-readable) and ``phase``; they
    may carry a :class:`SourceLocation` in ``self.location`` and keep the
    unprefixed message in ``self.raw_message`` so :meth:`diagnostic` does
    not repeat location text already baked into ``str(self)``.
    """

    code = "E0000"
    phase = "general"
    severity = Severity.ERROR

    def __init__(
        self, message: str = "", location: SourceLocation | None = None
    ) -> None:
        super().__init__(message)
        self.location = location
        self.raw_message = message

    def diagnostic(self) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            severity=self.severity.value,
            message=self.raw_message or str(self),
            phase=self.phase,
            line=self.location.line if self.location else None,
            column=self.location.column if self.location else None,
        )


class LexError(ReproError):
    """Raised when the lexer encounters an unrecognized character."""

    code = "E0100"
    phase = "lex"

    def __init__(self, message: str, location: SourceLocation) -> None:
        super().__init__(f"lex error at {location}: {message}", location)
        self.raw_message = message


class ParseError(ReproError):
    """Raised when the parser encounters an unexpected token."""

    code = "E0200"
    phase = "parse"

    def __init__(self, message: str, location: SourceLocation | None = None) -> None:
        where = f" at {location}" if location is not None else ""
        super().__init__(f"parse error{where}: {message}", location)
        self.raw_message = message


class SemanticError(ReproError):
    """Raised for semantic violations: undeclared names, rank mismatches,
    inconsistent distributions, and the like."""

    code = "E0300"
    phase = "semantic"


class ScalarizationError(ReproError):
    """Raised when an F90 array statement cannot be scalarized (e.g. the
    section extents of the two sides do not conform)."""

    code = "E0400"
    phase = "scalarize"


class DependenceError(ReproError):
    """Raised when dependence analysis is asked about malformed references."""

    code = "E0500"
    phase = "dependence"


class PlacementError(ReproError):
    """Raised when communication placement reaches an inconsistent state.

    A PlacementError coming out of the core algorithm indicates a bug in the
    compiler, not in the user program; the invariant text in the message says
    which claim of the paper was violated.
    """

    code = "E0600"
    phase = "placement"


class CodegenError(ReproError):
    """Raised when SPMD code generation cannot emit a schedule."""

    code = "E0700"
    phase = "codegen"


class SimulationError(ReproError):
    """Raised by the runtime simulator, e.g. when an executed schedule reads
    remote data that no prior communication delivered (a placement-safety
    violation)."""

    code = "E0800"
    phase = "runtime"


class InternalCompilerError(ReproError):
    """An unexpected non-:class:`ReproError` exception escaped a compiler
    phase.  :func:`repro.core.pipeline.compile_program` converts such
    crashes into this class (chaining the original) so the library's
    crash-free frontier — *every* failure surfaces as a ReproError —
    holds even for compiler bugs."""

    code = "E0900"
    phase = "internal"


#: Degradation-warning code used by the fault-tolerant pipeline (the
#: ``DegradationEvent`` records in ``CompilationResult.degradations``).
DEGRADED_CODE = "W0601"

#: Exact-solver fallback: an ``ilp``/``exact`` placement search failed or
#: overflowed its budget and the pipeline degraded to the greedy §4.7
#: schedule.  Distinct from W0601 so solver regressions are greppable:
#: the schedule is still optimized, just not provably optimal.
SOLVER_FALLBACK_CODE = "W0604"

#: Runtime fault-tolerance warning codes (the transport layer's
#: ``RuntimeDegradationEvent`` records, surfaced like W0601 through
#: ``--diagnostics-json``; see ``docs/ROBUSTNESS.md``).
RANK_RESTART_CODE = "W0701"       # rank crash recovered by restart + replay
DEADLOCK_DEGRADED_CODE = "W0702"  # deadlock under chaos → inline re-execution
RESTARTS_EXHAUSTED_CODE = "W0703"  # restart budget spent → inline re-execution

#: Stable code → exception class table (the CLI and docs consume this).
ERROR_CODES: dict[str, type[ReproError]] = {
    cls.code: cls
    for cls in (
        ReproError,
        LexError,
        ParseError,
        SemanticError,
        ScalarizationError,
        DependenceError,
        PlacementError,
        CodegenError,
        SimulationError,
        InternalCompilerError,
    )
}
