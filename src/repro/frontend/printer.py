"""Unparser: AST back to mini-HPF source.

Round-trips with the parser (``parse(unparse(p))`` reproduces the same
structure), which the test suite checks property-style.  Used by the CLI
to show scalarized programs and by anyone persisting transformed ASTs.
"""

from __future__ import annotations

from . import ast_nodes as ast


def _expr(e: ast.Expr) -> str:
    if isinstance(e, ast.Num):
        return str(e)
    if isinstance(e, ast.VarRef):
        return e.name
    if isinstance(e, ast.ArrayRef):
        return f"{e.name}({', '.join(_subscript(s) for s in e.subscripts)})"
    if isinstance(e, ast.BinOp):
        op = {"AND": " AND ", "OR": " OR "}.get(e.op, f" {e.op} ")
        return f"({_expr(e.left)}{op}{_expr(e.right)})"
    if isinstance(e, ast.UnOp):
        if e.op == "NOT":
            return f"(NOT {_expr(e.operand)})"
        return f"(-{_expr(e.operand)})"
    if isinstance(e, ast.Reduction):
        name = {"SUM": "SUM", "MAX": "MAXVAL", "MIN": "MINVAL"}[e.op]
        return f"{name}({_expr(e.arg)})"
    if isinstance(e, ast.Intrinsic):
        return f"{e.name}({', '.join(_expr(a) for a in e.args)})"
    raise TypeError(f"cannot print {e!r}")


def _subscript(s: ast.Subscript) -> str:
    if isinstance(s, ast.Index):
        return _expr(s.expr)
    lo = "" if s.lo is None else _expr(s.lo)
    hi = "" if s.hi is None else _expr(s.hi)
    if s.step is None:
        return f"{lo}:{hi}"
    return f"{lo}:{hi}:{_expr(s.step)}"


def _decl(d: ast.Decl) -> list[str]:
    if isinstance(d, ast.ParamDecl):
        return [f"PARAM {d.name} = {d.value}"]
    if isinstance(d, ast.ProcessorsDecl):
        dims = ", ".join(_expr(e) for e in d.shape)
        return [f"PROCESSORS {d.name}({dims})"]
    if isinstance(d, ast.TemplateDecl):
        dims = ", ".join(_expr(e) for e in d.shape)
        return [f"TEMPLATE {d.name}({dims})"]
    if isinstance(d, ast.DistributeDecl):
        fmts = ", ".join(d.formats)
        return [f"DISTRIBUTE {d.target}({fmts}) ONTO {d.onto}"]
    if isinstance(d, ast.AlignDecl):
        return [f"ALIGN {d.array} WITH {d.target}"]
    if isinstance(d, ast.ArrayDecl):
        dims = ", ".join(_expr(e) for e in d.dims)
        return [f"{d.elem_type} {d.name}({dims})"]
    if isinstance(d, ast.ScalarDecl):
        return [f"{d.elem_type} {d.name}"]
    raise TypeError(f"cannot print {d!r}")


def _stmt(stmt: ast.Stmt, indent: int, out: list[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, ast.Assign):
        out.append(f"{pad}{_expr(stmt.lhs)} = {_expr(stmt.rhs)}")
    elif isinstance(stmt, ast.Do):
        out.append(
            f"{pad}DO {stmt.var} = {_expr(stmt.lo)}, {_expr(stmt.hi)}, "
            f"{_expr(stmt.step)}"
        )
        for s in stmt.body:
            _stmt(s, indent + 1, out)
        out.append(f"{pad}END DO")
    elif isinstance(stmt, ast.If):
        out.append(f"{pad}IF {_expr(stmt.cond)} THEN")
        for s in stmt.then_body:
            _stmt(s, indent + 1, out)
        if stmt.else_body:
            out.append(f"{pad}ELSE")
            for s in stmt.else_body:
                _stmt(s, indent + 1, out)
        out.append(f"{pad}END IF")
    else:
        raise TypeError(f"cannot print {stmt!r}")


def unparse(program: ast.Program) -> str:
    """Render a program as parseable mini-HPF source."""
    lines = [f"PROGRAM {program.name}"]
    for d in program.decls:
        for line in _decl(d):
            lines.append(f"  {line}")
    for stmt in program.body:
        _stmt(stmt, 1, lines)
    lines.append("END PROGRAM")
    return "\n".join(lines) + "\n"
