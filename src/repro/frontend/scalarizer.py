"""Scalarization: F90 array-section statements to explicit DO loops.

The IBM pHPF compiler scalarizes F90 array syntax before communication
analysis; the paper's Figure 3 shows this is exactly why *earliest
placement* is fragile — the scalarizer splits one conceptual loop into
several, breaking interval containment.  We reproduce the same pipeline
position: :func:`scalarize` runs after elaboration and before analysis.

Rules
-----
* ``a(l1:h1:s1, l2:h2:s2) = rhs`` becomes a loop nest with one fresh,
  zero-based induction variable per section dimension::

      DO _s1 = 0, count1-1
        DO _s2 = 0, count2-1
          a(l1 + s1*_s1, l2 + s2*_s2) = rhs'

  where every RHS section reference has its k-th triplet rewritten to
  ``lo_k + step_k * _sk``.  Zero-based loops keep all subscripts affine
  with integer coefficients regardless of the original strides.
* Reduction intrinsics (``SUM``/``MAXVAL``/``MINVAL``) keep their section
  argument: reductions are atomic communication statements in this
  compiler (paper §6.2) and are not expanded into accumulation loops.
* Section extents must conform; mismatches raise
  :class:`ScalarizationError` with the offending statement.
* F90 semantics require the RHS of an array assignment to be evaluated
  before any element is stored.  When the RHS reads the *same* array
  through a different (potentially overlapping) section, naive loop
  expansion would read already-overwritten elements; the scalarizer
  introduces a compiler temporary aligned with the target array
  (``_tmp1(sec) = rhs;  lhs(sec) = _tmp1(sec)``), as production HPF
  scalarizers do.  The copy-back is perfectly aligned and adds no
  communication.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..affine import NonAffineError
from ..errors import ScalarizationError, SourceLocation
from . import ast_nodes as ast
from .analysis import ProgramInfo, to_affine


@dataclass
class _SectionLoop:
    """One generated loop: fresh variable plus the per-ref rewrite data."""

    var: str
    count: int


class Scalarizer:
    """Stateful scalarizer; use via :func:`scalarize`."""

    def __init__(self, info: ProgramInfo) -> None:
        self._info = info
        self._counter = 0
        self._temp_counter = 0
        self.new_decls: list[ast.Decl] = []
        # Location of the statement currently being scalarized, so every
        # ScalarizationError carries a source position without threading a
        # location through each helper.
        self._loc: SourceLocation | None = None

    # -- helpers -------------------------------------------------------------

    def _fresh_var(self) -> str:
        self._counter += 1
        return f"_s{self._counter}"

    def _const(self, expr: ast.Expr, where: str) -> int:
        try:
            form = to_affine(expr, self._info.params)
        except NonAffineError as exc:
            raise ScalarizationError(
                f"{where}: {exc}", location=self._loc
            ) from None
        if not form.is_constant:
            raise ScalarizationError(
                f"{where}: section bound {expr} is not compile-time constant",
                location=self._loc,
            )
        return form.const

    def _resolve_triplet(
        self, array: str, dim: int, triplet: ast.Triplet, where: str
    ) -> tuple[int, int, int]:
        """Concrete (lo, hi, step) of a triplet, defaulting to the full
        declared extent."""
        extent = self._info.shape(array)[dim]
        lo = 1 if triplet.lo is None else self._const(triplet.lo, where)
        hi = extent if triplet.hi is None else self._const(triplet.hi, where)
        step = 1 if triplet.step is None else self._const(triplet.step, where)
        if step < 1:
            raise ScalarizationError(
                f"{where}: negative/zero section step {step}",
                location=self._loc,
            )
        return lo, hi, step

    @staticmethod
    def _index_expr(lo: int, step: int, var: str) -> ast.Expr:
        """Build the affine subscript ``lo + step * var`` as AST."""
        scaled: ast.Expr = ast.VarRef(var)
        if step != 1:
            scaled = ast.BinOp("*", ast.Num(step), scaled)
        if lo == 0:
            return scaled
        return ast.BinOp("+", ast.Num(lo), scaled)

    # -- statement rewriting -----------------------------------------------------

    def scalarize_body(self, body: list[ast.Stmt]) -> list[ast.Stmt]:
        out: list[ast.Stmt] = []
        for stmt in body:
            out.extend(self._scalarize_stmt(stmt))
        return out

    def _scalarize_stmt(self, stmt: ast.Stmt) -> list[ast.Stmt]:
        self._loc = stmt.loc
        if isinstance(stmt, ast.Do):
            return [
                ast.Do(
                    stmt.var,
                    stmt.lo,
                    stmt.hi,
                    stmt.step,
                    self.scalarize_body(stmt.body),
                    loc=stmt.loc,
                )
            ]
        if isinstance(stmt, ast.If):
            return [
                ast.If(
                    stmt.cond,
                    self.scalarize_body(stmt.then_body),
                    self.scalarize_body(stmt.else_body),
                    loc=stmt.loc,
                )
            ]
        assert isinstance(stmt, ast.Assign)
        if self._needs_temporary(stmt):
            return self._expand_with_temporary(stmt)
        return self._scalarize_assign(stmt)

    # -- overlap handling (F90 fetch-before-store semantics) -----------------

    def _needs_temporary(self, stmt: ast.Assign) -> bool:
        """True when the RHS reads the LHS array through subscripts that
        differ from the write's — the store order could then clobber
        elements the F90 semantics still need."""
        lhs = stmt.lhs
        if not isinstance(lhs, ast.ArrayRef) or not lhs.has_section:
            return False
        where = f"statement {stmt.sid}"
        for ref in ast.array_refs(stmt.rhs):
            if ref.name != lhs.name or ref is lhs:
                continue
            for dim, (ls, rs) in enumerate(zip(lhs.subscripts, ref.subscripts)):
                if type(ls) is not type(rs):
                    return True
                if isinstance(ls, ast.Triplet):
                    if self._resolve_triplet(
                        lhs.name, dim, ls, where
                    ) != self._resolve_triplet(ref.name, dim, rs, where):
                        return True
                else:
                    try:
                        diff = to_affine(ls.expr, self._info.params) - to_affine(
                            rs.expr, self._info.params
                        )
                    except Exception:
                        return True
                    if not (diff.is_constant and diff.const == 0):
                        return True
        return False

    def _expand_with_temporary(self, stmt: ast.Assign) -> list[ast.Stmt]:
        lhs = stmt.lhs
        assert isinstance(lhs, ast.ArrayRef)
        self._temp_counter += 1
        temp = f"_tmp{self._temp_counter}"
        decl = self._info.array_decls[lhs.name]
        self.new_decls.append(
            ast.ArrayDecl(temp, decl.dims, decl.elem_type, decl.elem_bytes)
        )
        self.new_decls.append(ast.AlignDecl(temp, lhs.name))
        # Teach this scalarizer's info the temp's shape so triplet
        # resolution inside the expanded statements works (the pipeline
        # re-elaborates the program afterwards, making this official).
        import dataclasses

        self._info.layouts[temp] = dataclasses.replace(
            self._info.layout(lhs.name), array=temp
        )

        temp_ref = ast.ArrayRef(temp, lhs.subscripts)
        fill = ast.Assign(temp_ref, stmt.rhs, loc=stmt.loc)
        copy_back = ast.Assign(lhs, temp_ref, loc=stmt.loc)
        return self._scalarize_assign(fill) + self._scalarize_assign(copy_back)

    def _scalarize_assign(self, stmt: ast.Assign) -> list[ast.Stmt]:
        where = f"statement {stmt.sid} ({stmt.loc})"
        lhs = stmt.lhs

        if isinstance(lhs, ast.VarRef) or not lhs.has_section:
            # Scalar or already element-wise; only reductions may carry
            # sections on the RHS.
            self._check_rhs_sections_only_in_reductions(stmt.rhs, where)
            return [ast.Assign(lhs, stmt.rhs, loc=stmt.loc)]

        # Build one loop per LHS section dimension.
        loops: list[_SectionLoop] = []
        new_subs: list[ast.Subscript] = []
        lhs_counts: list[int] = []
        for dim, sub in enumerate(lhs.subscripts):
            if isinstance(sub, ast.Index):
                new_subs.append(sub)
                continue
            lo, hi, step = self._resolve_triplet(lhs.name, dim, sub, where)
            count = max(0, (hi - lo) // step + 1)
            var = self._fresh_var()
            loops.append(_SectionLoop(var, count))
            lhs_counts.append(count)
            new_subs.append(ast.Index(self._index_expr(lo, step, var)))
        new_lhs = ast.ArrayRef(lhs.name, tuple(new_subs))
        new_rhs = self._rewrite_expr(stmt.rhs, loops, lhs_counts, where)

        inner: list[ast.Stmt] = [ast.Assign(new_lhs, new_rhs, loc=stmt.loc)]
        for loop in reversed(loops):
            inner = [
                ast.Do(
                    loop.var,
                    ast.Num(0),
                    ast.Num(loop.count - 1),
                    ast.Num(1),
                    inner,
                    loc=stmt.loc,
                )
            ]
        return inner

    def _rewrite_expr(
        self,
        expr: ast.Expr,
        loops: list[_SectionLoop],
        lhs_counts: list[int],
        where: str,
    ) -> ast.Expr:
        if isinstance(expr, (ast.Num, ast.VarRef)):
            return expr
        if isinstance(expr, ast.BinOp):
            return ast.BinOp(
                expr.op,
                self._rewrite_expr(expr.left, loops, lhs_counts, where),
                self._rewrite_expr(expr.right, loops, lhs_counts, where),
            )
        if isinstance(expr, ast.UnOp):
            return ast.UnOp(
                expr.op, self._rewrite_expr(expr.operand, loops, lhs_counts, where)
            )
        if isinstance(expr, ast.Reduction):
            # The reduction's section argument is left intact.
            return expr
        if isinstance(expr, ast.Intrinsic):
            return ast.Intrinsic(
                expr.name,
                tuple(
                    self._rewrite_expr(a, loops, lhs_counts, where)
                    for a in expr.args
                ),
            )
        assert isinstance(expr, ast.ArrayRef)
        sections = [
            (dim, sub)
            for dim, sub in enumerate(expr.subscripts)
            if isinstance(sub, ast.Triplet)
        ]
        if not sections:
            return expr
        if len(sections) != len(loops):
            raise ScalarizationError(
                f"{where}: RHS reference {expr} has {len(sections)} section "
                f"dimensions but the LHS has {len(loops)}",
                location=self._loc,
            )
        new_subs = list(expr.subscripts)
        for (dim, sub), loop, lhs_count in zip(sections, loops, lhs_counts):
            lo, hi, step = self._resolve_triplet(expr.name, dim, sub, where)
            count = max(0, (hi - lo) // step + 1)
            if count != lhs_count:
                raise ScalarizationError(
                    f"{where}: section extent mismatch in {expr}: RHS dim {dim} "
                    f"has {count} elements, LHS expects {lhs_count}",
                    location=self._loc,
                )
            new_subs[dim] = ast.Index(self._index_expr(lo, step, loop.var))
        return ast.ArrayRef(expr.name, tuple(new_subs))

    def _check_rhs_sections_only_in_reductions(
        self, expr: ast.Expr, where: str
    ) -> None:
        def visit(node: ast.Expr) -> None:
            if isinstance(node, ast.Reduction):
                return  # sections allowed inside
            if isinstance(node, ast.ArrayRef) and node.has_section:
                raise ScalarizationError(
                    f"{where}: sectioned reference {node} on the RHS of a "
                    f"non-sectioned assignment (only reductions may keep "
                    f"sections)",
                    location=self._loc,
                )
            if isinstance(node, ast.BinOp):
                visit(node.left)
                visit(node.right)
            elif isinstance(node, ast.UnOp):
                visit(node.operand)
            elif isinstance(node, ast.Intrinsic):
                for a in node.args:
                    visit(a)

        visit(expr)


def scalarize(program: ast.Program, info: ProgramInfo) -> ast.Program:
    """Return a new program with all array statements expanded to loops.

    The result is renumbered; the input program is not modified.  Compiler
    temporaries introduced for overlapping same-array assignments appear
    as extra declarations aligned with their target arrays.
    """
    scal = Scalarizer(info)
    body = scal.scalarize_body(program.body)
    new_program = ast.Program(
        program.name, list(program.decls) + scal.new_decls, body
    )
    ast.number_statements(new_program)
    return new_program
