"""Recursive-descent parser for the mini-HPF language.

Grammar sketch (newline-terminated statements, ``&`` continuation)::

    program    : 'PROGRAM' IDENT NL (decl NL)* (stmt NL)* 'END' ['PROGRAM']
    decl       : 'PARAM' ident '=' NUMBER
               | 'PROCESSORS' ident '(' exprlist ')'
               | 'TEMPLATE' ident '(' exprlist ')'
               | 'DISTRIBUTE' ident '(' fmtlist ')' 'ONTO' ident
               | 'ALIGN' ident 'WITH' ident
               | type ident [ '(' exprlist ')' ] [ 'ALIGN' 'WITH' ident ]
    stmt       : do | if | assign
    do         : 'DO' ident '=' expr ',' expr [',' expr] NL stmt* 'END' 'DO'
    if         : 'IF' expr 'THEN' NL stmt* ['ELSE' NL stmt*] 'END' 'IF'
    assign     : lvalue '=' expr
    expr       : disjunction of comparisons over +,-,*,/ with unary minus

Reduction intrinsics are ``SUM``, ``MAXVAL``, ``MINVAL``; other recognized
intrinsics (``SQRT``, ``ABS``, ``MOD``, ``MIN``, ``MAX``, ``EXP``, ``LOG``,
``CSHIFT``) parse as :class:`Intrinsic`.  Any other applied identifier is an
array reference (declaration checking happens later, in
:mod:`repro.frontend.analysis`).
"""

from __future__ import annotations

from ..errors import LexError, ParseError, ReproError
from . import ast_nodes as ast
from .lexer import Token, tokenize

REDUCTION_NAMES = {"sum": "SUM", "maxval": "MAX", "minval": "MIN"}
INTRINSIC_NAMES = {"sqrt", "abs", "mod", "min", "max", "exp", "log", "cshift"}
_TYPE_KEYWORDS = ("REAL", "INTEGER", "LOGICAL")


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._pending_align: ast.AlignDecl | None = None

    # -- token plumbing ------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _at(self, *kinds: str) -> bool:
        return self._cur.kind in kinds

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def _expect(self, kind: str) -> Token:
        if self._cur.kind != kind:
            raise ParseError(
                f"expected {kind!r}, found {self._cur.kind!r} ({self._cur.text!r})",
                self._cur.loc,
            )
        return self._advance()

    def _accept(self, kind: str) -> Token | None:
        if self._cur.kind == kind:
            return self._advance()
        return None

    def _skip_newlines(self) -> None:
        while self._accept("NEWLINE"):
            pass

    def _end_of_statement(self) -> None:
        if self._at("EOF"):
            return
        self._expect("NEWLINE")
        self._skip_newlines()

    # -- program -------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        self._skip_newlines()
        self._expect("PROGRAM")
        name = self._expect("IDENT").text
        self._end_of_statement()

        decls: list[ast.Decl] = []
        while self._is_decl_start():
            decls.append(self._parse_decl())
            self._end_of_statement()

        body = self._parse_stmt_list(("END",))
        self._expect("END")
        self._accept("PROGRAM")
        self._skip_newlines()
        self._expect("EOF")
        program = ast.Program(name, decls, body)
        ast.number_statements(program)
        return program

    def _is_decl_start(self) -> bool:
        return self._at(
            "PARAM", "PROCESSORS", "TEMPLATE", "DISTRIBUTE", "ALIGN", *_TYPE_KEYWORDS
        )

    # -- declarations ----------------------------------------------------------

    def _parse_decl(self) -> ast.Decl:
        loc = self._cur.loc
        if self._accept("PARAM"):
            name = self._expect("IDENT").text
            self._expect("=")
            negative = self._accept("-") is not None
            value_tok = self._expect("NUMBER")
            value = int(float(value_tok.text))
            return ast.ParamDecl(name, -value if negative else value, loc=loc)

        if self._accept("PROCESSORS"):
            name = self._expect("IDENT").text
            shape = self._parse_paren_exprs()
            return ast.ProcessorsDecl(name, shape, loc=loc)

        if self._accept("TEMPLATE"):
            name = self._expect("IDENT").text
            shape = self._parse_paren_exprs()
            return ast.TemplateDecl(name, shape, loc=loc)

        if self._accept("DISTRIBUTE"):
            target = self._expect("IDENT").text
            self._expect("(")
            formats = [self._parse_dist_format()]
            while self._accept(","):
                formats.append(self._parse_dist_format())
            self._expect(")")
            self._expect("ONTO")
            onto = self._expect("IDENT").text
            return ast.DistributeDecl(target, tuple(formats), onto, loc=loc)

        if self._accept("ALIGN"):
            array = self._expect("IDENT").text
            self._expect("WITH")
            target = self._expect("IDENT").text
            return ast.AlignDecl(array, target, loc=loc)

        for type_kw in _TYPE_KEYWORDS:
            if self._accept(type_kw):
                name = self._expect("IDENT").text
                if self._at("("):
                    dims = self._parse_paren_exprs()
                    if self._accept("ALIGN"):
                        self._expect("WITH")
                        target = self._expect("IDENT").text
                        # An inline ALIGN expands to two declarations at the
                        # builder level; here we keep them separate by
                        # returning the array decl and queueing the align.
                        self._pending_align = ast.AlignDecl(name, target, loc=loc)
                        decl = ast.ArrayDecl(name, dims, elem_type=type_kw, loc=loc)
                        return decl
                    return ast.ArrayDecl(name, dims, elem_type=type_kw, loc=loc)
                return ast.ScalarDecl(name, elem_type=type_kw, loc=loc)

        raise ParseError(f"expected a declaration, found {self._cur.kind!r}", self._cur.loc)

    def _parse_dist_format(self) -> str:
        if self._accept("BLOCK"):
            return "BLOCK"
        if self._accept("CYCLIC"):
            return "CYCLIC"
        if self._accept("*"):
            return "*"
        raise ParseError(
            f"expected BLOCK, CYCLIC or '*', found {self._cur.text!r}", self._cur.loc
        )

    def _parse_paren_exprs(self) -> tuple[ast.Expr, ...]:
        self._expect("(")
        items = [self._parse_expr()]
        while self._accept(","):
            items.append(self._parse_expr())
        self._expect(")")
        return tuple(items)

    # -- statements --------------------------------------------------------------

    def _parse_stmt_list(self, stop_kinds: tuple[str, ...]) -> list[ast.Stmt]:
        self._skip_newlines()
        stmts: list[ast.Stmt] = []
        while not self._at(*stop_kinds, "EOF"):
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_stmt(self) -> ast.Stmt:
        loc = self._cur.loc
        if self._accept("DO"):
            var = self._expect("IDENT").text
            self._expect("=")
            lo = self._parse_expr()
            self._expect(",")
            hi = self._parse_expr()
            step: ast.Expr = ast.Num(1)
            if self._accept(","):
                step = self._parse_expr()
            self._end_of_statement()
            body = self._parse_stmt_list(("END",))
            self._expect("END")
            self._expect("DO")
            self._end_of_statement()
            return ast.Do(var, lo, hi, step, body, loc=loc)

        if self._accept("IF"):
            cond = self._parse_expr()
            self._expect("THEN")
            self._end_of_statement()
            then_body = self._parse_stmt_list(("ELSE", "END"))
            else_body: list[ast.Stmt] = []
            if self._accept("ELSE"):
                self._end_of_statement()
                else_body = self._parse_stmt_list(("END",))
            self._expect("END")
            self._expect("IF")
            self._end_of_statement()
            return ast.If(cond, then_body, else_body, loc=loc)

        # Assignment.
        name = self._expect("IDENT").text
        lhs: ast.VarRef | ast.ArrayRef
        if self._at("("):
            lhs = ast.ArrayRef(name, self._parse_subscripts())
        else:
            lhs = ast.VarRef(name)
        self._expect("=")
        rhs = self._parse_expr()
        self._end_of_statement()
        return ast.Assign(lhs, rhs, loc=loc)

    # -- expressions ----------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept("OR"):
            right = self._parse_and()
            left = ast.BinOp("OR", left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept("AND"):
            right = self._parse_not()
            left = ast.BinOp("AND", left, right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept("NOT"):
            return ast.UnOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        for op in ("==", "/=", "<=", ">=", "<", ">"):
            if self._accept(op):
                right = self._parse_additive()
                return ast.BinOp(op, left, right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._at("+", "-"):
            op = self._advance().kind
            right = self._parse_multiplicative()
            left = ast.BinOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._at("*", "/"):
            op = self._advance().kind
            right = self._parse_unary()
            left = ast.BinOp(op, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._accept("-"):
            return ast.UnOp("-", self._parse_unary())
        if self._accept("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        if self._at("NUMBER"):
            text = self._advance().text
            return ast.Num(float(text))
        if self._accept("("):
            inner = self._parse_expr()
            self._expect(")")
            return inner
        if self._at("IDENT"):
            name = self._advance().text
            if not self._at("("):
                return ast.VarRef(name)
            if name in REDUCTION_NAMES:
                self._expect("(")
                arg = self._parse_expr()
                self._expect(")")
                if not isinstance(arg, ast.ArrayRef):
                    raise ParseError(
                        f"{name.upper()} expects an array section argument",
                        self._cur.loc,
                    )
                return ast.Reduction(REDUCTION_NAMES[name], arg)
            if name in INTRINSIC_NAMES:
                self._expect("(")
                args = [self._parse_expr()]
                while self._accept(","):
                    args.append(self._parse_expr())
                self._expect(")")
                return ast.Intrinsic(name.upper(), tuple(args))
            return ast.ArrayRef(name, self._parse_subscripts())
        raise ParseError(
            f"expected an expression, found {self._cur.kind!r}", self._cur.loc
        )

    def _parse_subscripts(self) -> tuple[ast.Subscript, ...]:
        self._expect("(")
        subs = [self._parse_subscript()]
        while self._accept(","):
            subs.append(self._parse_subscript())
        self._expect(")")
        return tuple(subs)

    def _parse_subscript(self) -> ast.Subscript:
        lo: ast.Expr | None = None
        if not self._at(":"):
            lo = self._parse_expr()
            if not self._at(":"):
                return ast.Index(lo)
        self._expect(":")
        hi: ast.Expr | None = None
        if not self._at(":", ",", ")"):
            hi = self._parse_expr()
        step: ast.Expr | None = None
        if self._accept(":"):
            step = self._parse_expr()
        return ast.Triplet(lo, hi, step)


def parse(source: str) -> ast.Program:
    """Parse mini-HPF source text into a numbered :class:`Program`.

    Inline ``ALIGN WITH`` clauses on array declarations are expanded into
    separate :class:`AlignDecl` entries following the array declaration.
    """
    return _SplicingParser(tokenize(source)).parse_program()


class _SplicingParser(Parser):
    """Parser variant that splices inline ``ALIGN WITH`` clauses into the
    declaration list right after the owning array declaration."""

    def parse_program(self) -> ast.Program:
        self._skip_newlines()
        self._expect("PROGRAM")
        name = self._expect("IDENT").text
        self._end_of_statement()

        decls: list[ast.Decl] = []
        while self._is_decl_start():
            decl = self._parse_decl()
            decls.append(decl)
            if self._pending_align is not None:
                decls.append(self._pending_align)
                self._pending_align = None
            self._end_of_statement()

        body = self._parse_stmt_list(("END",))
        self._expect("END")
        self._accept("PROGRAM")
        self._skip_newlines()
        self._expect("EOF")
        program = ast.Program(name, decls, body)
        ast.number_statements(program)
        return program


class _StopParsing(Exception):
    """Internal signal: the recovering parser hit its error cap."""


class RecoveringParser(_SplicingParser):
    """Parser with statement-boundary error recovery.

    A :class:`ParseError` inside a declaration or statement is recorded and
    the parser resynchronizes at the next statement boundary (the next
    ``NEWLINE``), so one run surfaces every independent syntax error up to
    ``max_errors``.  Recovery never produces a partial AST — callers get
    either a clean program or the full diagnostic list.
    """

    def __init__(self, tokens: list[Token], max_errors: int = 10) -> None:
        super().__init__(tokens)
        self.max_errors = max(1, max_errors)
        self.errors: list[ParseError] = []

    def _note(self, exc: ParseError) -> None:
        self.errors.append(exc)
        if len(self.errors) >= self.max_errors:
            raise _StopParsing

    def _sync_to_boundary(self) -> None:
        """Skip tokens up to and past the next statement boundary.

        Always makes progress: even when the error token *is* the
        boundary, the ``_accept`` consumes it.
        """
        while not self._at("NEWLINE", "EOF"):
            self._advance()
        self._accept("NEWLINE")
        self._skip_newlines()

    def _parse_stmt_list(self, stop_kinds: tuple[str, ...]) -> list[ast.Stmt]:
        self._skip_newlines()
        stmts: list[ast.Stmt] = []
        while not self._at(*stop_kinds, "EOF"):
            before = self._pos
            try:
                stmts.append(self._parse_stmt())
            except ParseError as exc:
                self._note(exc)
                if self._pos == before and self._at(*stop_kinds):
                    break  # the offending token belongs to the parent
                self._sync_to_boundary()
        return stmts

    def parse_program(self) -> ast.Program:
        self._skip_newlines()
        self._expect("PROGRAM")
        name = self._expect("IDENT").text
        self._end_of_statement()

        decls: list[ast.Decl] = []
        while self._is_decl_start():
            try:
                decl = self._parse_decl()
                decls.append(decl)
                if self._pending_align is not None:
                    decls.append(self._pending_align)
                    self._pending_align = None
                self._end_of_statement()
            except ParseError as exc:
                self._pending_align = None
                self._note(exc)
                self._sync_to_boundary()

        body = self._parse_stmt_list(("END",))
        try:
            self._expect("END")
            self._accept("PROGRAM")
            self._skip_newlines()
            self._expect("EOF")
        except ParseError as exc:
            self._note(exc)
        program = ast.Program(name, decls, body)
        ast.number_statements(program)
        return program


def parse_recovering(
    source: str, max_errors: int = 10
) -> "tuple[ast.Program | None, list[ReproError]]":
    """Parse with statement-boundary error recovery.

    Returns ``(program, [])`` on success, or ``(None, errors)`` with every
    syntax error found (capped at ``max_errors``).  Errors *before* the
    first statement boundary (a malformed ``PROGRAM`` header, a lex error)
    cannot be recovered from and come back as a single-element list.
    """
    try:
        tokens = tokenize(source)
    except LexError as exc:
        return None, [exc]  # type: ignore[list-item]
    parser = RecoveringParser(tokens, max_errors=max_errors)
    try:
        program = parser.parse_program()
    except _StopParsing:
        return None, list(parser.errors)
    except ParseError as exc:
        return None, list(parser.errors) + [exc]
    if parser.errors:
        return None, list(parser.errors)
    return program, []
