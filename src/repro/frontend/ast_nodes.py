"""Abstract syntax tree for the mini-HPF language.

The language is a small data-parallel Fortran dialect: scalar and array
declarations, HPF mapping directives (``PROCESSORS``, ``TEMPLATE``,
``DISTRIBUTE``, ``ALIGN``), ``DO`` loops, ``IF`` statements, F90 array-
section assignments, and reduction intrinsics (``SUM``, ``MIN``, ``MAX``).
It is rich enough to express the paper's running example (Figure 4), the
motivating codes (Figures 1-3), and the four evaluation benchmarks.

Every statement node carries a source location and, after numbering by
:func:`number_statements`, a stable integer id ``sid`` used throughout the
analysis and in human-readable reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from ..errors import SourceLocation

NOWHERE = SourceLocation(0, 0)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """A numeric literal (integer or floating point)."""

    value: float

    def __str__(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class VarRef:
    """A reference to a scalar variable, parameter, or loop index."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Index:
    """A subscript that selects a single element along one dimension."""

    expr: "Expr"

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class Triplet:
    """An F90 section triplet ``lo:hi:step`` along one dimension.

    ``None`` bounds mean "the declared extent"; a bare ``:`` is
    ``Triplet(None, None, None)``.
    """

    lo: Optional["Expr"] = None
    hi: Optional["Expr"] = None
    step: Optional["Expr"] = None

    def __str__(self) -> str:
        lo = "" if self.lo is None else str(self.lo)
        hi = "" if self.hi is None else str(self.hi)
        if self.step is None:
            return f"{lo}:{hi}"
        return f"{lo}:{hi}:{self.step}"


Subscript = Union[Index, Triplet]


@dataclass(frozen=True)
class ArrayRef:
    """A subscripted array reference, possibly a section."""

    name: str
    subscripts: tuple[Subscript, ...]

    @property
    def has_section(self) -> bool:
        return any(isinstance(s, Triplet) for s in self.subscripts)

    def __str__(self) -> str:
        inner = ", ".join(str(s) for s in self.subscripts)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class BinOp:
    """A binary arithmetic or comparison operation."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp:
    """A unary operation (negation, logical not)."""

    op: str
    operand: "Expr"

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class Reduction:
    """A reduction intrinsic over an array section: ``SUM(a(i, :))``."""

    op: str  # SUM, MIN, MAX
    arg: ArrayRef

    def __str__(self) -> str:
        return f"{self.op}({self.arg})"


@dataclass(frozen=True)
class Intrinsic:
    """A non-reduction intrinsic call: SQRT, ABS, MOD, CSHIFT, ..."""

    name: str
    args: tuple["Expr", ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


Expr = Union[Num, VarRef, ArrayRef, BinOp, UnOp, Reduction, Intrinsic]


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, preorder.

    Subscript expressions inside :class:`ArrayRef` are visited too.
    """
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Reduction):
        yield from walk_expr(expr.arg)
    elif isinstance(expr, Intrinsic):
        for a in expr.args:
            yield from walk_expr(a)
    elif isinstance(expr, ArrayRef):
        for s in expr.subscripts:
            if isinstance(s, Index):
                yield from walk_expr(s.expr)
            else:
                for part in (s.lo, s.hi, s.step):
                    if part is not None:
                        yield from walk_expr(part)


def array_refs(expr: Expr) -> Iterator[ArrayRef]:
    """Yield every :class:`ArrayRef` appearing in ``expr``."""
    for node in walk_expr(expr):
        if isinstance(node, ArrayRef):
            yield node


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Assign:
    """An assignment ``lhs = rhs``; the lhs may be a scalar or an array
    reference (element or F90 section)."""

    lhs: Union[VarRef, ArrayRef]
    rhs: Expr
    loc: SourceLocation = field(default_factory=lambda: NOWHERE)
    sid: int = -1

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"


@dataclass
class Do:
    """A counted DO loop ``DO var = lo, hi [, step]``."""

    var: str
    lo: Expr
    hi: Expr
    step: Expr
    body: list["Stmt"]
    loc: SourceLocation = field(default_factory=lambda: NOWHERE)
    sid: int = -1

    def __str__(self) -> str:
        return f"DO {self.var} = {self.lo}, {self.hi}, {self.step}"


@dataclass
class If:
    """A two-way conditional."""

    cond: Expr
    then_body: list["Stmt"]
    else_body: list["Stmt"]
    loc: SourceLocation = field(default_factory=lambda: NOWHERE)
    sid: int = -1

    def __str__(self) -> str:
        return f"IF {self.cond}"


Stmt = Union[Assign, Do, If]


def walk_stmts(body: list[Stmt]) -> Iterator[Stmt]:
    """Yield every statement in ``body``, preorder, recursing into loop and
    conditional bodies."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, Do):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class ParamDecl:
    """A compile-time integer parameter: ``PARAM n = 64``.

    The declared value is a default; the compiler may be invoked with an
    override binding so one parse supports a problem-size sweep.
    """

    name: str
    value: int
    loc: SourceLocation = field(default_factory=lambda: NOWHERE)


@dataclass
class ProcessorsDecl:
    """A processor grid: ``PROCESSORS p(4, 4)``."""

    name: str
    shape: tuple[Expr, ...]
    loc: SourceLocation = field(default_factory=lambda: NOWHERE)


@dataclass
class TemplateDecl:
    """An alignment template: ``TEMPLATE t(n, n)``."""

    name: str
    shape: tuple[Expr, ...]
    loc: SourceLocation = field(default_factory=lambda: NOWHERE)


@dataclass
class DistributeDecl:
    """``DISTRIBUTE t(BLOCK, BLOCK) ONTO p`` — formats are 'BLOCK',
    'CYCLIC', or '*' (collapsed / on-processor)."""

    target: str
    formats: tuple[str, ...]
    onto: str
    loc: SourceLocation = field(default_factory=lambda: NOWHERE)


@dataclass
class AlignDecl:
    """``ALIGN a WITH t`` — identity alignment of an array to a template
    (or to another array)."""

    array: str
    target: str
    loc: SourceLocation = field(default_factory=lambda: NOWHERE)


@dataclass
class ArrayDecl:
    """``REAL a(n, n)`` — element type is recorded but everything is
    simulated in doubles (8 bytes), as in the paper's experiments."""

    name: str
    dims: tuple[Expr, ...]
    elem_type: str = "REAL"
    elem_bytes: int = 8
    loc: SourceLocation = field(default_factory=lambda: NOWHERE)


@dataclass
class ScalarDecl:
    """``REAL s`` — scalars are replicated on all processors."""

    name: str
    elem_type: str = "REAL"
    loc: SourceLocation = field(default_factory=lambda: NOWHERE)


Decl = Union[
    ParamDecl,
    ProcessorsDecl,
    TemplateDecl,
    DistributeDecl,
    AlignDecl,
    ArrayDecl,
    ScalarDecl,
]


@dataclass
class Program:
    """A whole mini-HPF program: declarations followed by statements."""

    name: str
    decls: list[Decl]
    body: list[Stmt]

    def statements(self) -> Iterator[Stmt]:
        return walk_stmts(self.body)


def number_statements(program: Program) -> None:
    """Assign each statement a stable, dense preorder id (``sid``).

    Re-run after any transformation that adds or removes statements (the
    scalarizer does this automatically).
    """
    for sid, stmt in enumerate(program.statements(), start=1):
        stmt.sid = sid
