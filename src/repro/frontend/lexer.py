"""Tokenizer for the mini-HPF language.

Keywords and identifiers are case-insensitive (as in Fortran); identifiers
are folded to lower case, keywords to upper case.  ``!`` starts a comment
that runs to end of line.  Newlines are significant (they terminate
statements) but a trailing ``&`` continues a statement onto the next line.
"""

from __future__ import annotations

import re

from ..errors import LexError, SourceLocation

KEYWORDS = {
    "PROGRAM",
    "END",
    "PARAM",
    "PROCESSORS",
    "TEMPLATE",
    "DISTRIBUTE",
    "ONTO",
    "ALIGN",
    "WITH",
    "REAL",
    "INTEGER",
    "LOGICAL",
    "BLOCK",
    "CYCLIC",
    "DO",
    "IF",
    "THEN",
    "ELSE",
    "AND",
    "OR",
    "NOT",
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "==",
    "/=",
    "<=",
    ">=",
    "+",
    "-",
    "*",
    "/",
    "<",
    ">",
    "(",
    ")",
    ",",
    ":",
    "=",
    ";",
]


class Token:
    """One lexical token: a ``kind``, its source ``text``, and location.

    Kinds: ``IDENT``, ``NUMBER``, ``NEWLINE``, ``EOF``, any keyword string,
    or the operator text itself.  A plain slotted class (not a dataclass):
    token construction is the lexer's per-character inner loop.
    """

    __slots__ = ("kind", "text", "loc")

    def __init__(self, kind: str, text: str, loc: SourceLocation) -> None:
        self.kind = kind
        self.text = text
        self.loc = loc

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.loc})"


# One master pattern, tried in order (alternation is first-match): skipped
# trivia first, then numbers before identifiers (so '1e5' lexes as a
# number), multi-char operators before their single-char prefixes.  A '&'
# only matches when it legally ends a line (optional trailing blanks and
# comment); a stray '&' falls through to the error path below.
_TOKEN_RE = re.compile(
    r"""
      (?P<WS>[ \t\r]+)
    | (?P<COMMENT>![^\n]*)
    | (?P<CONT>&[ \t\r]*(?:![^\n]*)?\n)
    | (?P<NL>\n)
    | (?P<NUMBER>(?:\d+(?:\.\d*)?|\.\d+)(?:[eEdD][+-]?\d+)?)
    | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<OP>==|/=|<=|>=|[+\-*/<>(),:=;])
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> list[Token]:
    """Convert mini-HPF source text into a token list ending with EOF."""
    tokens: list[Token] = []
    append = tokens.append
    line = 1
    line_start = 0  # offset of the current line's first character
    i = 0
    n = len(source)
    match = _TOKEN_RE.match

    while i < n:
        m = match(source, i)
        if m is None:
            col = i - line_start + 1
            if source[i] == "&":
                raise LexError("'&' must end a line", SourceLocation(line, col))
            raise LexError(
                f"unexpected character {source[i]!r}", SourceLocation(line, col)
            )
        kind = m.lastgroup
        i = m.end()
        if kind == "WS" or kind == "COMMENT":
            continue
        if kind == "CONT":
            line += 1
            line_start = i
            continue
        if kind == "NL":
            if tokens and tokens[-1].kind != "NEWLINE":
                append(
                    Token("NEWLINE", "\n", SourceLocation(line, m.start() - line_start + 1))
                )
            line += 1
            line_start = i
            continue
        loc = SourceLocation(line, m.start() - line_start + 1)
        text = m.group()
        if kind == "NUMBER":
            append(Token("NUMBER", text.replace("d", "e").replace("D", "e"), loc))
        elif kind == "IDENT":
            upper = text.upper()
            if upper in KEYWORDS:
                append(Token(upper, upper, loc))
            else:
                append(Token("IDENT", text.lower(), loc))
        else:  # OP
            append(Token("NEWLINE" if text == ";" else text, text, loc))

    tokens.append(Token("EOF", "", SourceLocation(line, n - line_start + 1)))
    return tokens
