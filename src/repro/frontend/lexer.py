"""Tokenizer for the mini-HPF language.

Keywords and identifiers are case-insensitive (as in Fortran); identifiers
are folded to lower case, keywords to upper case.  ``!`` starts a comment
that runs to end of line.  Newlines are significant (they terminate
statements) but a trailing ``&`` continues a statement onto the next line.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LexError, SourceLocation

KEYWORDS = {
    "PROGRAM",
    "END",
    "PARAM",
    "PROCESSORS",
    "TEMPLATE",
    "DISTRIBUTE",
    "ONTO",
    "ALIGN",
    "WITH",
    "REAL",
    "INTEGER",
    "LOGICAL",
    "BLOCK",
    "CYCLIC",
    "DO",
    "IF",
    "THEN",
    "ELSE",
    "AND",
    "OR",
    "NOT",
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "==",
    "/=",
    "<=",
    ">=",
    "+",
    "-",
    "*",
    "/",
    "<",
    ">",
    "(",
    ")",
    ",",
    ":",
    "=",
    ";",
]


@dataclass(frozen=True)
class Token:
    """One lexical token: a ``kind``, its source ``text``, and location.

    Kinds: ``IDENT``, ``NUMBER``, ``NEWLINE``, ``EOF``, any keyword string,
    or the operator text itself.
    """

    kind: str
    text: str
    loc: SourceLocation

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.loc})"


def tokenize(source: str) -> list[Token]:
    """Convert mini-HPF source text into a token list ending with EOF."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def loc() -> SourceLocation:
        return SourceLocation(line, col)

    def emit(kind: str, text: str) -> None:
        tokens.append(Token(kind, text, loc()))

    while i < n:
        ch = source[i]

        if ch == "!":
            while i < n and source[i] != "\n":
                i += 1
            continue

        if ch == "&":
            # Line continuation: swallow everything through the next newline.
            j = i + 1
            while j < n and source[j] in " \t\r":
                j += 1
            if j < n and source[j] == "!":
                while j < n and source[j] != "\n":
                    j += 1
            if j < n and source[j] == "\n":
                i = j + 1
                line += 1
                col = 1
                continue
            raise LexError("'&' must end a line", loc())

        if ch == "\n":
            if tokens and tokens[-1].kind not in ("NEWLINE",):
                emit("NEWLINE", "\n")
            i += 1
            line += 1
            col = 1
            continue

        if ch in " \t\r":
            i += 1
            col += 1
            continue

        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = source[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # Don't eat '..' or a '.' that starts '.AND.' style text;
                    # the language has no ranges with '..' so a single dot
                    # following digits is always part of the number.
                    seen_dot = True
                    i += 1
                elif c in "eEdD" and not seen_exp and i + 1 < n and (
                    source[i + 1].isdigit()
                    or (source[i + 1] in "+-" and i + 2 < n and source[i + 2].isdigit())
                ):
                    seen_exp = True
                    i += 1
                    if source[i] in "+-":
                        i += 1
                else:
                    break
            text = source[start:i]
            emit("NUMBER", text.replace("d", "e").replace("D", "e"))
            col += i - start
            continue

        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            upper = text.upper()
            if upper in KEYWORDS:
                emit(upper, upper)
            else:
                emit("IDENT", text.lower())
            col += i - start
            continue

        for op in _OPERATORS:
            if source.startswith(op, i):
                kind = "NEWLINE" if op == ";" else op
                emit(kind, op)
                i += len(op)
                col += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", loc())

    tokens.append(Token("EOF", "", SourceLocation(line, col)))
    return tokens
