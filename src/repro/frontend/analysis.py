"""Semantic analysis and elaboration of mini-HPF programs.

:func:`elaborate` checks a parsed :class:`Program` and produces a
:class:`ProgramInfo`: parameter values (with optional overrides, so one
parse supports a problem-size sweep), processor grids, and a concrete
:class:`~repro.distribution.layout.Layout` for every array.  Arrays without
a mapping directive are replicated.

It also hosts :func:`to_affine`, the bridge from AST expressions to the
:class:`~repro.affine.Affine` forms used by scalarization, section
computation, and dependence testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..affine import Affine, NonAffineError
from ..distribution.layout import (
    DimMapping,
    DistFormat,
    Layout,
    ProcessorGrid,
    replicated_layout,
)
from ..errors import SemanticError, SourceLocation
from . import ast_nodes as ast


def to_affine(expr: ast.Expr, params: dict[str, int] | None = None) -> Affine:
    """Convert an index expression to an affine form.

    Symbols bound in ``params`` are folded to constants; all other
    :class:`VarRef` names (loop variables, unresolved parameters) stay
    symbolic.  Raises :class:`NonAffineError` for anything else (array
    reads in subscripts, non-linear products, intrinsics).
    """
    params = params or {}
    if isinstance(expr, ast.Num):
        if not float(expr.value).is_integer():
            raise NonAffineError(f"non-integer literal {expr.value} in index")
        return Affine.constant(int(expr.value))
    if isinstance(expr, ast.VarRef):
        if expr.name in params:
            return Affine.constant(params[expr.name])
        return Affine.symbol(expr.name)
    if isinstance(expr, ast.UnOp) and expr.op == "-":
        return -to_affine(expr.operand, params)
    if isinstance(expr, ast.BinOp):
        if expr.op == "+":
            return to_affine(expr.left, params) + to_affine(expr.right, params)
        if expr.op == "-":
            return to_affine(expr.left, params) - to_affine(expr.right, params)
        if expr.op == "*":
            return to_affine(expr.left, params) * to_affine(expr.right, params)
        if expr.op == "/":
            left = to_affine(expr.left, params)
            right = to_affine(expr.right, params)
            if right.is_constant and right.const != 0 and left.is_constant and (
                left.const % right.const == 0
            ):
                return Affine.constant(left.const // right.const)
            raise NonAffineError(f"non-constant division in index: {expr}")
    raise NonAffineError(f"expression is not affine: {expr}")


@dataclass
class ProgramInfo:
    """Elaborated facts about one program, shared by every later phase."""

    program: ast.Program
    params: dict[str, int]
    grids: dict[str, ProcessorGrid]
    layouts: dict[str, Layout]
    scalars: dict[str, ast.ScalarDecl]
    array_decls: dict[str, ast.ArrayDecl] = field(default_factory=dict)
    default_grid: ProcessorGrid | None = None
    # Memo for :meth:`affine`, keyed by expression identity.  The value
    # keeps a reference to the expression so an id() can never be reused
    # while its cache entry is alive.
    _affine_cache: dict[int, tuple[ast.Expr, Affine]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def layout(self, array: str) -> Layout:
        try:
            return self.layouts[array]
        except KeyError:
            raise SemanticError(f"no layout for array {array!r}") from None

    def is_array(self, name: str) -> bool:
        return name in self.layouts

    def is_distributed(self, name: str) -> bool:
        layout = self.layouts.get(name)
        return layout is not None and bool(layout.distributed_dims)

    def shape(self, array: str) -> tuple[int, ...]:
        return self.layout(array).shape

    def eval_const(self, expr: ast.Expr) -> int:
        """Evaluate a compile-time constant expression (params only)."""
        form = to_affine(expr, self.params)
        if not form.is_constant:
            raise SemanticError(f"expression {expr} is not compile-time constant")
        return form.const

    def affine(self, expr: ast.Expr) -> Affine:
        """Affine form of an index expression with parameters folded
        (memoized per expression object; params are fixed per info)."""
        key = id(expr)
        cached = self._affine_cache.get(key)
        if cached is not None and cached[0] is expr:
            return cached[1]
        form = to_affine(expr, self.params)
        self._affine_cache[key] = (expr, form)
        return form


def elaborate(
    program: ast.Program, param_overrides: dict[str, int] | None = None
) -> ProgramInfo:
    """Validate ``program`` and resolve its declarations.

    ``param_overrides`` replaces declared PARAM defaults by name; unknown
    override names are an error (they would silently do nothing otherwise).
    """
    params: dict[str, int] = {}
    for decl in program.decls:
        if isinstance(decl, ast.ParamDecl):
            if decl.name in params:
                raise SemanticError(
                    f"duplicate PARAM {decl.name!r}", location=decl.loc
                )
            params[decl.name] = decl.value
    if param_overrides:
        for name, value in param_overrides.items():
            if name not in params:
                raise SemanticError(f"override for undeclared PARAM {name!r}")
            params[name] = int(value)

    def const(expr: ast.Expr, what: str, loc: SourceLocation | None = None) -> int:
        try:
            form = to_affine(expr, params)
        except NonAffineError as exc:
            raise SemanticError(f"{what}: {exc}", location=loc) from None
        if not form.is_constant:
            raise SemanticError(
                f"{what} must be compile-time constant, got {expr}", location=loc
            )
        return form.const

    grids: dict[str, ProcessorGrid] = {}
    template_shapes: dict[str, tuple[int, ...]] = {}
    array_decls: dict[str, ast.ArrayDecl] = {}
    scalars: dict[str, ast.ScalarDecl] = {}
    distributes: dict[str, ast.DistributeDecl] = {}
    aligns: dict[str, ast.AlignDecl] = {}

    for decl in program.decls:
        if isinstance(decl, ast.ProcessorsDecl):
            shape = tuple(
                const(e, f"PROCESSORS {decl.name}", decl.loc) for e in decl.shape
            )
            grids[decl.name] = ProcessorGrid(decl.name, shape)
        elif isinstance(decl, ast.TemplateDecl):
            template_shapes[decl.name] = tuple(
                const(e, f"TEMPLATE {decl.name}", decl.loc) for e in decl.shape
            )
        elif isinstance(decl, ast.ArrayDecl):
            if decl.name in array_decls or decl.name in scalars:
                raise SemanticError(
                    f"duplicate declaration of {decl.name!r}", location=decl.loc
                )
            array_decls[decl.name] = decl
        elif isinstance(decl, ast.ScalarDecl):
            if decl.name in array_decls or decl.name in scalars:
                raise SemanticError(
                    f"duplicate declaration of {decl.name!r}", location=decl.loc
                )
            scalars[decl.name] = decl
        elif isinstance(decl, ast.DistributeDecl):
            if decl.target in distributes:
                raise SemanticError(
                    f"duplicate DISTRIBUTE for {decl.target!r}", location=decl.loc
                )
            distributes[decl.target] = decl
        elif isinstance(decl, ast.AlignDecl):
            if decl.array in aligns:
                raise SemanticError(
                    f"duplicate ALIGN for {decl.array!r}", location=decl.loc
                )
            aligns[decl.array] = decl

    if not grids:
        # A sequential program: synthesize the 1-processor grid so layouts
        # are always well-formed.
        grids["_serial"] = ProcessorGrid("_serial", (1,))
    default_grid = next(iter(grids.values()))

    def build_dims(
        shape: tuple[int, ...], dist: ast.DistributeDecl
    ) -> tuple[DimMapping, ...]:
        if len(dist.formats) != len(shape):
            raise SemanticError(
                f"DISTRIBUTE {dist.target!r}: {len(dist.formats)} formats for "
                f"rank-{len(shape)} object",
                location=dist.loc,
            )
        grid = grids.get(dist.onto)
        if grid is None:
            raise SemanticError(
                f"DISTRIBUTE {dist.target!r} ONTO undeclared grid {dist.onto!r}",
                location=dist.loc,
            )
        dims: list[DimMapping] = []
        axis = 0
        for fmt, extent in zip(dist.formats, shape):
            if fmt == "*":
                dims.append(DimMapping(DistFormat.COLLAPSED, extent))
            else:
                if axis >= len(grid.shape):
                    raise SemanticError(
                        f"DISTRIBUTE {dist.target!r}: more distributed dims than "
                        f"grid {grid.name!r} has axes",
                        location=dist.loc,
                    )
                dims.append(DimMapping(DistFormat(fmt), extent, grid_axis=axis))
                axis += 1
        if axis != len(grid.shape):
            raise SemanticError(
                f"DISTRIBUTE {dist.target!r}: {axis} distributed dims do not fill "
                f"grid {grid.name!r} of rank {len(grid.shape)}",
                location=dist.loc,
            )
        return tuple(dims)

    # Resolve template layouts first (they are align targets).
    template_layouts: dict[str, Layout] = {}
    for name, shape in template_shapes.items():
        if name in distributes:
            dist = distributes[name]
            template_layouts[name] = Layout(
                name, grids[dist.onto], build_dims(shape, dist)
            )
        else:
            template_layouts[name] = replicated_layout(name, shape, default_grid)

    layouts: dict[str, Layout] = {}
    for name, decl in array_decls.items():
        shape = tuple(const(e, f"array {name}", decl.loc) for e in decl.dims)
        if name in distributes and name in aligns:
            raise SemanticError(
                f"array {name!r} has both DISTRIBUTE and ALIGN",
                location=decl.loc,
            )
        if name in distributes:
            dist = distributes[name]
            dims = build_dims(shape, dist)  # validates the grid name too
            layouts[name] = Layout(name, grids[dist.onto], dims, decl.elem_bytes)
        elif name in aligns:
            align = aligns[name]
            target = align.target
            target_layout = template_layouts.get(target) or layouts.get(target)
            if target_layout is None:
                raise SemanticError(
                    f"ALIGN {name!r} WITH {target!r}: unknown template/array "
                    f"(templates and align targets must be declared first)",
                    location=align.loc,
                )
            if target_layout.shape != shape:
                raise SemanticError(
                    f"ALIGN {name!r} WITH {target!r}: shape {shape} does not "
                    f"match target shape {target_layout.shape}",
                    location=align.loc,
                )
            layouts[name] = Layout(name, target_layout.grid, target_layout.dims,
                                   decl.elem_bytes)
        else:
            layouts[name] = replicated_layout(name, shape, default_grid,
                                              decl.elem_bytes)

    for target, dist in distributes.items():
        if target not in template_shapes and target not in array_decls:
            raise SemanticError(
                f"DISTRIBUTE names undeclared object {target!r}",
                location=dist.loc,
            )
    for array, align in aligns.items():
        if array not in array_decls:
            raise SemanticError(
                f"ALIGN names undeclared array {array!r}", location=align.loc
            )

    info = ProgramInfo(
        program=program,
        params=params,
        grids=grids,
        layouts=layouts,
        scalars=scalars,
        array_decls=array_decls,
        default_grid=default_grid,
    )
    _check_body(program, info)
    return info


def _check_body(program: ast.Program, info: ProgramInfo) -> None:
    """Validate every statement: names declared, ranks consistent, loop
    variables scoped."""

    def check_expr(
        expr: ast.Expr,
        loop_vars: set[str],
        where: str,
        loc: SourceLocation | None,
    ) -> None:
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.VarRef):
                name = node.name
                known = (
                    name in info.scalars
                    or name in info.params
                    or name in loop_vars
                )
                if not known:
                    if name in info.layouts:
                        raise SemanticError(
                            f"{where}: array {name!r} used without subscripts",
                            location=loc,
                        )
                    raise SemanticError(
                        f"{where}: undeclared variable {name!r}", location=loc
                    )
            elif isinstance(node, ast.ArrayRef):
                if node.name not in info.layouts:
                    raise SemanticError(
                        f"{where}: undeclared array (or unknown function) "
                        f"{node.name!r}",
                        location=loc,
                    )
                rank = info.layout(node.name).rank
                if len(node.subscripts) != rank:
                    raise SemanticError(
                        f"{where}: {node.name!r} has rank {rank}, "
                        f"subscripted with {len(node.subscripts)} subscripts",
                        location=loc,
                    )

    def check_replicated_control(
        expr: ast.Expr, where: str, what: str, loc: SourceLocation | None
    ) -> None:
        """Control expressions are evaluated redundantly on every
        processor, so they must not read distributed data."""
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.ArrayRef) and info.is_distributed(node.name):
                raise SemanticError(
                    f"{where}: {what} reads distributed array {node.name!r}; "
                    f"copy the value into a replicated scalar first",
                    location=loc,
                )

    def check_stmts(body: list[ast.Stmt], loop_vars: set[str]) -> None:
        for stmt in body:
            where = f"statement {stmt.sid} ({stmt.loc})"
            loc = stmt.loc
            if isinstance(stmt, ast.Assign):
                if isinstance(stmt.lhs, ast.VarRef):
                    if stmt.lhs.name not in info.scalars:
                        raise SemanticError(
                            f"{where}: assignment to undeclared scalar "
                            f"{stmt.lhs.name!r}",
                            location=loc,
                        )
                else:
                    check_expr(stmt.lhs, loop_vars, where, loc)
                check_expr(stmt.rhs, loop_vars, where, loc)
            elif isinstance(stmt, ast.Do):
                if stmt.var in info.scalars or stmt.var in info.params:
                    raise SemanticError(
                        f"{where}: loop variable {stmt.var!r} shadows a "
                        f"declaration",
                        location=loc,
                    )
                for bound in (stmt.lo, stmt.hi, stmt.step):
                    check_expr(bound, loop_vars, where, loc)
                    check_replicated_control(bound, where, "loop bound", loc)
                check_stmts(stmt.body, loop_vars | {stmt.var})
            elif isinstance(stmt, ast.If):
                check_expr(stmt.cond, loop_vars, where, loc)
                check_replicated_control(stmt.cond, where, "branch condition", loc)
                check_stmts(stmt.then_body, loop_vars)
                check_stmts(stmt.else_body, loop_vars)

    check_stmts(program.body, set())
