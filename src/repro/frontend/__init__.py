"""Mini-HPF frontend: lexer, parser, elaboration, scalarizer, builder."""

from .analysis import ProgramInfo, elaborate, to_affine
from .builder import ProgramBuilder, sqrt_of, sum_of
from .parser import parse
from .printer import unparse
from .scalarizer import scalarize

__all__ = [
    "ProgramBuilder",
    "ProgramInfo",
    "elaborate",
    "parse",
    "scalarize",
    "sqrt_of",
    "sum_of",
    "to_affine",
    "unparse",
]
