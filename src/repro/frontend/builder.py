"""Programmatic construction of mini-HPF programs.

For tooling (generators, fuzzers, embedding the compiler in another
system) the textual frontend is clumsy; :class:`ProgramBuilder` offers a
fluent API that produces the same AST the parser does:

    b = ProgramBuilder("jacobi")
    b.param("n", 64)
    b.processors("p", 2, 2)
    t = b.template("t", "n", "n").distribute("BLOCK", "BLOCK", onto="p")
    u = b.real("u", "n", "n", align=t)
    w = b.real("w", "n", "n", align=t)
    with b.do("sweep", 1, 10):
        b.assign(w["2:n-1", "2:n-1"],
                 0.25 * (u["1:n-2", "2:n-1"] + u["3:n", "2:n-1"]))
        b.assign(u["2:n-1", "2:n-1"], w["2:n-1", "2:n-1"])
    program = b.build()

Expressions compose with Python operators; subscripts accept integers,
strings (parsed as index or triplet expressions), or slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..errors import ParseError
from . import ast_nodes as ast
from .lexer import tokenize
from .parser import Parser


def _parse_expr(text: str) -> ast.Expr:
    """Parse a standalone expression (used for string operands)."""
    parser = Parser(tokenize(text))
    expr = parser._parse_expr()
    if not parser._at("NEWLINE", "EOF"):
        raise ParseError(f"trailing input in expression {text!r}")
    return expr


def _to_expr(value: "ExprLike") -> ast.Expr:
    if isinstance(value, Expr):
        return value.node
    if isinstance(value, (int, float)):
        return ast.Num(float(value))
    if isinstance(value, str):
        return _parse_expr(value)
    if isinstance(
        value,
        (ast.Num, ast.VarRef, ast.ArrayRef, ast.BinOp, ast.UnOp,
         ast.Reduction, ast.Intrinsic),
    ):
        return value
    raise TypeError(f"cannot convert {value!r} to an expression")


@dataclass(frozen=True)
class Expr:
    """A composable expression wrapper."""

    node: ast.Expr

    def _bin(self, op: str, other: "ExprLike", swapped: bool = False) -> "Expr":
        left, right = self.node, _to_expr(other)
        if swapped:
            left, right = right, left
        return Expr(ast.BinOp(op, left, right))

    def __add__(self, other):
        return self._bin("+", other)

    def __radd__(self, other):
        return self._bin("+", other, swapped=True)

    def __sub__(self, other):
        return self._bin("-", other)

    def __rsub__(self, other):
        return self._bin("-", other, swapped=True)

    def __mul__(self, other):
        return self._bin("*", other)

    def __rmul__(self, other):
        return self._bin("*", other, swapped=True)

    def __truediv__(self, other):
        return self._bin("/", other)

    def __rtruediv__(self, other):
        return self._bin("/", other, swapped=True)

    def __neg__(self):
        return Expr(ast.UnOp("-", self.node))

    def __gt__(self, other):
        return self._bin(">", other)

    def __lt__(self, other):
        return self._bin("<", other)


ExprLike = Union[Expr, ast.Expr, int, float, str]


def _subscript(item) -> ast.Subscript:
    if isinstance(item, ast.Index) or isinstance(item, ast.Triplet):
        return item
    if isinstance(item, slice):
        lo = None if item.start is None else _to_expr(item.start)
        hi = None if item.stop is None else _to_expr(item.stop)
        step = None if item.step is None else _to_expr(item.step)
        return ast.Triplet(lo, hi, step)
    if isinstance(item, str) and (":" in item or item.strip() == ":"):
        text = item.strip()
        if text == ":":
            return ast.Triplet(None, None, None)
        parts = _split_triplet(text)
        lo = _parse_expr(parts[0]) if parts[0] else None
        hi = _parse_expr(parts[1]) if len(parts) > 1 and parts[1] else None
        step = _parse_expr(parts[2]) if len(parts) > 2 and parts[2] else None
        return ast.Triplet(lo, hi, step)
    return ast.Index(_to_expr(item))


def _split_triplet(text: str) -> list[str]:
    """Split 'lo:hi:step' at top-level colons (parens protected)."""
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == ":" and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    parts.append("".join(cur))
    return parts


@dataclass(frozen=True)
class ArrayHandle:
    """A declared array; indexing produces reference expressions."""

    name: str

    def __getitem__(self, items) -> Expr:
        if not isinstance(items, tuple):
            items = (items,)
        return Expr(ast.ArrayRef(self.name, tuple(_subscript(i) for i in items)))

    def ref(self, *items) -> Expr:
        return self[items if len(items) != 1 else items[0]]


@dataclass(frozen=True)
class ScalarHandle:
    name: str

    @property
    def expr(self) -> Expr:
        return Expr(ast.VarRef(self.name))


@dataclass(frozen=True)
class TemplateHandle:
    name: str
    builder: "ProgramBuilder"

    def distribute(self, *formats: str, onto: str) -> "TemplateHandle":
        self.builder._decls.append(
            ast.DistributeDecl(self.name, tuple(formats), onto)
        )
        return self


def sum_of(ref: ExprLike) -> Expr:
    node = _to_expr(ref)
    if not isinstance(node, ast.ArrayRef):
        raise TypeError("SUM expects an array reference")
    return Expr(ast.Reduction("SUM", node))


def sqrt_of(value: ExprLike) -> Expr:
    return Expr(ast.Intrinsic("SQRT", (_to_expr(value),)))


@dataclass
class _BlockFrame:
    body: list[ast.Stmt] = field(default_factory=list)


class ProgramBuilder:
    """Fluent builder producing a numbered :class:`Program`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._decls: list[ast.Decl] = []
        self._frames: list[_BlockFrame] = [_BlockFrame()]

    # -- declarations ------------------------------------------------------------

    def param(self, name: str, value: int) -> ScalarHandle:
        self._decls.append(ast.ParamDecl(name, value))
        return ScalarHandle(name)

    def processors(self, name: str, *shape: int) -> str:
        self._decls.append(
            ast.ProcessorsDecl(name, tuple(ast.Num(s) for s in shape))
        )
        return name

    def template(self, name: str, *dims: ExprLike) -> TemplateHandle:
        self._decls.append(
            ast.TemplateDecl(name, tuple(_to_expr(d) for d in dims))
        )
        return TemplateHandle(name, self)

    def real(
        self,
        name: str,
        *dims: ExprLike,
        align: "TemplateHandle | ArrayHandle | str | None" = None,
        distribute: tuple[str, ...] | None = None,
        onto: str | None = None,
    ) -> "ArrayHandle | ScalarHandle":
        if not dims:
            self._decls.append(ast.ScalarDecl(name))
            return ScalarHandle(name)
        self._decls.append(
            ast.ArrayDecl(name, tuple(_to_expr(d) for d in dims))
        )
        if align is not None:
            target = align if isinstance(align, str) else align.name
            self._decls.append(ast.AlignDecl(name, target))
        if distribute is not None:
            if onto is None:
                raise ValueError("distribute requires onto=")
            self._decls.append(ast.DistributeDecl(name, distribute, onto))
        return ArrayHandle(name)

    # -- statements --------------------------------------------------------------

    def assign(self, lhs: "Expr | ScalarHandle", rhs: ExprLike) -> None:
        if isinstance(lhs, ScalarHandle):
            target: ast.VarRef | ast.ArrayRef = ast.VarRef(lhs.name)
        else:
            node = lhs.node
            if not isinstance(node, (ast.ArrayRef, ast.VarRef)):
                raise TypeError(f"cannot assign to {node!r}")
            target = node
        self._frames[-1].body.append(ast.Assign(target, _to_expr(rhs)))

    def do(self, var: str, lo: ExprLike, hi: ExprLike, step: ExprLike = 1):
        return _LoopContext(self, var, lo, hi, step)

    def if_(self, cond: ExprLike):
        return _IfContext(self, cond)

    # -- assembly ------------------------------------------------------------

    def build(self) -> ast.Program:
        if len(self._frames) != 1:
            raise ParseError("unclosed control-flow block in builder")
        program = ast.Program(self.name, list(self._decls),
                              list(self._frames[0].body))
        ast.number_statements(program)
        return program


class _LoopContext:
    def __init__(self, builder: ProgramBuilder, var, lo, hi, step) -> None:
        self.builder = builder
        self.var = var
        self.bounds = (_to_expr(lo), _to_expr(hi), _to_expr(step))

    def __enter__(self):
        self.builder._frames.append(_BlockFrame())
        return self

    def __exit__(self, exc_type, exc, tb):
        frame = self.builder._frames.pop()
        if exc_type is None:
            lo, hi, step = self.bounds
            self.builder._frames[-1].body.append(
                ast.Do(self.var, lo, hi, step, frame.body)
            )
        return False


class _IfContext:
    def __init__(self, builder: ProgramBuilder, cond) -> None:
        self.builder = builder
        self.cond = _to_expr(cond)
        self.then_body: list[ast.Stmt] | None = None

    def __enter__(self):
        self.builder._frames.append(_BlockFrame())
        return self

    def __exit__(self, exc_type, exc, tb):
        frame = self.builder._frames.pop()
        if exc_type is None:
            if self.then_body is None:
                self.builder._frames[-1].body.append(
                    ast.If(self.cond, frame.body, [])
                )
            else:
                self.builder._frames[-1].body.append(
                    ast.If(self.cond, self.then_body, frame.body)
                )
        return False

    def otherwise(self):
        """Close the then-branch and open the else-branch:

            with b.if_(cond) as branch:
                ...then statements...
                branch.otherwise()
                ...else statements...
        """
        frame = self.builder._frames[-1]
        self.then_body = list(frame.body)
        frame.body.clear()
        return self
