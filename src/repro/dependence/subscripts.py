"""Affine subscript extraction and loop-context normalization.

Dependence testing and section analysis both need array subscripts as
affine forms over *normalized* loop variables.  A :class:`LoopContext`
captures the loop nest around a statement: for each loop, its induction
variable, its affine bounds, and a zero-based, unit-stride normalization
``var = lo + step * var'``.  Normalization keeps stride information inside
the subscript coefficients, which is what makes the odd/even column
dependence test of the paper's Figure 4 exact (a GCD test sees the
``2*j`` coefficient instead of a strided loop range).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..affine import Affine, NonAffineError
from ..errors import DependenceError
from ..frontend import ast_nodes as ast
from ..frontend.analysis import ProgramInfo
from ..ir.cfg import Loop


@dataclass(frozen=True)
class NormalizedLoop:
    """One loop of a nest in normalized form.

    The original induction variable ``var`` relates to the normalized
    zero-based variable by ``var = lo + step * norm_var``; ``trip_max`` is
    the largest value of the normalized variable (so the trip count is
    ``trip_max + 1``), computed with outer loop ranges widened.
    """

    loop: Loop
    var: str
    norm_var: str
    lo: Affine  # in terms of *normalized* outer variables
    step: int
    trip_max: int

    @property
    def depth(self) -> int:
        return self.loop.depth


class LoopContext:
    """The normalized loop nest enclosing one statement."""

    def __init__(self, info: ProgramInfo, loops: list[Loop], tag: str) -> None:
        """``loops`` must be outermost-first; ``tag`` disambiguates the
        normalized variable names between the two sides of a dependence
        test."""
        self.info = info
        self.loops: list[NormalizedLoop] = []
        self._subst: dict[str, Affine] = {}  # original var -> affine in norm vars
        self._ranges: dict[str, tuple[int, int]] = {}  # norm var -> [0, trip_max]

        for loop in loops:
            stmt = loop.stmt
            try:
                lo = info.affine(stmt.lo).substitute_all(self._subst)
                hi = info.affine(stmt.hi).substitute_all(self._subst)
                step_form = info.affine(stmt.step)
            except NonAffineError as exc:
                raise DependenceError(
                    f"loop {loop.var!r} bounds are not affine: {exc}"
                ) from None
            if not step_form.is_constant or step_form.const == 0:
                raise DependenceError(
                    f"loop {loop.var!r} step must be a nonzero constant"
                )
            step = step_form.const
            if step < 0:
                raise DependenceError(
                    f"loop {loop.var!r}: negative steps are not supported"
                )
            norm_var = f"{loop.var}'{tag}{loop.depth}"
            # Trip count bound via interval arithmetic over outer ranges.
            lo_min, lo_max = lo.interval(self._ranges)
            hi_min, hi_max = hi.interval(self._ranges)
            trip_max = (hi_max - lo_min) // step
            if trip_max < 0:
                trip_max = 0  # possibly zero-trip loop; keep a degenerate range
            self.loops.append(
                NormalizedLoop(loop, loop.var, norm_var, lo, step, trip_max)
            )
            self._subst[loop.var] = lo + Affine.symbol(norm_var, step)
            self._ranges[norm_var] = (0, trip_max)

    @property
    def norm_ranges(self) -> dict[str, tuple[int, int]]:
        return dict(self._ranges)

    def normalize(self, form: Affine) -> Affine:
        """Rewrite a subscript affine form into normalized variables."""
        return form.substitute_all(self._subst)

    def subscript_forms(self, ref: ast.ArrayRef) -> list[Affine]:
        """Affine forms (normalized) of every subscript of an element
        reference.  Section subscripts are widened to their full triplet
        handled elsewhere; here they are rejected."""
        forms: list[Affine] = []
        for sub in ref.subscripts:
            if isinstance(sub, ast.Triplet):
                raise DependenceError(
                    f"sectioned subscript {sub} reached dependence testing "
                    f"(scalarize first)"
                )
            try:
                form = self.info.affine(sub.expr)
            except NonAffineError as exc:
                raise DependenceError(
                    f"non-affine subscript {sub.expr} in {ref}: {exc}"
                ) from None
            forms.append(self.normalize(form))
        return forms


def common_prefix_length(a: list[Loop], b: list[Loop]) -> int:
    """Number of leading loops shared by two outermost-first loop chains."""
    n = 0
    for la, lb in zip(a, b):
        if la is lb:
            n += 1
        else:
            break
    return n
