"""Array dependence testing with direction vectors (paper §4.2's
``IsArrayDep`` substrate).

For a (def, use) pair on the same array the tester decides, conservatively,
at which common-loop levels a flow dependence ``def → use`` may be carried,
and whether a loop-independent dependence exists.  The test is a
GCD-plus-Banerjee interval test per array dimension under hierarchical
direction constraints, on *normalized* (zero-based, unit-stride) loop
variables; normalization makes strided-section writes (the paper's
odd/even columns in Figure 4) exact under the GCD test.

Conservativeness: "may depend" answers are always safe for the placement
algorithm — they only make ``Earliest`` later and ``Latest`` earlier.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from ..affine import Affine, NonAffineError
from ..errors import DependenceError
from ..frontend import ast_nodes as ast
from ..frontend.analysis import ProgramInfo
from ..ir.cfg import CFG, Loop
from ..perf.stats import CacheStats
from .subscripts import LoopContext, common_prefix_length

_fresh = itertools.count()


@dataclass(frozen=True)
class DepResult:
    """Outcome of a flow-dependence query for one (def, use) pair.

    ``carried_levels`` holds every common-loop level (1-based, outermost
    first) at which a dependence may be carried; ``loop_independent`` is
    True when the def may write data the use reads within the same
    iteration of all common loops (with the def preceding the use).
    ``cnl`` is the number of common loops.
    """

    carried_levels: frozenset[int]
    loop_independent: bool
    cnl: int

    @property
    def exists(self) -> bool:
        return self.loop_independent or bool(self.carried_levels)

    def max_level(self) -> int:
        """The paper's DepLevel contribution: deepest carried level, or
        ``cnl`` for a loop-independent dependence, or 0 for none."""
        best = 0
        if self.carried_levels:
            best = max(self.carried_levels)
        if self.loop_independent:
            best = max(best, self.cnl)
        return best

    def at_level(self, level: int) -> bool:
        """The paper's IsArrayDep(d, u, l): a dependence with direction
        components zero above ``level`` — i.e. carried at some level >=
        ``level``, or loop-independent.  ``level`` may be 0 (no common
        loops): any dependence qualifies."""
        if level > self.cnl:
            return False
        if any(l >= level for l in self.carried_levels):
            return True
        return self.loop_independent


NO_DEP = DepResult(frozenset(), False, 0)


@dataclass
class _RefForms:
    """Normalized affine subscript forms for one reference, with the free
    ranges of its private (non-common) variables."""

    forms: list[Affine]
    ranges: dict[str, tuple[int, int]]
    common_vars: list[str]  # normalized names of the common-loop variables
    common_trips: list[int]


class DependenceTester:
    """Flow-dependence queries over one program's CFG."""

    def __init__(
        self,
        info: ProgramInfo,
        cfg: CFG,
        cache_enabled: bool = True,
        stats: "CacheStats | None" = None,
    ) -> None:
        self.info = info
        self.cfg = cfg
        self.cache_enabled = cache_enabled
        self.stats = stats
        self._cache: dict[tuple, DepResult] = {}
        # LoopContext is a pure function of (loop chain, tag): normalized
        # names derive from loop var/depth, no fresh symbols are minted.
        self._loopctx_cache: dict[tuple, LoopContext] = {}

    def precedes_forward(
        self, def_stmt: ast.Assign, use_stmt: ast.Assign
    ) -> bool:
        """May the def execute before the use in the same iteration of all
        their common loops?

        The language is structured (DO/IF, no GOTO), so within one
        iteration of every common loop the statements execute in textual
        order: preorder ``sid`` comparison is exact for straight-line
        sequences and conservative (may answer True) for statements in
        sibling branches of an IF, which can never both run — a safe
        over-approximation for placement.
        """
        return def_stmt.sid < use_stmt.sid

    # -- main query ---------------------------------------------------------

    def flow_dependence(
        self,
        def_stmt: ast.Assign,
        def_ref: ast.ArrayRef,
        use_stmt: ast.Assign,
        use_ref: ast.ArrayRef,
    ) -> DepResult:
        """May ``def_ref`` (written by ``def_stmt``) produce a value read by
        ``use_ref`` (in ``use_stmt``)?  Returns the carried levels and the
        loop-independent flag."""
        if def_ref.name != use_ref.name:
            raise DependenceError("flow_dependence called on different arrays")
        if not self.cache_enabled:
            return self._test(def_stmt, def_ref, use_stmt, use_ref)
        key = (def_stmt.sid, id(def_ref), use_stmt.sid, id(use_ref))
        cached = self._cache.get(key)
        if cached is not None:
            if self.stats is not None:
                self.stats.hits += 1
            return cached
        if self.stats is not None:
            self.stats.misses += 1
        result = self._test(def_stmt, def_ref, use_stmt, use_ref)
        self._cache[key] = result
        return result

    def _test(
        self,
        def_stmt: ast.Assign,
        def_ref: ast.ArrayRef,
        use_stmt: ast.Assign,
        use_ref: ast.ArrayRef,
    ) -> DepResult:
        def_node = self.cfg.node_of_stmt(def_stmt)
        use_node = self.cfg.node_of_stmt(use_stmt)
        def_loops = def_node.loops_containing()
        use_loops = use_node.loops_containing()
        cnl = common_prefix_length(def_loops, use_loops)

        try:
            d = self._ref_forms(def_ref, def_loops, cnl, side="d")
            u = self._ref_forms(use_ref, use_loops, cnl, side="u")
        except DependenceError:
            # Non-affine subscripts: assume everything, conservatively.
            levels = frozenset(range(1, cnl + 1))
            independent = self.precedes_forward(def_stmt, use_stmt)
            return DepResult(levels, independent, cnl)

        carried = frozenset(
            level
            for level in range(1, cnl + 1)
            if self._feasible(d, u, cnl, carried_level=level)
        )
        independent = self._feasible(
            d, u, cnl, carried_level=None
        ) and self.precedes_forward(def_stmt, use_stmt)
        return DepResult(carried, independent, cnl)

    # -- reference forms -------------------------------------------------------

    def _ref_forms(
        self, ref: ast.ArrayRef, loops: list[Loop], cnl: int, side: str
    ) -> _RefForms:
        """Normalized subscript forms.  Common loops (first ``cnl``) are
        named consistently between the two sides so equality constraints
        can be expressed by renaming; deeper loops and triplet dimensions
        get side-private variables."""
        ctx = self._loop_context(loops, side)
        ranges = ctx.norm_ranges
        common_vars = [nl.norm_var for nl in ctx.loops[:cnl]]
        common_trips = [nl.trip_max for nl in ctx.loops[:cnl]]

        forms: list[Affine] = []
        for dim, sub in enumerate(ref.subscripts):
            if isinstance(sub, ast.Index):
                try:
                    form = self.info.affine(sub.expr)
                except NonAffineError as exc:
                    raise DependenceError(str(exc)) from None
                forms.append(ctx.normalize(form))
            else:
                # A triplet (reduction argument): a free variable over the
                # section.
                lo, count_max, step = self._triplet_bounds(ref.name, dim, sub, ctx)
                var = f"_t{side}{next(_fresh)}"
                ranges[var] = (0, count_max)
                forms.append(lo + Affine.symbol(var, step))
        return _RefForms(forms, ranges, common_vars, common_trips)

    def _loop_context(self, loops: list[Loop], tag: str) -> LoopContext:
        if not self.cache_enabled:
            return LoopContext(self.info, loops, tag=tag)
        key = (tag, tuple(l.stmt.sid for l in loops))
        ctx = self._loopctx_cache.get(key)
        if ctx is None:
            ctx = LoopContext(self.info, loops, tag=tag)
            self._loopctx_cache[key] = ctx
        return ctx

    def _triplet_bounds(
        self, array: str, dim: int, sub: ast.Triplet, ctx: LoopContext
    ) -> tuple[Affine, int | None, int]:
        extent = self.info.shape(array)[dim]
        lo = (
            Affine.constant(1)
            if sub.lo is None
            else ctx.normalize(self.info.affine(sub.lo))
        )
        hi = (
            Affine.constant(extent)
            if sub.hi is None
            else ctx.normalize(self.info.affine(sub.hi))
        )
        step_form = (
            Affine.constant(1) if sub.step is None else self.info.affine(sub.step)
        )
        if not step_form.is_constant or step_form.const < 1:
            raise DependenceError(f"triplet step must be a positive constant")
        step = step_form.const
        # Conservative count bound via intervals.
        lo_min, _ = lo.interval(ctx.norm_ranges)
        _, hi_max = hi.interval(ctx.norm_ranges)
        count_max = max(0, (hi_max - lo_min) // step)
        return lo, count_max, step

    # -- feasibility under a direction constraint ---------------------------------

    def _feasible(
        self, d: _RefForms, u: _RefForms, cnl: int, carried_level: int | None
    ) -> bool:
        """Is the system ``f_d(I) == g_u(I')`` feasible with I, I' related
        by the direction constraint: equal above ``carried_level``,
        ``I < I'`` at it, free below (or equal everywhere for
        ``carried_level=None``)?"""
        # Build the renaming of u's common variables.
        subst: dict[str, Affine] = {}
        ranges: dict[str, tuple[int, int]] = dict(d.ranges)
        for j in range(cnl):
            d_var, u_var = d.common_vars[j], u.common_vars[j]
            trip = min(d.common_trips[j], u.common_trips[j])
            if carried_level is None or j + 1 < carried_level:
                subst[u_var] = Affine.symbol(d_var)
            elif j + 1 == carried_level:
                if trip < 1:
                    return False  # cannot have two distinct iterations
                delta = f"_delta{j}"
                subst[u_var] = Affine.symbol(d_var) + Affine.symbol(delta)
                ranges[delta] = (1, trip)
            # deeper than the carried level: leave u's variable free
        for var, r in u.ranges.items():
            if var not in subst:
                ranges.setdefault(var, r)

        for f, g in zip(d.forms, u.forms):
            h = f - g.substitute_all(subst)
            # GCD test.
            if h.coeffs:
                gcd = math.gcd(*[abs(c) for c in h.coeffs.values()])
                if gcd and h.const % gcd != 0:
                    return False
            elif h.const != 0:
                return False
            # Interval (Banerjee-style) test.
            try:
                lo, hi = h.interval(ranges)
            except NonAffineError:
                continue  # unknown symbol (e.g. unresolved scalar): assume feasible
            if not (lo <= 0 <= hi):
                return False
        return True
