"""Array dependence analysis with direction vectors."""

from .tests import DepResult, DependenceTester, NO_DEP

__all__ = ["DepResult", "DependenceTester", "NO_DEP"]
