"""repro — a reproduction of *Global Communication Analysis and
Optimization* (Chakrabarti, Gupta, Choi; PLDI 1996).

The package implements the paper's global communication-placement
algorithm for data-parallel (HPF-style) programs, together with every
substrate it needs: a mini-HPF frontend with scalarizer, an augmented CFG
with SSA over preserving array defs, array dependence testing with
direction vectors, the Available-Section-Descriptor algebra, the three
compiler versions evaluated in the paper (``orig`` / ``nored`` /
``comb``), a bulk-synchronous machine-model simulator standing in for the
IBM SP2 and the Berkeley NOW, and a concrete schedule-safety checker.

Quick start::

    from repro import compile_program, Strategy, schedule_report

    result = compile_program(SOURCE, strategy=Strategy.GLOBAL)
    print(schedule_report(result))
    print(result.call_sites_by_kind())

See ``examples/`` for runnable end-to-end scenarios and ``DESIGN.md`` for
the experiment index.
"""

from .codegen.report import annotated_listing, schedule_report
from .codegen.spmd import lower_schedule
from .core.context import AnalysisContext, CompilerOptions
from .core.pipeline import (
    CompilationResult,
    Strategy,
    compile_all_strategies,
    compile_program,
)
from .errors import (
    CodegenError,
    DependenceError,
    LexError,
    ParseError,
    PlacementError,
    ReproError,
    ScalarizationError,
    SemanticError,
    SimulationError,
)
from .frontend.analysis import ProgramInfo, elaborate
from .frontend.parser import parse
from .frontend.scalarizer import scalarize
from .machine.model import MACHINES, NOW, SP2, MachineModel
from .runtime.checker import check_schedule
from .runtime.interp import interpret
from .runtime.simulator import SimReport, simulate

__version__ = "1.0.0"

__all__ = [
    "AnalysisContext",
    "CompilationResult",
    "CompilerOptions",
    "CodegenError",
    "DependenceError",
    "LexError",
    "MACHINES",
    "MachineModel",
    "NOW",
    "ParseError",
    "PlacementError",
    "ProgramInfo",
    "ReproError",
    "SP2",
    "ScalarizationError",
    "SemanticError",
    "SimReport",
    "SimulationError",
    "Strategy",
    "annotated_listing",
    "check_schedule",
    "compile_all_strategies",
    "compile_program",
    "elaborate",
    "interpret",
    "lower_schedule",
    "parse",
    "scalarize",
    "schedule_report",
    "simulate",
]
