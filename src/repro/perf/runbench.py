"""Runtime benchmark harness: vectorized vs element-wise SPMD execution.

``python -m repro bench --spmd`` runs every Figure 10 benchmark through
the SPMD executor twice — once with the plan-compiled vectorized runtime
and once with the element-wise reference path — and writes
``BENCH_spmd.json``.  Per program it reports:

* wall time and elements/s for both paths, and the speedup;
* the plan-compile vs execute split of the vectorized run (the
  inspector/executor cost breakdown);
* how many statements vectorized vs fell back, with the vectorizer's
  reason for every fallback (the bench's degradation report);
* the full :class:`~repro.perf.stats.RuntimeStats` counters (messages,
  bytes, bcopy calls, plan-cache traffic) for both paths — the executed
  counterparts of the §6.1 simulator's predictions, which are recorded
  alongside so static model drift is visible in the diff;
* a bitwise-identity verdict: the two paths' assembled final arrays must
  be exactly equal (``correctness.bitwise_identical``).

Problem sizes are pinned per program (``RUN_PARAMS``) rather than taken
from the sources' PARAM defaults: the shallow-water model diverges to
non-finite values after ~10 steps at n=64, and the staleness oracle
cannot (by design) tell NaN from corruption, so the bench runs the
largest sizes that stay finite.  ``--quick`` switches to the test suite's
small sizes for CI smoke runs.
"""

from __future__ import annotations

import json
import time
from typing import Any

import numpy as np

from ..core.pipeline import CompilationResult, Strategy, compile_program
from ..cost.lower_bound import lower_bound
from ..machine.model import MACHINES
from ..runtime.simulator import simulate
from ..runtime.spmd import SPMDExecutor
from .stats import environment_metadata

#: Largest numerically stable sizes (see module docstring); 2x2 grid so
#: the element-wise baseline finishes in minutes.
RUN_PARAMS: dict[str, dict[str, int]] = {
    "shallow": {"n": 64, "nsteps": 8, "pr": 2, "pc": 2},
    "gravity": {"n": 32, "pr": 2, "pc": 2},
    "trimesh": {"n": 48, "nsweeps": 4, "pr": 2, "pc": 2},
    "trimesh_gauss": {"n": 48, "nsweeps": 4, "pr": 2, "pc": 2},
    "hydflo_flux": {"n": 32, "nsteps": 1, "pr": 2, "pc": 2},
    "hydflo_hydro": {"n": 32, "nsteps": 2, "pr": 2, "pc": 2},
}

#: CI smoke sizes (the test suite's SMALL parameters).
QUICK_PARAMS: dict[str, dict[str, int]] = {
    "shallow": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
    "gravity": {"n": 8, "pr": 2, "pc": 2},
    "trimesh": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "trimesh_gauss": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "hydflo_flux": {"n": 8, "nsteps": 1, "pr": 2, "pc": 2},
    "hydflo_hydro": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
}


def _run_executor(
    result: CompilationResult, vectorize: bool
) -> tuple[float, dict[str, np.ndarray], Any, "SPMDExecutor"]:
    t0 = time.perf_counter()
    executor = SPMDExecutor(result, vectorize=vectorize)
    stats = executor.run()
    wall = time.perf_counter() - t0
    return wall, executor.assemble(), stats, executor


def bench_program(
    name: str,
    source: str,
    params: dict[str, int],
    strategy: Strategy = Strategy.GLOBAL,
) -> dict[str, Any]:
    """Run one program both ways and compare."""
    result = compile_program(source, params=params, strategy=strategy)

    vec_wall, vec_state, vec_stats, executor = _run_executor(
        result, vectorize=True
    )
    elem_wall, elem_state, elem_stats, _ = _run_executor(
        result, vectorize=False
    )

    identical = set(vec_state) == set(elem_state) and all(
        np.array_equal(vec_state[k], elem_state[k]) for k in vec_state
    )
    counters_match = (
        vec_stats.messages == elem_stats.messages
        and vec_stats.bytes_moved == elem_stats.bytes_moved
        and vec_stats.remote_reads == elem_stats.remote_reads
        and vec_stats.reductions == elem_stats.reductions
    )

    # Work unit: elements written by vectorized nests plus one per
    # element-wise assignment firing; identical across both paths by the
    # bitwise-identity check, so elements/s is directly comparable.
    elements = vec_stats.elements_written + vec_stats.fallback_firings
    lb = lower_bound(result.info)
    report = simulate(
        result, MACHINES["SP2"], lower_bound_bytes=lb.wire_floor_bytes
    )

    return {
        "params": params,
        "strategy": strategy.value,
        "elements": elements,
        "vectorized": {
            "wall_s": round(vec_wall, 4),
            "plan_compile_s": round(vec_stats.plan_compile_s, 4),
            "execute_s": round(vec_wall - vec_stats.plan_compile_s, 4),
            "elements_per_s": round(elements / vec_wall) if vec_wall else None,
            "stats": vec_stats.as_dict(),
        },
        "elementwise": {
            "wall_s": round(elem_wall, 4),
            "elements_per_s": (
                round(elements / elem_wall) if elem_wall else None
            ),
            "stats": elem_stats.as_dict(),
        },
        "speedup": round(elem_wall / vec_wall, 2) if vec_wall else None,
        "vectorization": {
            "vectorized_nests": len(executor.nest_plans),
            "fallback_statements": len(executor.fallback_reasons),
            "fallback_reasons": {
                f"s{sid}": reason
                for sid, reason in sorted(executor.fallback_reasons.items())
            },
            "vectorized_firings": vec_stats.vectorized_firings,
            "fallback_firings": vec_stats.fallback_firings,
        },
        "correctness": {
            "bitwise_identical": identical,
            "counters_match": counters_match,
            "compile_degradations": len(result.degradations),
        },
        "simulator_check": {
            "predicted_messages_per_proc": report.messages_per_proc,
            "predicted_bytes_per_proc": report.bytes_per_proc,
            "executed_messages": vec_stats.messages,
            "executed_bytes": vec_stats.bytes_moved,
        },
        "lower_bound": {
            **lb.as_dict(),
            "bytes_moved": vec_stats.bytes_moved,
            "ratio": lb.ratio(vec_stats.bytes_moved),
            "sound": lb.sound_for(vec_stats.bytes_moved),
        },
    }


def run_spmd_bench(
    quick: bool = False, strategy: Strategy = Strategy.GLOBAL
) -> dict[str, Any]:
    from ..evaluation.programs import BENCHMARKS

    sizes = QUICK_PARAMS if quick else RUN_PARAMS
    programs = {
        name: bench_program(name, BENCHMARKS[name], sizes[name], strategy)
        for name in sorted(BENCHMARKS)
    }
    degraded = sorted(
        name
        for name, p in programs.items()
        if not p["correctness"]["bitwise_identical"]
        or not p["correctness"]["counters_match"]
    )
    unsound = sorted(
        name
        for name, p in programs.items()
        if not p["lower_bound"]["sound"]
    )
    return {
        "mode": "quick" if quick else "full",
        "strategy": strategy.value,
        "environment": environment_metadata(),
        "programs": programs,
        "degradations": degraded,
        "lower_bound_violations": unsound,
        "ok": not degraded and not unsound,
    }


def write_spmd_bench(
    path: str = "BENCH_spmd.json",
    quick: bool = False,
    strategy: Strategy = Strategy.GLOBAL,
) -> dict[str, Any]:
    payload = run_spmd_bench(quick=quick, strategy=strategy)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    import os

    from .history import append_history, spmd_headline

    append_history(
        "spmd", spmd_headline(payload),
        directory=os.path.dirname(os.path.abspath(path)),
    )
    return payload


def format_spmd_bench(payload: dict[str, Any]) -> str:
    lines = [
        f"{'program':16s} {'vec':>9s} {'elem':>9s} {'speedup':>8s} "
        f"{'elem/s':>12s} {'nests':>6s} {'fb':>4s} {'exact':>6s} "
        f"{'b/LB':>6s}"
    ]
    for name, p in payload["programs"].items():
        vec = p["vectorized"]
        ratio = p["lower_bound"]["ratio"]
        ratio_s = f"{ratio:6.2f}" if ratio is not None else f"{'n/a':>6s}"
        lines.append(
            f"{name:16s} {vec['wall_s'] * 1000:7.1f}ms "
            f"{p['elementwise']['wall_s'] * 1000:7.1f}ms "
            f"{p['speedup']:7.1f}x {vec['elements_per_s']:>12,} "
            f"{p['vectorization']['vectorized_nests']:6d} "
            f"{p['vectorization']['fallback_statements']:4d} "
            f"{'yes' if p['correctness']['bitwise_identical'] else 'NO':>6s} "
            f"{ratio_s}"
        )
    if payload["degradations"]:
        lines.append(f"DEGRADED: {', '.join(payload['degradations'])}")
    else:
        lines.append(
            "all programs bitwise-identical to the element-wise executor"
        )
    return "\n".join(lines)
