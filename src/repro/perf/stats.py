"""Cache and runtime instrumentation: counters with derived rates.

Every memoized verdict cache in the pipeline records its traffic in a
:class:`CacheStats`, aggregated per :class:`~repro.core.context.AnalysisContext`
in a :class:`CacheStatsRegistry`.  The perf-regression harness
(:mod:`repro.perf.bench`) reads these to report hit rates in
``BENCH_compile.json``; nothing else depends on them, so the counters are
plain ints (no locks — a context is single-threaded by construction).

:class:`RuntimeStats` is the execution-side counterpart: the SPMD
executor (:mod:`repro.runtime.spmd`) counts messages, bytes, block
copies, plan-cache traffic, and vectorized-vs-fallback statement firings
in one; the runtime bench harness (:mod:`repro.perf.runbench`) serializes
it into ``BENCH_spmd.json``.  :func:`environment_metadata` stamps both
bench payloads so trajectories across machines/PRs stay comparable.
"""

from __future__ import annotations

import os
import platform
import sys
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    name: str
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / lookups, 0.0 when the cache was never consulted."""
        n = self.lookups
        return self.hits / n if n else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"<cache {self.name}: {self.hits}/{self.lookups} hits "
            f"({self.hit_rate:.0%})>"
        )


@dataclass
class CacheStatsRegistry:
    """All cache counters of one compilation context."""

    stats: dict[str, CacheStats] = field(default_factory=dict)

    def get(self, name: str) -> CacheStats:
        entry = self.stats.get(name)
        if entry is None:
            entry = self.stats[name] = CacheStats(name)
        return entry

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        return {name: s.as_dict() for name, s in sorted(self.stats.items())}


@dataclass
class RuntimeStats:
    """Execution counters for one SPMD run.

    The movement counters (``messages``, ``bytes_moved``, ``reductions``,
    ``remote_reads``) are the paper's §6.1 executed-cost numbers — the
    quantities the simulator predicts statically.  The rest instrument
    the plan-compile-then-execute runtime itself: ``bcopy_calls`` counts
    block extract/install operations (the runtime's unit of data
    movement), ``plan_compiles``/``plan_cache_hits`` the communication-
    plan cache, and ``vectorized_firings``/``fallback_firings`` how many
    loop-nest executions ran as whole-block numpy operations versus the
    element-wise interpreter path.

    The kernel counters instrument the fused-codegen layer
    (:mod:`repro.runtime.kernels`): ``kernel_compiles``/
    ``kernel_cache_hits`` the per-geometry KernelCache,
    ``kernel_firings`` how many executions ran emitted straight-line
    code, ``plan_translations`` how many CommPlan cache hits were served
    by translating a canonical plan to a shifted offset, and
    ``kernel_tier``/``kernel_fallback_reason`` which compute tier ran
    and why a requested tier degraded (empty string: no degradation).
    """

    messages: int = 0
    bytes_moved: int = 0
    reductions: int = 0
    remote_reads: int = 0
    bcopy_calls: int = 0
    elements_written: int = 0
    plan_compiles: int = 0
    plan_cache_hits: int = 0
    plan_translations: int = 0
    vectorized_firings: int = 0
    fallback_firings: int = 0
    kernel_firings: int = 0
    kernel_compiles: int = 0
    kernel_cache_hits: int = 0
    kernel_tier: str = "off"
    kernel_fallback_reason: str = ""
    plan_compile_s: float = 0.0
    # Fault-tolerance counters, synced from the transport's WireStats
    # after each run (all zero without chaos / a transport backend).
    faults_injected: int = 0
    faults_detected: int = 0
    retransmits: int = 0
    rank_restarts: int = 0
    recovery_s: float = 0.0
    #: Runtime degradation records (see :class:`repro.transport.chaos.
    #: RuntimeDegradationEvent.to_dict`), in occurrence order.
    degradations: list = field(default_factory=list)

    @property
    def plan_hit_rate(self) -> float:
        n = self.plan_compiles + self.plan_cache_hits
        return self.plan_cache_hits / n if n else 0.0

    def sync_faults(self, wire) -> None:
        """Absorb the fault-tolerance counters of a transport's
        :class:`~repro.transport.base.WireStats` (additive, so the
        counters survive a degraded re-execution on a fresh backend)."""
        if wire is None:
            return
        self.faults_injected += wire.faults_injected
        self.faults_detected += wire.faults_detected
        self.retransmits += wire.retransmits
        self.rank_restarts += wire.restarts
        self.recovery_s += wire.recovery_s

    def as_dict(self) -> dict[str, float | int]:
        return {
            "messages": self.messages,
            "bytes_moved": self.bytes_moved,
            "reductions": self.reductions,
            "remote_reads": self.remote_reads,
            "bcopy_calls": self.bcopy_calls,
            "elements_written": self.elements_written,
            "plan_compiles": self.plan_compiles,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_translations": self.plan_translations,
            "plan_hit_rate": round(self.plan_hit_rate, 4),
            "vectorized_firings": self.vectorized_firings,
            "fallback_firings": self.fallback_firings,
            "kernel_firings": self.kernel_firings,
            "kernel_compiles": self.kernel_compiles,
            "kernel_cache_hits": self.kernel_cache_hits,
            "kernel_tier": self.kernel_tier,
            "kernel_fallback_reason": self.kernel_fallback_reason,
            "plan_compile_s": round(self.plan_compile_s, 6),
            "faults_injected": self.faults_injected,
            "faults_detected": self.faults_detected,
            "retransmits": self.retransmits,
            "rank_restarts": self.rank_restarts,
            "recovery_s": round(self.recovery_s, 6),
            "degradations": list(self.degradations),
        }


def environment_metadata() -> dict[str, "str | int"]:
    """The machine/interpreter fingerprint stamped into bench payloads."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "system": platform.system(),
        "hostname": platform.node(),
        "executable": sys.executable,
    }
