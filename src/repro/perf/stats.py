"""Cache instrumentation: cheap hit/miss counters with derived rates.

Every memoized verdict cache in the pipeline records its traffic in a
:class:`CacheStats`, aggregated per :class:`~repro.core.context.AnalysisContext`
in a :class:`CacheStatsRegistry`.  The perf-regression harness
(:mod:`repro.perf.bench`) reads these to report hit rates in
``BENCH_compile.json``; nothing else depends on them, so the counters are
plain ints (no locks — a context is single-threaded by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    name: str
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / lookups, 0.0 when the cache was never consulted."""
        n = self.lookups
        return self.hits / n if n else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"<cache {self.name}: {self.hits}/{self.lookups} hits "
            f"({self.hit_rate:.0%})>"
        )


@dataclass
class CacheStatsRegistry:
    """All cache counters of one compilation context."""

    stats: dict[str, CacheStats] = field(default_factory=dict)

    def get(self, name: str) -> CacheStats:
        entry = self.stats.get(name)
        if entry is None:
            entry = self.stats[name] = CacheStats(name)
        return entry

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        return {name: s.as_dict() for name, s in sorted(self.stats.items())}
