"""Parallel batch compilation with content-hash result caching.

A build driver sitting on top of :func:`repro.core.pipeline.compile_program`:
it takes a list of :class:`BatchJob`\\ s, deduplicates them by a sha256
*content hash* over everything that determines the schedule (source text,
parameter bindings, strategy, and every :class:`CompilerOptions` field),
compiles distinct jobs — across processes when ``workers > 1`` — and
returns picklable :class:`BatchResult` summaries.

The result cache is a :class:`repro.perf.cache.ScheduleCache` — the same
two-tier implementation behind the compile service — persisting across
:meth:`BatchCompiler.run` calls (and, with ``cache_dir``, across
processes via the content-addressed disk tier), so a driver recompiling
a mostly unchanged program set (the common edit-compile loop) only pays
for the files whose content actually changed.  Full :class:`CompilationResult`
objects hold ASTs and analysis state and are deliberately *not* shipped
between processes; workers reduce them to summaries first.

Crash safety (see ``docs/ROBUSTNESS.md``):

* a :class:`RetryPolicy` gives every pooled job a wall-clock **timeout**
  and a bounded number of **retries** with exponential backoff after a
  timeout or a worker crash (``BrokenProcessPool``); the poisoned pool is
  killed and rebuilt, and retries run one job at a time so the culprit is
  attributed exactly;
* inputs that keep failing are **quarantined**: they get a structured
  error result, are never retried again by this compiler instance, and
  never take the rest of the batch down with them;
* an optional **checkpoint file** persists every finished result as it
  lands (atomic rename), so a killed ``run`` restarted with the same
  checkpoint path resumes where it left off and returns the same results
  an uninterrupted run would.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field as dc_field, fields
from typing import Callable, Iterable, Optional

from ..core.context import CompilerOptions
from ..core.pipeline import Strategy, compile_program
from .cache import ScheduleCache


@dataclass(frozen=True)
class BatchJob:
    """One compilation request."""

    name: str
    source: str
    params: Optional[dict[str, int]] = None
    strategy: str = "comb"
    options: Optional[CompilerOptions] = None


@dataclass
class BatchResult:
    """Picklable summary of one compile (no ASTs, no analysis objects)."""

    name: str
    key: str
    strategy: str
    call_sites: int
    call_sites_by_kind: dict[str, int]
    entries: int
    eliminated: int
    elapsed: float
    from_cache: bool = False
    error: str = ""
    pass_times_ms: dict[str, float] = dc_field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.error


def job_key(job: BatchJob) -> str:
    """Content hash over everything that determines the schedule."""
    h = hashlib.sha256()
    h.update(job.source.encode())
    for name, value in sorted((job.params or {}).items()):
        h.update(f"|{name}={value}".encode())
    h.update(f"|strategy={Strategy.parse(job.strategy).value}".encode())
    options = job.options or CompilerOptions()
    for f in fields(CompilerOptions):
        h.update(f"|{f.name}={getattr(options, f.name)}".encode())
    return h.hexdigest()


def _compile_job(job: BatchJob, key: str) -> BatchResult:
    """Worker body: compile one job and reduce it to a summary."""
    start = time.perf_counter()
    try:
        result = compile_program(
            job.source, job.params, job.strategy, job.options
        )
    except Exception as exc:  # surface, don't kill the batch
        return BatchResult(
            name=job.name,
            key=key,
            strategy=Strategy.parse(job.strategy).value,
            call_sites=0,
            call_sites_by_kind={},
            entries=0,
            eliminated=0,
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    pass_times: dict[str, float] = {}
    for trace in result.pass_traces:
        pass_times[trace.name] = (
            pass_times.get(trace.name, 0.0) + trace.wall_s * 1000
        )
    return BatchResult(
        name=job.name,
        key=key,
        strategy=result.strategy.value,
        call_sites=result.call_sites(),
        call_sites_by_kind=result.call_sites_by_kind(),
        entries=len(result.entries),
        eliminated=len(result.eliminated_entries()),
        elapsed=time.perf_counter() - start,
        pass_times_ms={k: round(v, 3) for k, v in pass_times.items()},
    )


def kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool that may hold a stuck or dead worker.  Shared
    with the compile service, whose retry ladder has the same problem:
    a cancelled future does not stop the worker process holding it."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except (OSError, ValueError):
            pass
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class BatchStats:
    jobs: int = 0
    compiled: int = 0
    cache_hits: int = 0
    deduped: int = 0
    errors: int = 0
    elapsed: float = 0.0
    timeouts: int = 0
    retries: int = 0
    quarantined: int = 0
    resumed: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.jobs if self.jobs else 0.0


@dataclass(frozen=True)
class RetryPolicy:
    """Fault policy for pooled compilation.

    ``timeout`` is per-job wall-clock seconds (``None`` disables it; a
    timeout forces pooled execution even with one worker, since an
    in-process compile cannot be interrupted).  A job that times out or
    whose worker crashes is retried up to ``max_retries`` times, sleeping
    ``backoff * 2**(attempt-1)`` seconds first.  After
    ``quarantine_after`` failed attempts (or when retries run out) the
    input is quarantined: it gets an error result and is never run again
    by this compiler instance.
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.1
    quarantine_after: int = 3


def _failure_result(job: BatchJob, key: str, message: str) -> BatchResult:
    return BatchResult(
        name=job.name,
        key=key,
        strategy=Strategy.parse(job.strategy).value,
        call_sites=0,
        call_sites_by_kind={},
        entries=0,
        eliminated=0,
        elapsed=0.0,
        error=message,
    )


def _result_from_dict(rec: object) -> Optional[BatchResult]:
    """Rehydrate a cached/checkpointed record; None on schema drift."""
    if not isinstance(rec, dict):
        return None
    try:
        return BatchResult(**rec)
    except TypeError:
        return None  # field mismatch from an older version: recompile


class BatchCompiler:
    """Compiles job lists, reusing results for unchanged content.

    ``workers > 1`` fans distinct jobs out over a process pool; the
    default (1) compiles serially in-process, which on a single-core
    machine is also the fastest configuration.  ``policy`` bounds each
    pooled job (timeout/retry/quarantine); ``checkpoint_path`` makes runs
    resumable across process death.

    Results live in a :class:`~repro.perf.cache.ScheduleCache` — pass
    ``cache_dir`` to add the content-addressed disk tier, making the
    result cache shared across *runs and processes*: a second batch over
    the same corpus is served entirely from disk, and the same directory
    warms the compile service's cache (and vice versa).  Only successful
    results are persisted; failures stay in this instance's memory tier.
    ``on_result`` is invoked once per delivered result as it lands
    (fresh compiles at completion, cache hits at delivery) — the CLI's
    ``--ndjson`` streaming hook.
    """

    def __init__(
        self,
        workers: int = 1,
        policy: RetryPolicy | None = None,
        checkpoint_path: "str | os.PathLike[str] | None" = None,
        cache_dir: "str | os.PathLike[str] | None" = None,
        cache: ScheduleCache | None = None,
        on_result: Optional[Callable[[BatchResult], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.policy = policy or RetryPolicy()
        self.checkpoint_path = (
            os.fspath(checkpoint_path) if checkpoint_path is not None else None
        )
        # `cache or ...` would discard an *empty* shared cache:
        # ScheduleCache defines __len__, so a fresh one is falsy.
        self.cache = cache if cache is not None else ScheduleCache(
            memory_budget_bytes=None, cache_dir=cache_dir
        )
        self.on_result = on_result
        self.quarantined: set[str] = set()
        self.stats = BatchStats()
        self._load_checkpoint()

    # -- checkpoint/resume ----------------------------------------------------

    def _load_checkpoint(self) -> None:
        if not self.checkpoint_path or not os.path.exists(self.checkpoint_path):
            return
        try:
            with open(self.checkpoint_path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return  # corrupt/truncated checkpoint: start fresh
        resumed = 0
        for key, rec in payload.get("results", {}).items():
            res = _result_from_dict(rec)
            if res is None:
                continue
            self.cache.put(key, rec, durable=res.ok)
            resumed += 1
        self.quarantined.update(payload.get("quarantined", []))
        self.stats.resumed = resumed

    def _save_checkpoint(self) -> None:
        """Atomically persist every result so far (rename is the commit).
        Snapshots the cache's memory tier — complete under the batch
        default of an unbounded memory budget."""
        if not self.checkpoint_path:
            return
        payload = {
            "results": self.cache.snapshot(),
            "quarantined": sorted(self.quarantined),
        }
        tmp = f"{self.checkpoint_path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, self.checkpoint_path)

    def _store(self, key: str, res: BatchResult) -> None:
        """Commit one fresh result: cache (disk only when ok),
        checkpoint, and the streaming callback."""
        self.cache.put(key, dataclasses.asdict(res), durable=res.ok)
        self._save_checkpoint()
        if self.on_result is not None:
            self.on_result(res)

    def run(self, jobs: Iterable[BatchJob]) -> list[BatchResult]:
        """Compile ``jobs``, returning one result per job in order.

        Jobs whose content hash matches a previous compile (from this or
        any earlier :meth:`run` call) are served from the cache; identical
        jobs within one batch are compiled once.
        """
        jobs = list(jobs)
        start = time.perf_counter()
        keys = [job_key(job) for job in jobs]

        # One cache lookup per distinct key (memory, then disk tier);
        # keys both tiers miss are compiled.
        found: dict[str, BatchResult] = {}
        pending: dict[str, BatchJob] = {}
        for job, key in zip(jobs, keys):
            if key in found or key in pending:
                continue
            res = _result_from_dict(self.cache.get(key))
            if res is not None:
                found[key] = res
            else:
                pending[key] = job

        fresh = self._compile_pending(pending)

        out: list[BatchResult] = []
        delivered: set[str] = set()
        for job, key in zip(jobs, keys):
            cached = fresh[key] if key in fresh else found[key]
            if key in fresh and key not in delivered:
                # First delivery of a fresh compile (already streamed
                # by _store when it landed).
                delivered.add(key)
                out.append(cached)
                self.stats.compiled += 1
                if cached.error:
                    self.stats.errors += 1
            else:
                hit = dataclasses.replace(
                    cached, name=job.name, from_cache=True, elapsed=0.0
                )
                out.append(hit)
                if self.on_result is not None:
                    self.on_result(hit)
                if key in fresh:
                    self.stats.deduped += 1
                else:
                    self.stats.cache_hits += 1
        self.stats.jobs += len(jobs)
        self.stats.elapsed += time.perf_counter() - start
        return out

    def _compile_pending(
        self, pending: dict[str, BatchJob]
    ) -> dict[str, BatchResult]:
        if not pending:
            return {}
        # A timeout can only be enforced across a process boundary, so it
        # forces pooled execution even with a single worker.
        pooled = self.workers > 1 or self.policy.timeout is not None
        if not pooled:
            fresh: dict[str, BatchResult] = {}
            for key, job in pending.items():
                fresh[key] = _compile_job(job, key)
                self._store(key, fresh[key])
            return fresh
        return self._compile_pooled(pending)

    def _kill_pool(self, pool: ProcessPoolExecutor) -> None:
        kill_pool(pool)

    def _compile_pooled(
        self, pending: dict[str, BatchJob]
    ) -> dict[str, BatchResult]:
        """Pooled execution with per-job timeout, retry, and quarantine.

        The first wave submits every job at once.  Any wave containing a
        failure poisons attribution (a crashed worker breaks every pending
        future), so after the first failure retries run one job per wave —
        a failure then names its culprit exactly, and innocent collateral
        jobs succeed on their isolated retry without an attempt charged.
        """
        policy = self.policy
        fresh: dict[str, BatchResult] = {}
        queue: list[tuple[str, BatchJob]] = list(pending.items())
        attempts: dict[str, int] = {key: 0 for key in pending}
        isolate = False
        pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            while queue:
                if isolate:
                    wave, queue = queue[:1], queue[1:]
                else:
                    wave, queue = queue, []
                futures = []
                for key, job in wave:
                    try:
                        futures.append((key, job, pool.submit(_compile_job, job, key)))
                    except BrokenExecutor:
                        futures.append((key, job, None))
                failed: list[tuple[str, BatchJob, str]] = []
                pool_broken = False
                for key, job, fut in futures:
                    if fut is None:
                        failed.append((key, job, "worker pool broken"))
                        pool_broken = True
                        continue
                    try:
                        fresh[key] = fut.result(timeout=policy.timeout)
                        self._store(key, fresh[key])
                    except FuturesTimeout:
                        failed.append(
                            (key, job, f"timed out after {policy.timeout}s")
                        )
                        self.stats.timeouts += 1
                        pool_broken = True  # a stuck worker still holds it
                    except (BrokenExecutor, CancelledError, OSError) as exc:
                        failed.append(
                            (key, job, f"worker crashed ({type(exc).__name__})")
                        )
                        pool_broken = True
                    except Exception as exc:
                        # E.g. an unpicklable job: the feeder thread parks
                        # its error on the future.  The pool is healthy;
                        # the job is not — structured failure, not a crash.
                        failed.append(
                            (key, job,
                             f"submission failed "
                             f"({type(exc).__name__}: {exc})")
                        )
                if pool_broken:
                    self._kill_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=self.workers)
                if not failed:
                    continue
                for key, job, why in failed:
                    # Exact attribution only in single-job waves; a failure
                    # in a group wave charges nobody (the culprit is
                    # unknown) — everyone retries isolated instead.
                    if isolate or len(futures) == 1:
                        attempts[key] += 1
                    out_of_retries = attempts[key] > policy.max_retries
                    if attempts[key] >= policy.quarantine_after or out_of_retries:
                        self.quarantined.add(key)
                        self.stats.quarantined += 1
                        fresh[key] = _failure_result(
                            job,
                            key,
                            f"quarantined after {attempts[key]} failed "
                            f"attempts: {why}",
                        )
                        self._store(key, fresh[key])
                    else:
                        self.stats.retries += 1
                        queue.append((key, job))
                isolate = True
                if policy.backoff > 0:
                    worst = max(attempts[key] for key, _, _ in failed)
                    time.sleep(policy.backoff * (2 ** max(0, worst - 1)))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return fresh


def benchmark_jobs(
    strategies: Iterable[str] = ("comb",),
    options: Optional[CompilerOptions] = None,
) -> list[BatchJob]:
    """The paper's benchmark programs as a ready-made job list."""
    from ..evaluation.programs import BENCHMARKS

    return [
        BatchJob(name=f"{name}:{strategy}", source=source,
                 strategy=strategy, options=options)
        for name, source in BENCHMARKS.items()
        for strategy in strategies
    ]
