"""Parallel batch compilation with content-hash result caching.

A build driver sitting on top of :func:`repro.core.pipeline.compile_program`:
it takes a list of :class:`BatchJob`\\ s, deduplicates them by a sha256
*content hash* over everything that determines the schedule (source text,
parameter bindings, strategy, and every :class:`CompilerOptions` field),
compiles distinct jobs — across processes when ``workers > 1`` — and
returns picklable :class:`BatchResult` summaries.

The result cache lives on the :class:`BatchCompiler` instance and persists
across :meth:`BatchCompiler.run` calls, so a driver recompiling a mostly
unchanged program set (the common edit-compile loop) only pays for the
files whose content actually changed.  Full :class:`CompilationResult`
objects hold ASTs and analysis state and are deliberately *not* shipped
between processes; workers reduce them to summaries first.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields
from typing import Iterable, Optional

from ..core.context import CompilerOptions
from ..core.pipeline import Strategy, compile_program


@dataclass(frozen=True)
class BatchJob:
    """One compilation request."""

    name: str
    source: str
    params: Optional[dict[str, int]] = None
    strategy: str = "comb"
    options: Optional[CompilerOptions] = None


@dataclass
class BatchResult:
    """Picklable summary of one compile (no ASTs, no analysis objects)."""

    name: str
    key: str
    strategy: str
    call_sites: int
    call_sites_by_kind: dict[str, int]
    entries: int
    eliminated: int
    elapsed: float
    from_cache: bool = False
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error


def job_key(job: BatchJob) -> str:
    """Content hash over everything that determines the schedule."""
    h = hashlib.sha256()
    h.update(job.source.encode())
    for name, value in sorted((job.params or {}).items()):
        h.update(f"|{name}={value}".encode())
    h.update(f"|strategy={Strategy.parse(job.strategy).value}".encode())
    options = job.options or CompilerOptions()
    for f in fields(CompilerOptions):
        h.update(f"|{f.name}={getattr(options, f.name)}".encode())
    return h.hexdigest()


def _compile_job(job: BatchJob, key: str) -> BatchResult:
    """Worker body: compile one job and reduce it to a summary."""
    start = time.perf_counter()
    try:
        result = compile_program(
            job.source, job.params, job.strategy, job.options
        )
    except Exception as exc:  # surface, don't kill the batch
        return BatchResult(
            name=job.name,
            key=key,
            strategy=Strategy.parse(job.strategy).value,
            call_sites=0,
            call_sites_by_kind={},
            entries=0,
            eliminated=0,
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    return BatchResult(
        name=job.name,
        key=key,
        strategy=result.strategy.value,
        call_sites=result.call_sites(),
        call_sites_by_kind=result.call_sites_by_kind(),
        entries=len(result.entries),
        eliminated=len(result.eliminated_entries()),
        elapsed=time.perf_counter() - start,
    )


@dataclass
class BatchStats:
    jobs: int = 0
    compiled: int = 0
    cache_hits: int = 0
    deduped: int = 0
    errors: int = 0
    elapsed: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.jobs if self.jobs else 0.0


class BatchCompiler:
    """Compiles job lists, reusing results for unchanged content.

    ``workers > 1`` fans distinct jobs out over a process pool; the
    default (1) compiles serially in-process, which on a single-core
    machine is also the fastest configuration.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._results: dict[str, BatchResult] = {}
        self.stats = BatchStats()

    def run(self, jobs: Iterable[BatchJob]) -> list[BatchResult]:
        """Compile ``jobs``, returning one result per job in order.

        Jobs whose content hash matches a previous compile (from this or
        any earlier :meth:`run` call) are served from the cache; identical
        jobs within one batch are compiled once.
        """
        jobs = list(jobs)
        start = time.perf_counter()
        keys = [job_key(job) for job in jobs]

        # Distinct keys not yet cached, first-come order.
        pending: dict[str, BatchJob] = {}
        for job, key in zip(jobs, keys):
            if key not in self._results and key not in pending:
                pending[key] = job

        fresh = self._compile_pending(pending)
        self._results.update(fresh)

        out: list[BatchResult] = []
        delivered: set[str] = set()
        for job, key in zip(jobs, keys):
            cached = self._results[key]
            if key in fresh and key not in delivered:
                # First delivery of a fresh compile.
                delivered.add(key)
                out.append(cached)
                self.stats.compiled += 1
                if cached.error:
                    self.stats.errors += 1
            else:
                hit = dataclasses.replace(
                    cached, name=job.name, from_cache=True, elapsed=0.0
                )
                out.append(hit)
                if key in fresh:
                    self.stats.deduped += 1
                else:
                    self.stats.cache_hits += 1
        self.stats.jobs += len(jobs)
        self.stats.elapsed += time.perf_counter() - start
        return out

    def _compile_pending(
        self, pending: dict[str, BatchJob]
    ) -> dict[str, BatchResult]:
        if not pending:
            return {}
        if self.workers == 1 or len(pending) == 1:
            return {
                key: _compile_job(job, key) for key, job in pending.items()
            }
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            results = pool.map(
                _compile_job, pending.values(), pending.keys()
            )
            return dict(zip(pending.keys(), results))


def benchmark_jobs(
    strategies: Iterable[str] = ("comb",),
    options: Optional[CompilerOptions] = None,
) -> list[BatchJob]:
    """The paper's benchmark programs as a ready-made job list."""
    from ..evaluation.programs import BENCHMARKS

    return [
        BatchJob(name=f"{name}:{strategy}", source=source,
                 strategy=strategy, options=options)
        for name, source in BENCHMARKS.items()
        for strategy in strategies
    ]
