"""Large-grid scaling harness for the fused kernel tier.

``python -m repro bench --kernels`` sweeps the six Figure 10 benchmarks
over processor grids P ∈ {4, 16, 64, 256} and writes
``BENCH_kernels.json``.  Two ladders per grid:

* **weak scaling** — the per-rank block is held constant (``n`` grows
  with the grid edge), so elements/s should stay flat if per-element
  overhead is constant;
* **strong scaling** — ``n`` is fixed while the grid grows, so the
  per-rank blocks shrink and fixed per-firing overhead dominates: the
  regime the fused kernels exist for.

Each case runs the compiled-kernel tier
(:class:`~repro.runtime.kernels.KernelEngine`, default ``auto``) and,
at P ≤ 64, the plan-interpreted vectorized baseline (``kernels="off"``)
for a bitwise-identity check and a speedup.  At P = 256 only the kernel
tier runs — the baseline would dominate the harness wall-clock without
adding information the smaller grids don't already give.

The regression gate compares *execution* time (wall minus plan+kernel
compile, both folded into ``RuntimeStats.plan_compile_s``): per grid,
the kernel tier's aggregate execute time must stay within
``REGRESSION_THRESHOLD`` of the vectorized baseline's.  Compile cost is
reported separately rather than gated — it is a one-time cost per
(nest, geometry) and the quick CI sizes run too few firings to amortize
it.

Problem sizes follow :mod:`repro.perf.runbench`'s stability constraint:
the shallow-water model must stay finite (the staleness oracle cannot
tell NaN from corruption), which the chosen step counts satisfy through
n=128 (verified empirically).  Gravity's weak ladder is capped at n=64
— its all-pairs traffic grows quadratically and the cap keeps the
P=256 sweep in minutes; the cap is recorded in the payload.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

import numpy as np

from ..core.pipeline import Strategy, compile_program
from ..runtime.spmd import SPMDExecutor
from .stats import environment_metadata

#: Processor grids per rank count — square, matching the paper's SP2
#: configurations scaled up.
GRIDS: dict[int, tuple[int, int]] = {
    4: (2, 2),
    16: (4, 4),
    64: (8, 8),
    256: (16, 16),
}

FULL_PS: tuple[int, ...] = (4, 16, 64, 256)
QUICK_PS: tuple[int, ...] = (4, 16)

#: Largest grid where the vectorized baseline also runs (bitwise check
#: + speedup + regression gate).
BASELINE_MAX_P = 64

#: Per-rank block edge for the weak ladder and the fixed problem edge
#: for the strong ladder, by mode.
WEAK_BLOCK = {"full": 8, "quick": 4}
STRONG_N = {"full": 32, "quick": 16}

#: Gravity's weak-ladder cap (all-pairs traffic is O(n^2)).
GRAVITY_WEAK_CAP = 64

#: Step counts: large enough to amortize kernel compiles into steady
#: state, small enough that shallow stays finite at n=128.
STEP_PARAMS = {
    "full": {
        "shallow": {"nsteps": 8},
        "gravity": {},
        "trimesh": {"nsweeps": 8},
        "trimesh_gauss": {"nsweeps": 8},
        "hydflo_flux": {"nsteps": 4},
        "hydflo_hydro": {"nsteps": 8},
    },
    "quick": {
        "shallow": {"nsteps": 2},
        "gravity": {},
        "trimesh": {"nsweeps": 2},
        "trimesh_gauss": {"nsweeps": 2},
        "hydflo_flux": {"nsteps": 1},
        "hydflo_hydro": {"nsteps": 2},
    },
}

#: Kernel execute time may exceed the vectorized baseline's by at most
#: this factor, per grid (aggregate over programs).
REGRESSION_THRESHOLD = 1.2


def _case_params(name: str, mode: str, ladder: str, pr: int, pc: int) -> dict:
    if ladder == "weak":
        n = WEAK_BLOCK[mode] * pr
        if name == "gravity":
            n = min(n, GRAVITY_WEAK_CAP)
    else:
        n = STRONG_N[mode]
    return {"n": n, "pr": pr, "pc": pc, **STEP_PARAMS[mode][name]}


def _run_tier(result, tier: str) -> tuple[dict[str, Any], dict]:
    t0 = time.perf_counter()
    executor = SPMDExecutor(result, kernels=tier)
    stats = executor.run()
    wall = time.perf_counter() - t0
    state = executor.assemble()
    elements = stats.elements_written + stats.fallback_firings
    execute_s = max(wall - stats.plan_compile_s, 0.0)
    return {
        "wall_s": round(wall, 4),
        "compile_s": round(stats.plan_compile_s, 4),
        "execute_s": round(execute_s, 4),
        "elements": elements,
        "elements_per_s": round(elements / execute_s) if execute_s else None,
        "bytes_per_element": (
            round(stats.bytes_moved / elements, 3) if elements else None
        ),
        "messages": stats.messages,
        "bytes_moved": stats.bytes_moved,
        "kernel": {
            "tier": stats.kernel_tier,
            "fallback_reason": stats.kernel_fallback_reason,
            "firings": stats.kernel_firings,
            "compiles": stats.kernel_compiles,
            "cache_hits": stats.kernel_cache_hits,
        },
        "plan_hit_rate": round(stats.plan_hit_rate, 4),
        "plan_translations": stats.plan_translations,
        "fallback_firings": stats.fallback_firings,
    }, state


def bench_case(
    name: str, source: str, params: dict, with_baseline: bool,
    strategy: Strategy,
) -> dict[str, Any]:
    """One (program, grid, ladder) cell: kernel tier, optional
    vectorized baseline, bitwise check, speedup."""
    result = compile_program(source, params=params, strategy=strategy)
    kern, kern_state = _run_tier(result, "auto")
    cell: dict[str, Any] = {"params": params, "kernel": kern}
    if with_baseline:
        vec, vec_state = _run_tier(result, "off")
        identical = set(kern_state) == set(vec_state) and all(
            np.array_equal(kern_state[k], vec_state[k]) for k in kern_state
        )
        wire_equal = (
            kern["messages"] == vec["messages"]
            and kern["bytes_moved"] == vec["bytes_moved"]
        )
        cell["vectorized"] = vec
        cell["bitwise_identical"] = identical
        cell["wire_equal"] = wire_equal
        cell["speedup"] = (
            round(vec["execute_s"] / kern["execute_s"], 2)
            if kern["execute_s"] else None
        )
    return cell


def _regression_check(sweep: dict[str, Any]) -> dict[str, Any] | None:
    """Aggregate execute-time gate for one grid (None without baseline)."""
    kern = vec = 0.0
    seen = False
    for ladder in ("weak", "strong"):
        for cell in sweep[ladder].values():
            if "vectorized" not in cell:
                continue
            seen = True
            kern += cell["kernel"]["execute_s"]
            vec += cell["vectorized"]["execute_s"]
    if not seen:
        return None
    ratio = kern / vec if vec else None
    return {
        "kernel_execute_s": round(kern, 4),
        "vectorized_execute_s": round(vec, 4),
        "ratio": round(ratio, 3) if ratio is not None else None,
        "threshold": REGRESSION_THRESHOLD,
        "ok": ratio is not None and ratio <= REGRESSION_THRESHOLD,
    }


def run_kernel_bench(
    quick: bool = False, strategy: Strategy = Strategy.GLOBAL
) -> dict[str, Any]:
    from ..evaluation.programs import BENCHMARKS

    mode = "quick" if quick else "full"
    grids = QUICK_PS if quick else FULL_PS
    sweeps: dict[str, Any] = {}
    for nprocs in grids:
        pr, pc = GRIDS[nprocs]
        with_baseline = nprocs <= BASELINE_MAX_P
        sweep: dict[str, Any] = {"grid": [pr, pc]}
        for ladder in ("weak", "strong"):
            sweep[ladder] = {
                name: bench_case(
                    name, BENCHMARKS[name],
                    _case_params(name, mode, ladder, pr, pc),
                    with_baseline, strategy,
                )
                for name in sorted(BENCHMARKS)
            }
        sweep["regression"] = _regression_check(sweep)
        sweeps[str(nprocs)] = sweep

    mismatches = sorted({
        f"P={p} {ladder} {name}"
        for p, sweep in sweeps.items()
        for ladder in ("weak", "strong")
        for name, cell in sweep[ladder].items()
        if not cell.get("bitwise_identical", True)
        or not cell.get("wire_equal", True)
    })
    regressions = sorted(
        f"P={p}" for p, sweep in sweeps.items()
        if sweep["regression"] is not None and not sweep["regression"]["ok"]
    )
    any_cell = next(iter(sweeps.values()))["weak"]
    tier = next(iter(any_cell.values()))["kernel"]["kernel"]["tier"]
    return {
        "mode": mode,
        "strategy": strategy.value,
        "kernel_tier": tier,
        "gravity_weak_cap": GRAVITY_WEAK_CAP,
        "environment": environment_metadata(),
        "sweeps": sweeps,
        "mismatches": mismatches,
        "regressions": regressions,
        "ok": not mismatches and not regressions,
    }


def write_kernel_bench(
    path: str = "BENCH_kernels.json",
    quick: bool = False,
    strategy: Strategy = Strategy.GLOBAL,
) -> dict[str, Any]:
    payload = run_kernel_bench(quick=quick, strategy=strategy)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    from .history import append_history, kernel_headline

    directory = os.path.dirname(os.path.abspath(path))
    for headline in kernel_headline(payload):
        append_history("kernels", headline, directory=directory)
    return payload


def format_kernel_bench(payload: dict[str, Any]) -> str:
    lines = [
        f"kernel tier: {payload['kernel_tier']}"
        + (f"  mode: {payload['mode']}" if payload.get("mode") else "")
    ]
    header = (
        f"{'P':>4s} {'ladder':6s} {'program':16s} {'n':>5s} "
        f"{'kern':>9s} {'vec':>9s} {'speedup':>8s} {'elem/s':>12s} "
        f"{'B/elem':>7s} {'exact':>6s}"
    )
    lines.append(header)
    for p, sweep in payload["sweeps"].items():
        for ladder in ("weak", "strong"):
            for name, cell in sweep[ladder].items():
                kern = cell["kernel"]
                vec = cell.get("vectorized")
                speedup = cell.get("speedup")
                lines.append(
                    f"{p:>4s} {ladder:6s} {name:16s} "
                    f"{cell['params']['n']:5d} "
                    f"{kern['execute_s'] * 1000:7.1f}ms "
                    + (f"{vec['execute_s'] * 1000:7.1f}ms "
                       if vec else f"{'—':>9s} ")
                    + (f"{speedup:7.2f}x " if speedup else f"{'—':>8s} ")
                    + f"{kern['elements_per_s'] or 0:>12,} "
                    f"{kern['bytes_per_element'] or 0:7.2f} "
                    + (f"{'yes' if cell['bitwise_identical'] else 'NO':>6s}"
                       if "bitwise_identical" in cell else f"{'—':>6s}")
                )
        reg = sweep["regression"]
        if reg is not None:
            lines.append(
                f"  P={p}: kernel execute {reg['kernel_execute_s']:.3f}s vs "
                f"vectorized {reg['vectorized_execute_s']:.3f}s "
                f"(ratio {reg['ratio']}, gate <= {reg['threshold']}) "
                f"{'ok' if reg['ok'] else 'REGRESSED'}"
            )
    if payload["mismatches"]:
        lines.append("MISMATCHES: " + ", ".join(payload["mismatches"]))
    if payload["regressions"]:
        lines.append("REGRESSIONS: " + ", ".join(payload["regressions"]))
    if payload["ok"]:
        lines.append(
            "all checked cells bitwise-identical with exact wire parity; "
            "no execute-time regressions"
        )
    return "\n".join(lines)
