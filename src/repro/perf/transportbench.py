"""Transport benchmark harness: real message-passing execution.

``python -m repro bench --transport`` runs every Figure 10 benchmark
through the SPMD executor on each message-passing backend (inline,
threaded, multiprocess) and writes ``BENCH_transport.json``.  Per
backend it reports:

* wall time per program and the cumulative wire statistics (per-pair
  messages/bytes, per-rank send/recv/wait/barrier seconds, collective
  algorithm counts);
* a bitwise-identity verdict against the legacy direct-copy executor
  (the executor additionally asserts, per operation, that measured
  per-pair wire bytes equal the lowering's prediction exactly — a run
  that completes has passed that check for every operation);
* the §6.1 simulator's plan-level predictions alongside the executed
  counters, so static model drift stays visible.

It also *calibrates* the machine model per backend: a micro-benchmark
ships messages of increasing size through the raw transport, fits the
linear cost model ``t = C + n/B`` (:func:`repro.machine.model.
fit_linear_cost`), and stamps the measured per-message latency and
per-byte bandwidth into the payload as a
:class:`~repro.machine.model.MachineModel` the simulator could run
with.  Every run appends a one-line record to ``BENCH_history.jsonl``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

import numpy as np

from ..core.pipeline import Strategy, compile_program
from ..cost.lower_bound import lower_bound
from ..machine.model import MACHINES, calibrated_model, fit_linear_cost
from ..runtime.darray import RankStorage
from ..runtime.simulator import simulate
from ..runtime.spmd import SPMDExecutor, execute_spmd
from ..transport import make_transport
from ..transport.lowering import LoweredComm, SendOp, _predict
from .history import append_history, transport_headline
from .runbench import QUICK_PARAMS, RUN_PARAMS
from .stats import environment_metadata

DEFAULT_BACKENDS = ("inline", "threaded", "multiprocess")

#: Micro-benchmark message sizes (bytes); element count = size / 8.
CALIBRATION_SIZES = (64, 512, 4096, 32768, 262144)
CALIBRATION_REPEATS = 5


def calibrate_backend(
    backend: str, watchdog_s: float = 30.0
) -> dict[str, Any]:
    """Measure per-message latency and per-byte bandwidth of one backend
    with rank-0 → rank-1 ping messages of increasing size, and fit the
    linear cost model."""
    max_count = max(CALIBRATION_SIZES) // 8
    transport = make_transport(backend, 2, watchdog_s=watchdog_s)
    try:
        buffers = transport.create_storage(
            [(0, "x", (max_count,)), (1, "x", (max_count,))]
        )
        storage = {}
        for rank in (0, 1):
            buf = buffers[(rank, "x")] if buffers else None
            store = RankStorage("x", (max_count,), buf)
            store.values[:] = np.arange(max_count, dtype=np.float64)
            store.valid[:] = True
            storage[rank] = {"x": store}
        transport.start(storage)

        sizes: list[int] = []
        times: list[float] = []
        per_size: dict[int, float] = {}
        seq = 0
        for nbytes in CALIBRATION_SIZES:
            count = nbytes // 8
            best = float("inf")
            for _ in range(CALIBRATION_REPEATS):
                send = SendOp(
                    seq=seq, src=0, dst=1, array="x",
                    index=(slice(0, count),), nbytes=nbytes,
                )
                seq += 1
                lowered = _predict(LoweredComm("pointwise", [[send]]))
                t0 = time.perf_counter()
                transport.execute(lowered)
                best = min(best, time.perf_counter() - t0)
            sizes.append(nbytes)
            times.append(best)
            per_size[nbytes] = best
    finally:
        transport.shutdown()

    startup_s, bandwidth_bps = fit_linear_cost(sizes, times)
    model = calibrated_model(
        f"host-{backend}", startup_s, bandwidth_bps
    )
    return {
        "backend": backend,
        "samples": {
            str(n): round(t, 7) for n, t in sorted(per_size.items())
        },
        "startup_s": round(model.startup_s, 7),
        "bandwidth_bps": round(model.bandwidth_bps, 1),
        "model_name": model.name,
    }


def bench_backend(
    backend: str,
    sizes: dict[str, dict[str, int]],
    strategy: Strategy,
    references: dict[str, dict[str, np.ndarray]],
    results: dict[str, Any],
    watchdog_s: float = 120.0,
    floors: "dict[str, Any] | None" = None,
) -> dict[str, Any]:
    """Run every benchmark program on one backend and compare against
    the legacy direct-copy references.  ``floors`` maps program name to
    its precomputed :class:`~repro.cost.lower_bound.LowerBoundReport`
    (the floor depends only on the program, not the backend)."""
    programs: dict[str, Any] = {}
    ok = True
    for name in sorted(sizes):
        result = results[name]
        t0 = time.perf_counter()
        executor = SPMDExecutor(
            result, transport=backend, watchdog_s=watchdog_s
        )
        try:
            stats = executor.run()
            state = executor.assemble()
            wire = executor.wire.as_dict()
        finally:
            executor.close()
        wall = time.perf_counter() - t0

        ref = references[name]
        identical = set(state) == set(ref) and all(
            np.array_equal(state[k], ref[k]) for k in state
        )
        ok = ok and identical
        lb = (floors or {}).get(name) or lower_bound(result.info)
        report = simulate(
            result, MACHINES["SP2"], lower_bound_bytes=lb.wire_floor_bytes
        )
        ok = ok and lb.sound_for(stats.bytes_moved)
        programs[name] = {
            "params": sizes[name],
            "wall_s": round(wall, 4),
            "bitwise_identical_to_legacy": identical,
            "wire": wire,
            "plan_counters": {
                "messages": stats.messages,
                "bytes_moved": stats.bytes_moved,
            },
            "simulator_check": {
                "predicted_messages_per_proc": report.messages_per_proc,
                "predicted_bytes_per_proc": report.bytes_per_proc,
                "executed_messages": stats.messages,
                "executed_bytes": stats.bytes_moved,
            },
            "lower_bound": {
                **lb.as_dict(),
                "bytes_moved": stats.bytes_moved,
                "ratio": lb.ratio(stats.bytes_moved),
                "sound": lb.sound_for(stats.bytes_moved),
            },
        }
    return {"programs": programs, "ok": ok}


def run_transport_bench(
    quick: bool = False,
    strategy: Strategy = Strategy.GLOBAL,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    watchdog_s: float = 120.0,
) -> dict[str, Any]:
    from ..evaluation.programs import BENCHMARKS

    sizes = QUICK_PARAMS if quick else RUN_PARAMS
    results = {
        name: compile_program(
            BENCHMARKS[name], params=sizes[name], strategy=strategy
        )
        for name in sorted(BENCHMARKS)
    }
    references = {
        name: execute_spmd(results[name])[0] for name in sorted(results)
    }
    floors = {
        name: lower_bound(results[name].info) for name in sorted(results)
    }

    calibration = {b: calibrate_backend(b) for b in backends}
    backend_results = {
        b: bench_backend(
            b, sizes, strategy, references, results, watchdog_s=watchdog_s,
            floors=floors,
        )
        for b in backends
    }
    return {
        "mode": "quick" if quick else "full",
        "strategy": strategy.value,
        "environment": environment_metadata(),
        "calibration": calibration,
        "backends": backend_results,
        "ok": all(info["ok"] for info in backend_results.values()),
    }


def write_transport_bench(
    path: str = "BENCH_transport.json",
    quick: bool = False,
    strategy: Strategy = Strategy.GLOBAL,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    watchdog_s: float = 120.0,
) -> dict[str, Any]:
    payload = run_transport_bench(
        quick=quick, strategy=strategy, backends=backends,
        watchdog_s=watchdog_s,
    )
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    append_history(
        "transport", transport_headline(payload),
        directory=os.path.dirname(os.path.abspath(path)),
    )
    return payload


def format_transport_bench(payload: dict[str, Any]) -> str:
    lines = []
    for backend, cal in sorted(payload["calibration"].items()):
        lines.append(
            f"calibrated {backend:13s} latency "
            f"{cal['startup_s'] * 1e6:8.1f}us  bandwidth "
            f"{cal['bandwidth_bps'] / 1e6:8.1f} MB/s"
        )
    lines.append(
        f"\n{'backend':13s} {'program':16s} {'wall':>9s} {'msgs':>7s} "
        f"{'bytes':>10s} {'stalls':>7s} {'exact':>6s}"
    )
    for backend, info in sorted(payload["backends"].items()):
        for name, p in sorted(info["programs"].items()):
            wire = p["wire"]
            lines.append(
                f"{backend:13s} {name:16s} {p['wall_s'] * 1000:7.1f}ms "
                f"{wire['messages']:7d} {wire['bytes_sent']:10d} "
                f"{wire['barrier_stalls']:7d} "
                f"{'yes' if p['bitwise_identical_to_legacy'] else 'NO':>6s}"
            )
    lines.append(
        "all backends bitwise-identical to the direct-copy executor"
        if payload["ok"] else "DEGRADED: backend mismatch — see payload"
    )
    return "\n".join(lines)
