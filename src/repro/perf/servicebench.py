"""Traffic-scale load harness for the asyncio compile service.

``python -m repro bench --service`` boots an in-process
:class:`~repro.service.server.CompileServer` on an ephemeral port and
drives it with a pipelined asyncio HTTP client, then writes
``BENCH_service.json``.  The phases, in order:

* **cold** — every distinct corpus program (six benchmarks x three
  strategies x parameter perturbations) bursts onto the server at once;
  p50 here is dominated by queueing on the bounded compile pool, which
  is the realistic "first request for this program" latency;
* **coalesce** — N identical concurrent requests for a never-seen
  program; the service must run **exactly one** compilation, every other
  waiter coalescing onto its future (or hitting the cache it fills);
* **warm** — the same corpus again at modest concurrency; everything is
  a memory-tier hit, and ``warm.p99`` against ``cold.p50`` is the
  regression gate (the cache must stay an order of magnitude ahead of a
  compile);
* **storm** — ``conns x window`` requests held in flight simultaneously
  (1000+ in full mode): every connection sends its whole initial window
  before anyone reads a response, so the client-measured high-water mark
  deterministically reaches the target; zero dropped responses allowed;
* **quota** — a throttled tenant bursts past its token bucket and must
  see clean ``429`` + ``Retry-After`` rejections, never a 5xx;
* **disk** — a second server instance with an empty memory cache but the
  same ``cache_dir`` serves the whole corpus from the content-addressed
  disk tier at a 100% hit rate.

**Every** compile response in every phase is verified **bitwise** against
a direct :func:`~repro.service.payload.compile_payload` call made in the
bench process: the canonical JSON bytes of ``result`` (and, where
requested, ``diagnostics``) must be identical whether the answer came
from a pool worker, the memory tier, the disk tier, or a coalesced
future.  The server's NDJSON access log is parsed line by line at the
end — each line must decode independently.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Optional

from ..service.app import CompileService
from ..service.payload import compile_payload
from ..service.quota import QuotaRegistry
from ..service.server import CompileServer
from .batch import BatchJob, RetryPolicy, job_key
from .cache import ScheduleCache, canonical_bytes
from .history import append_history, service_headline
from .runbench import QUICK_PARAMS
from .stats import environment_metadata

#: Tenant name the quota phase throttles; everyone else is unlimited.
NOISY_TENANT = "noisy"


@dataclass(frozen=True)
class BenchProfile:
    """One load shape; ``FULL``/``QUICK`` are the CLI presets and
    ``TINY`` keeps the unit test under a second."""

    mode: str
    strategies: tuple[str, ...]
    perturbations: tuple[int, ...]  # the corpus sweeps n over these
    workers: int
    conns: int            # storm connections
    window: int           # pipelined requests per storm connection
    storm_rounds: int = 2
    warm_concurrency: int = 16
    coalesce_n: int = 64
    quota_rate: float = 1.0
    quota_burst: int = 4
    #: minimum cold.p50 / warm.p99 ratio, or None to skip the gate
    required_ratio: Optional[float] = None
    benchmarks: Optional[tuple[str, ...]] = None  # None = all six
    timeout_s: float = 120.0


FULL = BenchProfile(
    mode="full",
    strategies=("orig", "nored", "comb"),
    perturbations=(8, 10, 12, 14, 16, 20, 24, 28, 32),
    workers=min(8, os.cpu_count() or 2),
    conns=125,
    window=8,            # 125 x 8 = 1000 concurrent at the storm barrier
    required_ratio=10.0,
)

#: CI smoke: smaller corpus and storm, and the 10x warm-cache gate is
#: relaxed by the allowed 20% p99 regression (10 / 1.2).
QUICK = BenchProfile(
    mode="quick",
    strategies=("orig", "nored", "comb"),
    perturbations=(8, 10, 12, 16),
    workers=2,
    conns=40,
    window=4,
    coalesce_n=32,
    required_ratio=10.0 / 1.2,
)

#: Unit-test profile: two distinct programs, in-process thread compiles.
TINY = BenchProfile(
    mode="tiny",
    strategies=("comb",),
    perturbations=(8, 10),
    workers=0,
    conns=4,
    window=2,
    warm_concurrency=4,
    coalesce_n=8,
    quota_burst=2,
    required_ratio=None,
    benchmarks=("gravity",),
)


@dataclass(frozen=True)
class CorpusItem:
    name: str
    source: str
    params: dict[str, int]
    strategy: str
    index: int

    @property
    def key(self) -> str:
        return job_key(BatchJob(
            name="service", source=self.source, params=self.params,
            strategy=self.strategy, options=None,
        ))

    def body(self, diagnostics: bool = False) -> dict[str, Any]:
        req: dict[str, Any] = {
            "source": self.source,
            "params": self.params,
            "strategy": self.strategy,
            "id": self.index,
        }
        if diagnostics:
            req["diagnostics"] = True
        return req


def build_corpus(profile: BenchProfile) -> list[CorpusItem]:
    """benchmarks x strategies x n-perturbations, every key distinct."""
    from ..evaluation.programs import BENCHMARKS

    names = profile.benchmarks or tuple(sorted(BENCHMARKS))
    corpus: list[CorpusItem] = []
    for name in names:
        source = BENCHMARKS[name]
        base = QUICK_PARAMS.get(name, {})
        for strategy in profile.strategies:
            for n in profile.perturbations:
                corpus.append(CorpusItem(
                    name=name,
                    source=source,
                    params={**base, "n": n},
                    strategy=strategy,
                    index=len(corpus),
                ))
    return corpus


# -- the pipelined client -----------------------------------------------------


class Conn:
    """One keep-alive connection; requests may be pipelined (send many,
    then read the responses back in order)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self._sent_at: list[float] = []  # FIFO: responses come in order

    async def open(self) -> "Conn":
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    def send(
        self,
        obj: Any,
        path: str = "/v1/compile",
        method: str = "POST",
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(obj).encode() if obj is not None else b""
        head = [f"{method} {path} HTTP/1.1", "Host: bench",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}"]
        head.extend(f"{k}: {v}" for k, v in (headers or {}).items())
        assert self.writer is not None
        self.writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        self._sent_at.append(time.perf_counter())

    async def read_response(self) -> tuple[int, dict[str, str], Any, float]:
        """(status, headers, decoded body, latency_ms) for the oldest
        outstanding request on this connection."""
        assert self.reader is not None
        head = await self.reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self.reader.readexactly(length) if length else b""
        latency_ms = (time.perf_counter() - self._sent_at.pop(0)) * 1000
        return status, headers, json.loads(body) if body else None, latency_ms

    async def request(
        self,
        obj: Any,
        path: str = "/v1/compile",
        method: str = "POST",
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], Any, float]:
        self.send(obj, path=path, method=method, headers=headers)
        assert self.writer is not None
        await self.writer.drain()
        return await self.read_response()

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# -- correctness --------------------------------------------------------------


class Verifier:
    """Bitwise comparison of service responses against direct compiles."""

    def __init__(self, direct: dict[int, dict[str, Any]]) -> None:
        self.direct = direct
        self.verified = 0
        self.mismatches: list[dict[str, Any]] = []

    def check(
        self, phase: str, status: int, body: Any, diagnostics: bool = False
    ) -> None:
        rid = body.get("id") if isinstance(body, dict) else None
        want = self.direct.get(rid)
        if want is None:
            self._flag(phase, rid, "response id maps to no corpus item")
            return
        self.verified += 1
        if status != want["status"]:
            self._flag(phase, rid, f"status {status} != {want['status']}")
            return
        got = canonical_bytes(body.get("result"))
        if got != canonical_bytes(want["result"]):
            self._flag(phase, rid, "result bytes differ from direct compile")
            return
        if diagnostics and canonical_bytes(
            body.get("diagnostics")
        ) != canonical_bytes(want["diagnostics"]):
            self._flag(phase, rid, "diagnostics differ from direct compile")

    def _flag(self, phase: str, rid: Any, why: str) -> None:
        if len(self.mismatches) < 20:  # keep the payload bounded
            self.mismatches.append({"phase": phase, "id": rid, "why": why})
        else:
            self.mismatches.append({"phase": phase, "id": rid,
                                    "why": "(truncated)"})


def _percentile(values: list[float], q: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return round(ordered[idx], 3)


def _latency_summary(
    latencies: list[float], wall_s: float
) -> dict[str, Any]:
    return {
        "requests": len(latencies),
        "p50_ms": _percentile(latencies, 0.50),
        "p99_ms": _percentile(latencies, 0.99),
        "mean_ms": round(sum(latencies) / len(latencies), 3)
        if latencies else None,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(latencies) / wall_s, 1)
        if wall_s > 0 and latencies else None,
    }


# -- the phases ---------------------------------------------------------------


async def _burst_phase(
    phase: str,
    conns: list[Conn],
    items: list[CorpusItem],
    verifier: Verifier,
    diagnostics: bool = False,
) -> dict[str, Any]:
    """Shard ``items`` over ``conns``; every connection sends its whole
    shard pipelined before reading any response (a full-corpus burst)."""
    shards: list[list[CorpusItem]] = [[] for _ in conns]
    for i, item in enumerate(items):
        shards[i % len(conns)].append(item)

    async def one(conn: Conn, shard: list[CorpusItem]) -> list[float]:
        for item in shard:
            conn.send(item.body(diagnostics=diagnostics))
        assert conn.writer is not None
        await conn.writer.drain()
        lat: list[float] = []
        for _item in shard:
            status, _hdrs, body, ms = await conn.read_response()
            verifier.check(phase, status, body, diagnostics=diagnostics)
            lat.append(ms)
        return lat

    t0 = time.perf_counter()
    per_conn = await asyncio.gather(
        *(one(c, s) for c, s in zip(conns, shards) if s)
    )
    wall = time.perf_counter() - t0
    return _latency_summary([x for lat in per_conn for x in lat], wall)


async def _serial_phase(
    phase: str,
    conns: list[Conn],
    items: list[CorpusItem],
    verifier: Verifier,
) -> dict[str, Any]:
    """Shard ``items`` over ``conns``; each connection runs its shard
    one request at a time (steady-state concurrency = len(conns))."""
    shards: list[list[CorpusItem]] = [[] for _ in conns]
    for i, item in enumerate(items):
        shards[i % len(conns)].append(item)

    async def one(conn: Conn, shard: list[CorpusItem]) -> list[float]:
        lat: list[float] = []
        for item in shard:
            status, _hdrs, body, ms = await conn.request(item.body())
            verifier.check(phase, status, body)
            lat.append(ms)
        return lat

    t0 = time.perf_counter()
    per_conn = await asyncio.gather(
        *(one(c, s) for c, s in zip(conns, shards) if s)
    )
    wall = time.perf_counter() - t0
    return _latency_summary([x for lat in per_conn for x in lat], wall)


async def _storm_phase(
    conns: list[Conn],
    corpus: list[CorpusItem],
    profile: BenchProfile,
    verifier: Verifier,
) -> dict[str, Any]:
    """Hold ``conns x window`` requests in flight at once.  Every
    connection sends its entire initial window, then waits at a barrier
    before reading — so the client-side in-flight count provably reaches
    the target — then slides: read one, send one."""
    window, rounds = profile.window, profile.storm_rounds
    per_conn = window * rounds
    barrier = asyncio.Barrier(len(conns))
    gauge = {"inflight": 0, "high": 0}
    dropped = 0
    latencies: list[float] = []

    def pick(conn_idx: int, req_idx: int) -> CorpusItem:
        return corpus[(conn_idx * per_conn + req_idx) % len(corpus)]

    async def one(conn_idx: int, conn: Conn) -> None:
        nonlocal dropped
        sent = 0
        for _ in range(window):
            conn.send(pick(conn_idx, sent).body())
            sent += 1
        gauge["inflight"] += window
        gauge["high"] = max(gauge["high"], gauge["inflight"])
        assert conn.writer is not None
        await conn.writer.drain()
        await barrier.wait()  # all windows are in flight right now
        received = 0
        try:
            while received < per_conn:
                status, _hdrs, body, ms = await conn.read_response()
                gauge["inflight"] -= 1
                received += 1
                verifier.check("storm", status, body)
                latencies.append(ms)
                if sent < per_conn:
                    conn.send(pick(conn_idx, sent).body())
                    sent += 1
                    gauge["inflight"] += 1
                    gauge["high"] = max(gauge["high"], gauge["inflight"])
                    await conn.writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            dropped += sent - received
            gauge["inflight"] -= sent - received

    t0 = time.perf_counter()
    await asyncio.gather(*(one(i, c) for i, c in enumerate(conns)))
    wall = time.perf_counter() - t0
    summary = _latency_summary(latencies, wall)
    summary.update(
        conns=len(conns),
        window=window,
        target_concurrency=len(conns) * window,
        client_high_water=gauge["high"],
        dropped=dropped,
        ok=dropped == 0 and gauge["high"] >= len(conns) * window,
    )
    return summary


async def _coalesce_phase(
    conns: list[Conn],
    stats_conn: Conn,
    profile: BenchProfile,
    verifier: Verifier,
) -> dict[str, Any]:
    """N identical concurrent requests for a never-seen program must
    cost exactly one compilation."""
    from ..evaluation.programs import BENCHMARKS

    names = profile.benchmarks or tuple(sorted(BENCHMARKS))
    name = names[0]
    fresh = CorpusItem(
        name=name,
        source=BENCHMARKS[name],
        # an n outside every perturbation list: never cached before
        params={**QUICK_PARAMS.get(name, {}), "n": 97},
        strategy=profile.strategies[-1],
        index=-1,
    )
    verifier.direct[-1] = compile_payload(
        fresh.source, fresh.params, fresh.strategy
    )

    _s, _h, before, _ms = await stats_conn.request(
        None, path="/v1/stats", method="GET"
    )
    n = profile.coalesce_n
    fan = conns[:max(1, min(len(conns), 8))]
    shards: list[int] = [n // len(fan)] * len(fan)
    shards[0] += n - sum(shards)

    async def one(conn: Conn, count: int) -> None:
        for _ in range(count):
            conn.send(fresh.body())
        assert conn.writer is not None
        await conn.writer.drain()
        for _ in range(count):
            status, _hdrs, body, _ms = await conn.read_response()
            verifier.check("coalesce", status, body)

    await asyncio.gather(*(one(c, k) for c, k in zip(fan, shards) if k))
    _s, _h, after, _ms = await stats_conn.request(
        None, path="/v1/stats", method="GET"
    )
    compiled = after["service"]["compiled"] - before["service"]["compiled"]
    coalesced = (
        after["service"]["coalesced"] - before["service"]["coalesced"]
    )
    hits = after["cache"]["memory_hits"] - before["cache"]["memory_hits"]
    return {
        "requests": n,
        "compiled": compiled,
        "coalesced": coalesced,
        "memory_hits": hits,
        "ok": compiled == 1 and coalesced + hits == n - 1,
    }


async def _quota_phase(
    conn: Conn, item: CorpusItem, profile: BenchProfile
) -> dict[str, Any]:
    """Burst the throttled tenant far past its bucket: expect clean 429s
    with Retry-After, zero 5xx, and at least ``burst`` grants."""
    total = 3 * profile.quota_burst
    for _ in range(total):
        conn.send({**item.body(), "tenant": NOISY_TENANT})
    assert conn.writer is not None
    await conn.writer.drain()
    granted = rejected = other = 0
    retry_after_ok = True
    for _ in range(total):
        status, headers, _body, _ms = await conn.read_response()
        if status == 200:
            granted += 1
        elif status == 429:
            rejected += 1
            if "retry-after" not in headers or int(
                headers["retry-after"]
            ) < 1:
                retry_after_ok = False
        else:
            other += 1
    return {
        "requests": total,
        "granted": granted,
        "rejected": rejected,
        "other_statuses": other,
        "retry_after_ok": retry_after_ok,
        "ok": (granted >= 1 and rejected >= 1 and other == 0
               and retry_after_ok),
    }


# -- the harness --------------------------------------------------------------


def run_service_bench(
    quick: bool = False, profile: BenchProfile | None = None
) -> dict[str, Any]:
    profile = profile or (QUICK if quick else FULL)
    corpus = build_corpus(profile)

    # The ground truth: one direct in-process compile per distinct
    # program.  Also the "what a compile costs without the service"
    # reference number.
    direct: dict[int, dict[str, Any]] = {}
    direct_ms: list[float] = []
    t0 = time.perf_counter()
    for item in corpus:
        payload = compile_payload(item.source, item.params, item.strategy)
        direct[item.index] = payload
        direct_ms.append(payload["compile_ms"])
    direct_wall = time.perf_counter() - t0
    verifier = Verifier(direct)

    cache_dir = tempfile.mkdtemp(prefix="repro-servicebench-")
    log_path = os.path.join(cache_dir, "access.ndjson")
    try:
        payload = asyncio.run(
            _drive(profile, corpus, verifier, cache_dir, log_path)
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    payload["environment"] = environment_metadata()
    payload["direct_compile"] = {
        "programs": len(corpus),
        "p50_ms": _percentile(direct_ms, 0.50),
        "mean_ms": round(sum(direct_ms) / len(direct_ms), 3)
        if direct_ms else None,
        "wall_s": round(direct_wall, 4),
    }
    payload["correctness"] = {
        "verified": verifier.verified,
        "mismatches": len(verifier.mismatches),
        "examples": verifier.mismatches[:10],
        "ok": not verifier.mismatches,
    }

    phases = payload["phases"]
    ratio = None
    cold_p50 = phases["cold"]["p50_ms"]
    warm_p99 = phases["warm"]["p99_ms"]
    if cold_p50 and warm_p99:
        ratio = round(cold_p50 / warm_p99, 2)
    payload["regression"] = {
        "cold_p50_ms": cold_p50,
        "warm_p99_ms": warm_p99,
        "ratio": ratio,
        "required_ratio": profile.required_ratio,
        "ok": (profile.required_ratio is None
               or (ratio is not None and ratio >= profile.required_ratio)),
    }
    server_errors = sum(
        count
        for status, count in payload["stats"]["service"]["by_status"].items()
        if status.startswith("5")
    )
    payload["server_errors"] = server_errors
    payload["ok"] = bool(
        payload["correctness"]["ok"]
        and phases["storm"]["ok"]
        and phases["coalesce"]["ok"]
        and phases["quota"]["ok"]
        and phases["disk"]["ok"]
        and payload["regression"]["ok"]
        and payload["access_log"]["ok"]
        and server_errors == 0
    )
    return payload


async def _drive(
    profile: BenchProfile,
    corpus: list[CorpusItem],
    verifier: Verifier,
    cache_dir: str,
    log_path: str,
) -> dict[str, Any]:
    cache = ScheduleCache(cache_dir=cache_dir)
    quotas = QuotaRegistry(rate=None, tenants={
        NOISY_TENANT: (profile.quota_rate, float(profile.quota_burst)),
    })
    service = CompileService(
        cache=cache,
        workers=profile.workers,
        policy=RetryPolicy(timeout=profile.timeout_s),
        quotas=quotas,
        max_pending=max(1024, 2 * len(corpus)),
    )
    log_fh = open(log_path, "w")
    server = CompileServer(service, port=0, access_log=log_fh)
    await server.start()
    host, port = "127.0.0.1", server.port

    phases: dict[str, Any] = {}
    conns = [
        await Conn(host, port).open() for _ in range(profile.conns)
    ]
    stats_conn = await Conn(host, port).open()
    try:
        warm_conns = conns[:profile.warm_concurrency]
        phases["cold"] = await _burst_phase(
            "cold", warm_conns, corpus, verifier, diagnostics=True
        )
        phases["coalesce"] = await _coalesce_phase(
            conns, stats_conn, profile, verifier
        )
        phases["warm"] = await _serial_phase(
            "warm", warm_conns, corpus, verifier
        )
        phases["storm"] = await _storm_phase(
            conns, corpus, profile, verifier
        )
        phases["quota"] = await _quota_phase(
            stats_conn, corpus[0], profile
        )
        _s, _h, stats, _ms = await stats_conn.request(
            None, path="/v1/stats", method="GET"
        )
    finally:
        for conn in conns:
            await conn.close()
        await stats_conn.close()
        await server.stop()
        log_fh.close()

    # Disk tier: a fresh process would see exactly this — empty memory,
    # warm content-addressed directory.
    cache2 = ScheduleCache(cache_dir=cache_dir)
    service2 = CompileService(cache=cache2, workers=0)
    server2 = CompileServer(service2, port=0)
    await server2.start()
    conns2 = [
        await Conn(host, server2.port).open()
        for _ in range(profile.warm_concurrency)
    ]
    try:
        disk = await _serial_phase("disk", conns2, corpus, verifier)
    finally:
        for conn in conns2:
            await conn.close()
        await server2.stop()
    disk.update(
        disk_hits=cache2.stats.disk_hits,
        memory_hits=cache2.stats.memory_hits,
        misses=cache2.stats.misses,
        ok=(cache2.stats.disk_hits == len(corpus)
            and cache2.stats.misses == 0),
    )
    phases["disk"] = disk

    lines = ok_lines = 0
    with open(log_path) as fh:
        for line in fh:
            lines += 1
            try:
                json.loads(line)
                ok_lines += 1
            except ValueError:
                pass
    access_log = {
        "lines": lines,
        "parsed": ok_lines,
        "requests_total": server.requests_total,
        "ok": lines == ok_lines and lines == server.requests_total,
    }

    return {
        "mode": profile.mode,
        "corpus": {
            "programs": len(set(i.name for i in corpus)),
            "strategies": list(profile.strategies),
            "perturbations": list(profile.perturbations),
            "distinct": len(corpus),
        },
        "service": {
            "workers": profile.workers,
            "conns": profile.conns,
            "window": profile.window,
            "warm_concurrency": profile.warm_concurrency,
        },
        "phases": phases,
        "stats": stats,
        "access_log": access_log,
    }


def write_service_bench(
    path: str = "BENCH_service.json",
    quick: bool = False,
    profile: BenchProfile | None = None,
) -> dict[str, Any]:
    payload = run_service_bench(quick=quick, profile=profile)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    append_history(
        "service", service_headline(payload),
        directory=os.path.dirname(os.path.abspath(path)),
    )
    return payload


def format_service_bench(payload: dict[str, Any]) -> str:
    phases = payload["phases"]
    lines = [
        f"{'phase':9s} {'requests':>8s} {'p50':>9s} {'p99':>9s} "
        f"{'rps':>8s}"
    ]
    for name in ("cold", "warm", "storm", "disk"):
        ph = phases[name]
        lines.append(
            f"{name:9s} {ph['requests']:8d} "
            f"{ph['p50_ms'] or 0:7.1f}ms {ph['p99_ms'] or 0:7.1f}ms "
            f"{ph['throughput_rps'] or 0:8.0f}"
        )
    storm = phases["storm"]
    lines.append(
        f"\nstorm: {storm['client_high_water']} concurrent "
        f"(target {storm['target_concurrency']}), "
        f"{storm['dropped']} dropped"
    )
    co = phases["coalesce"]
    lines.append(
        f"coalesce: {co['requests']} identical requests -> "
        f"{co['compiled']} compile, {co['coalesced']} coalesced, "
        f"{co['memory_hits']} cache hits"
    )
    q = phases["quota"]
    lines.append(
        f"quota: {q['granted']} granted, {q['rejected']} rejected "
        f"(Retry-After {'ok' if q['retry_after_ok'] else 'MISSING'})"
    )
    disk = phases["disk"]
    lines.append(
        f"disk tier: {disk['disk_hits']}/{payload['corpus']['distinct']} "
        f"hits, {disk['misses']} misses"
    )
    reg = payload["regression"]
    if reg["ratio"] is not None:
        need = reg["required_ratio"]
        lines.append(
            f"warm cache vs cold compile: {reg['ratio']:.1f}x "
            f"(cold p50 {reg['cold_p50_ms']:.1f}ms / warm p99 "
            f"{reg['warm_p99_ms']:.2f}ms"
            + (f"; gate >= {need:.1f}x)" if need else ")")
        )
    corr = payload["correctness"]
    lines.append(
        f"correctness: {corr['verified']} responses verified bitwise, "
        f"{corr['mismatches']} mismatches; "
        f"{payload['server_errors']} server 5xx; access log "
        f"{payload['access_log']['parsed']}/{payload['access_log']['lines']} "
        f"NDJSON lines parsed"
    )
    lines.append("SERVICE BENCH OK" if payload["ok"]
                 else "SERVICE BENCH FAILED: see payload")
    return "\n".join(lines)
