"""Two-tier cross-request schedule cache.

One implementation shared by the batch driver (:mod:`repro.perf.batch`)
and the compile service (:mod:`repro.service`): schedules are expensive
whole-procedure work (the paper's Figure 10 compile times), so once a
program has been compiled its schedule should be amortized across every
later request that hashes to the same :func:`repro.perf.batch.job_key`.

Two tiers:

* an **in-memory LRU** with a byte budget — values are charged their
  canonical-JSON encoding size, and least-recently-used entries are
  evicted once the budget is exceeded (an entry larger than the whole
  budget is never admitted to memory at all);
* an optional **content-addressed disk tier** under ``cache_dir`` —
  every durable put is written through as
  ``<cache_dir>/<key[:2]>/<key>.json`` (atomic tmp + rename), so a batch
  run warms the server cache and vice versa, and evicted memory entries
  remain one read away.

Disk entries carry their own key and a sha256 over the canonical value
encoding.  A corrupted or truncated entry — unparsable JSON, a key
mismatch, a checksum mismatch — is **treated as a miss**: the file is
unlinked, the ``corrupt`` counter bumps, and the next durable put
rewrites it.  A lookup therefore never returns a value for the wrong
key and never raises on bad disk state.

All operations are thread-safe (one reentrant lock); the cache is
shared between the asyncio event loop and executor callbacks.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

#: Canonical JSON encoding: the byte-identity currency of the cache
#: (checksums, byte budgets, and the service's correctness checks all
#: hash exactly these bytes).
CANONICAL = {"sort_keys": True, "separators": (",", ":")}

DEFAULT_MEMORY_BUDGET = 64 * 1024 * 1024


def canonical_bytes(value: Any) -> bytes:
    """The canonical JSON encoding of a JSON-serializable value."""
    return json.dumps(value, **CANONICAL).encode()


@dataclass
class CacheStats:
    """Counters for both tiers; ``as_dict`` feeds bench payloads."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        hits = self.memory_hits + self.disk_hits
        return hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _Entry:
    value: Any
    size: int = 0
    durable: bool = True


class ScheduleCache:
    """Content-hash keyed, byte-budgeted LRU with a disk write-through.

    ``memory_budget_bytes=None`` disables eviction (the batch driver's
    historical behavior); ``cache_dir=None`` disables the disk tier.
    Values must be JSON-serializable; they are returned as-is from the
    memory tier and as parsed JSON from the disk tier, so callers should
    treat cached values as immutable.
    """

    def __init__(
        self,
        memory_budget_bytes: Optional[int] = DEFAULT_MEMORY_BUDGET,
        cache_dir: "str | os.PathLike[str] | None" = None,
    ) -> None:
        if memory_budget_bytes is not None and memory_budget_bytes < 0:
            raise ValueError("memory_budget_bytes must be >= 0 or None")
        self.memory_budget_bytes = memory_budget_bytes
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._memory: "OrderedDict[str, _Entry]" = OrderedDict()
        self._memory_bytes = 0

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    @property
    def memory_bytes(self) -> int:
        with self._lock:
            return self._memory_bytes

    def snapshot(self) -> dict[str, Any]:
        """The current memory tier as a plain dict (checkpointing)."""
        with self._lock:
            return {key: e.value for key, e in self._memory.items()}

    # -- lookups --------------------------------------------------------------

    def lookup(self, key: str) -> tuple[Any, Optional[str]]:
        """``(value, tier)`` where tier is ``"memory"``, ``"disk"``, or
        ``None`` on a miss.  Disk hits are promoted into memory."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return entry.value, "memory"
            value = self._disk_read(key)
            if value is not None:
                self.stats.disk_hits += 1
                self._admit(key, value, durable=True)
                return value, "disk"
            self.stats.misses += 1
            return None, None

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or None."""
        return self.lookup(key)[0]

    def put(self, key: str, value: Any, durable: bool = True) -> None:
        """Insert ``value`` under ``key``.  ``durable=False`` keeps the
        entry out of the disk tier (transient failures, quarantine
        verdicts — anything another run should re-derive)."""
        with self._lock:
            self.stats.puts += 1
            self._admit(key, value, durable=durable)
            if durable:
                self._disk_write(key, value)

    def invalidate(self, key: str) -> None:
        """Drop ``key`` from both tiers (test/maintenance hook)."""
        with self._lock:
            entry = self._memory.pop(key, None)
            if entry is not None:
                self._memory_bytes -= entry.size
            path = self._path(key)
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    # -- memory tier ----------------------------------------------------------

    def _admit(self, key: str, value: Any, durable: bool) -> None:
        old = self._memory.pop(key, None)
        if old is not None:
            self._memory_bytes -= old.size
        try:
            size = len(canonical_bytes(value))
        except (TypeError, ValueError):
            size = 0  # non-JSON value: admit uncharged, never disk-backed
        budget = self.memory_budget_bytes
        if budget is not None and size > budget:
            return  # larger than the whole tier: disk-only
        self._memory[key] = _Entry(value, size=size, durable=durable)
        self._memory_bytes += size
        if budget is None:
            return
        while self._memory_bytes > budget and len(self._memory) > 1:
            _, evicted = self._memory.popitem(last=False)
            self._memory_bytes -= evicted.size
            self.stats.evictions += 1

    # -- disk tier ------------------------------------------------------------

    def _path(self, key: str) -> Optional[str]:
        if self.cache_dir is None or not key:
            return None
        return os.path.join(self.cache_dir, key[:2], f"{key}.json")

    def _disk_read(self, key: str) -> Any:
        path = self._path(key)
        if path is None:
            return None
        try:
            with open(path, "rb") as fh:
                envelope = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return self._quarantine_file(path)
        if not isinstance(envelope, dict):
            return self._quarantine_file(path)
        value = envelope.get("value")
        try:
            digest = hashlib.sha256(canonical_bytes(value)).hexdigest()
        except (TypeError, ValueError):
            return self._quarantine_file(path)
        if envelope.get("key") != key or envelope.get("sha256") != digest:
            return self._quarantine_file(path)
        return value

    def _quarantine_file(self, path: str) -> None:
        """A corrupt/truncated entry is a miss; unlink it so the next
        durable put rewrites a clean one."""
        self.stats.corrupt += 1
        try:
            os.unlink(path)
        except OSError:
            pass
        return None

    def _disk_write(self, key: str, value: Any) -> None:
        path = self._path(key)
        if path is None:
            return
        try:
            body = canonical_bytes(value)
        except (TypeError, ValueError):
            return  # non-JSON value: memory-only
        envelope = {
            "key": key,
            "sha256": hashlib.sha256(body).hexdigest(),
            "value": value,
        }
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
            with open(tmp, "w") as fh:
                json.dump(envelope, fh, **CANONICAL)
            os.replace(tmp, path)
        except OSError:
            pass  # a full/read-only disk degrades to memory-only
