"""Perf-regression harness: phase timings, throughput, cache hit rates.

``python -m repro bench`` times every stage of the compilation pipeline —
parse, frontend elaboration/scalarization, analysis-context construction,
entry analysis, and placement — over the paper's four benchmark programs
and a large synthetic stencil program, runs the cached-vs-uncached
ablation, and writes the whole measurement as ``BENCH_compile.json`` so a
checked-in baseline can be diffed against future runs.

The JSON payload reports, per program: phase wall times (best of
``repeats``), entries analyzed per second, and the hit rate of every
memoized analysis cache (section, dependence, combinability, subsumption).
The ``ablation`` section compiles the synthetic program with
``enable_caches`` on and off and reports the speedup — the number the
perf-regression benchmark asserts on.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable

from ..core.context import AnalysisContext, CompilerOptions
from ..core.pipeline import Strategy, analyze_entries, compile_program, place
from ..frontend.analysis import elaborate
from ..frontend.parser import parse
from ..frontend.scalarizer import scalarize
from .stats import environment_metadata


def synthetic_program(phases: int) -> str:
    """``phases`` stencil statements over ``phases + 1`` arrays, each a
    shifted read of the previous phase's output, inside one time loop.
    The scalability workload: entries grow linearly, CommSet work roughly
    quadratically."""
    arrays = [f"x{i}" for i in range(phases + 1)]
    decls = "\n".join(
        f"REAL {a}(n)\nDISTRIBUTE {a}(BLOCK) ONTO p" for a in arrays
    )
    stmts = "\n".join(
        f"{arrays[i + 1]}(2:n-1) = {arrays[i]}(1:n-2) + {arrays[i]}(3:n)"
        for i in range(phases)
    )
    feedback = f"{arrays[0]}(2:n-1) = {arrays[-1]}(2:n-1)"
    return (
        f"PROGRAM scale\nPARAM n = 64\nPROCESSORS p(4)\n{decls}\n"
        f"DO t = 1, 10\n{stmts}\n{feedback}\nEND DO\nEND"
    )


def _best_of(repeats: int, fn: Callable[[], Any]) -> tuple[float, Any]:
    """(best wall time, last result) of ``repeats`` calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, result


def _cache_rates(ctx: AnalysisContext) -> dict[str, dict[str, float | int]]:
    return ctx.cache_stats.as_dict()


def profile_compile(
    source: str,
    params: dict[str, int] | None = None,
    options: CompilerOptions | None = None,
    repeats: int = 3,
) -> dict[str, Any]:
    """Phase-by-phase wall times for one program (best of ``repeats``)."""
    phases: dict[str, float] = {}

    phases["parse"], program = _best_of(repeats, lambda: parse(source))
    phases["elaborate"], info = _best_of(
        repeats, lambda: elaborate(program, params)
    )
    phases["scalarize"], sprog = _best_of(
        repeats, lambda: scalarize(program, info)
    )
    info2 = elaborate(sprog, params)

    phases["context"], _ = _best_of(
        repeats, lambda: AnalysisContext(info2, options)
    )

    def run_analysis():
        ctx = AnalysisContext(info2, options)
        return ctx, analyze_entries(ctx)

    analysis_total, (ctx, entries) = _best_of(repeats, run_analysis)
    phases["analyze_entries"] = analysis_total - phases["context"]

    def run_place():
        c = AnalysisContext(info2, options)
        e = analyze_entries(c)
        t0 = time.perf_counter()
        placed = place(c, e, Strategy.GLOBAL)
        dt = time.perf_counter() - t0
        # Fold the other strategies into the same context (untimed): the
        # production batch path shares one context across strategies, and
        # the cross-strategy reuse is where the subsumption/combinability
        # verdict caches earn their keep — reported hit rates reflect it.
        for strategy in (Strategy.ORIG, Strategy.EARLIEST):
            place(c, analyze_entries(c), strategy)
        return dt, c

    place_best = float("inf")
    for _ in range(repeats):
        dt, ctx = run_place()
        place_best = min(place_best, dt)
    phases["place"] = place_best

    total, result = _best_of(
        repeats, lambda: compile_program(source, params, options=options)
    )
    n_entries = len(entries)
    return {
        "phases_s": {k: round(v, 6) for k, v in phases.items()},
        "total_s": round(total, 6),
        "entries": n_entries,
        "entries_per_s": round(n_entries / total, 1) if total else None,
        "cache_hit_rates": _cache_rates(ctx),
        "passes": [t.to_dict() for t in result.pass_traces],
    }


def run_ablation(
    phases: int = 48, repeats: int = 3
) -> dict[str, Any]:
    """Cached vs uncached compile of the synthetic stencil program."""
    source = synthetic_program(phases)
    compile_program(source)  # warm imports/pools before timing
    cached, _ = _best_of(
        repeats, lambda: compile_program(source, options=CompilerOptions())
    )
    uncached, _ = _best_of(
        repeats,
        lambda: compile_program(
            source, options=CompilerOptions(enable_caches=False)
        ),
    )
    return {
        "phases": phases,
        "cached_s": round(cached, 6),
        "uncached_s": round(uncached, 6),
        "speedup": round(uncached / cached, 3) if cached else None,
    }


def run_self_check(synthetic_phases: int = 48) -> dict[str, Any]:
    """Oracle gate: compile every benchmark (all strategies) plus the
    synthetic program and run the dynamic schedule checker on each output.

    A failing compile or oracle *degrades* rather than aborting the
    harness: the failure is recorded per program and the remaining checks
    still run, so one bad benchmark never hides the rest of the report.
    """
    from ..evaluation.programs import BENCHMARKS
    from ..runtime.checker import check_schedule

    sources = dict(BENCHMARKS)
    sources[f"synthetic_{synthetic_phases}"] = synthetic_program(
        synthetic_phases
    )
    checks: dict[str, Any] = {}
    for name, source in sources.items():
        for strategy in Strategy:
            label = f"{name}:{strategy.value}"
            try:
                result = compile_program(source, strategy=strategy)
                stats = check_schedule(result)
            except Exception as exc:  # degrade, don't abort the harness
                checks[label] = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
                continue
            checks[label] = {
                "ok": True,
                "deliveries": stats.deliveries,
                "reads_checked": stats.reads_checked,
                "degradations": len(result.degradations),
            }
    failed = sorted(k for k, v in checks.items() if not v["ok"])
    return {"checks": checks, "failed": failed, "ok": not failed}


def run_bench(
    repeats: int = 3,
    synthetic_phases: int = 48,
    self_check: bool = False,
) -> dict[str, Any]:
    """The full measurement: paper benchmarks + synthetic + ablation."""
    from ..evaluation.programs import BENCHMARKS

    programs: dict[str, Any] = {}
    for name, source in BENCHMARKS.items():
        programs[name] = profile_compile(source, repeats=repeats)
    programs[f"synthetic_{synthetic_phases}"] = profile_compile(
        synthetic_program(synthetic_phases), repeats=repeats
    )
    payload = {
        "repeats": repeats,
        "environment": environment_metadata(),
        "programs": programs,
        "ablation": run_ablation(synthetic_phases, repeats=repeats),
    }
    if self_check:
        payload["self_check"] = run_self_check(synthetic_phases)
    return payload


def write_bench(
    path: str = "BENCH_compile.json",
    repeats: int = 3,
    synthetic_phases: int = 48,
    self_check: bool = False,
) -> dict[str, Any]:
    """Run the harness and write the JSON report; returns the payload."""
    payload = run_bench(
        repeats=repeats,
        synthetic_phases=synthetic_phases,
        self_check=self_check,
    )
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    from .history import append_history, compile_headline
    import os

    append_history(
        "compile", compile_headline(payload),
        directory=os.path.dirname(os.path.abspath(path)),
    )
    return payload


def format_bench(payload: dict[str, Any]) -> str:
    lines = [
        f"{'program':16s} {'total':>9s} {'entries':>7s} {'entries/s':>10s} "
        f"{'sect%':>6s} {'dep%':>6s} {'comb%':>6s} {'subs%':>6s}"
    ]
    for name, prog in payload["programs"].items():
        rates = prog["cache_hit_rates"]

        def pct(cache: str) -> str:
            info = rates.get(cache)
            if not info or not (info["hits"] + info["misses"]):
                return "-"
            return f"{100 * info['hit_rate']:.0f}"

        lines.append(
            f"{name:16s} {prog['total_s'] * 1000:7.1f}ms {prog['entries']:7d} "
            f"{prog['entries_per_s']:10.0f} {pct('section'):>6s} "
            f"{pct('dependence'):>6s} {pct('combinable'):>6s} "
            f"{pct('subsumes'):>6s}"
        )
    ab = payload["ablation"]
    lines.append(
        f"\nablation ({ab['phases']}-phase synthetic): cached "
        f"{ab['cached_s'] * 1000:.1f}ms, uncached {ab['uncached_s'] * 1000:.1f}ms "
        f"-> {ab['speedup']:.2f}x"
    )
    sc = payload.get("self_check")
    if sc is not None:
        total = len(sc["checks"])
        if sc["ok"]:
            lines.append(f"self-check: {total}/{total} schedules verified")
        else:
            lines.append(
                f"self-check: {total - len(sc['failed'])}/{total} verified; "
                f"FAILED: {', '.join(sc['failed'])}"
            )
    return "\n".join(lines)
