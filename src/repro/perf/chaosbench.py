"""Chaos benchmark harness: survival under injected transport faults.

``python -m repro bench --chaos`` drives every Figure 10 benchmark
through the SPMD executor on the concurrent backends (threaded,
multiprocess) under a seeded fault matrix — one plan per fault class
(drop, dup, corrupt, delay, reorder, crash) plus a mixed plan — and
writes ``BENCH_chaos.json``.  Three headline answers:

* **survival rate** — the fraction of faulted runs whose final arrays
  are bitwise-identical to the inline oracle (a run that degrades to
  the inline backend and still matches counts as survived-degraded; a
  wrong answer or an unstructured crash does not survive).  The repair
  ladder is designed for 100%;
* **recovery latency** — wall seconds the collector spent quiescing,
  restoring checkpoints, and respawning workers per injected rank
  crash (the ``crash`` plan uses rate 1.0 with ``crash_budget=1`` so
  exactly one crash fires deterministically per run);
* **integrity overhead** — the clean-run cost of the always-on wire
  integrity layer (sequence + CRC32 verification), measured per
  backend as best-of-N wall time with checksums on versus off.

Every run appends a one-line chaos record to ``BENCH_history.jsonl``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

import numpy as np

from ..core.pipeline import Strategy, compile_program
from ..runtime.spmd import execute_spmd
from ..transport.integrity import KINDS, FaultPlan
from .history import append_history, chaos_headline
from .runbench import QUICK_PARAMS, RUN_PARAMS
from .stats import environment_metadata

CHAOS_BACKENDS = ("threaded", "multiprocess")

#: Per-fault-class injection rate for the single-fault plans.
SINGLE_RATE = 0.2

#: Seeds per (backend, plan, program) cell; quick mode uses the first.
SEEDS = (1, 2)

OVERHEAD_REPEATS = 5

#: Clean-run integrity overhead must stay under this (CI gate).
MAX_OVERHEAD_PCT = 10.0


def fault_matrix(seed: int) -> dict[str, FaultPlan]:
    """The benched plans: one per fault class plus a mixed plan.  The
    crash plan fires exactly once (rate 1.0, budget 1) so the recovery
    path is exercised deterministically rather than probabilistically."""
    plans = {
        kind: FaultPlan.single(kind, seed=seed, rate=SINGLE_RATE)
        for kind in KINDS if kind != "crash"
    }
    plans["crash"] = FaultPlan(seed=seed, crash=1.0, crash_budget=1)
    plans["mixed"] = FaultPlan(
        seed=seed, drop=0.1, dup=0.1, corrupt=0.1, reorder=0.1,
        crash=1.0, crash_budget=1,
    )
    return plans


def _run_cell(
    result, oracle: dict[str, np.ndarray], backend: str, plan: FaultPlan,
    watchdog_s: float,
) -> dict[str, Any]:
    t0 = time.perf_counter()
    try:
        arrays, stats = execute_spmd(
            result, transport=backend, chaos=plan, watchdog_s=watchdog_s,
        )
    except Exception as exc:  # noqa: BLE001 - a non-surviving run
        return {
            "survived": False,
            "identical": False,
            "error": f"{type(exc).__name__}: {exc}",
            "wall_s": round(time.perf_counter() - t0, 4),
        }
    wall = time.perf_counter() - t0
    identical = set(arrays) == set(oracle) and all(
        np.array_equal(arrays[k], oracle[k]) for k in oracle
    )
    return {
        "survived": identical,
        "identical": identical,
        "wall_s": round(wall, 4),
        "faults_injected": stats.faults_injected,
        "faults_detected": stats.faults_detected,
        "retransmits": stats.retransmits,
        "rank_restarts": stats.rank_restarts,
        "recovery_s": round(stats.recovery_s, 4),
        "degradations": list(stats.degradations),
    }


def _clean_walls(
    result, backend: str, watchdog_s: float,
) -> tuple[float, float]:
    """Best-of-N clean wall with integrity on and off.  The repeats
    interleave the two configurations so machine-load drift during the
    bench hits both equally instead of biasing the overhead ratio."""
    best_on = best_off = float("inf")
    for _ in range(OVERHEAD_REPEATS):
        for integrity in (True, False):
            t0 = time.perf_counter()
            execute_spmd(
                result, transport=backend, integrity=integrity,
                watchdog_s=watchdog_s,
            )
            wall = time.perf_counter() - t0
            if integrity:
                best_on = min(best_on, wall)
            else:
                best_off = min(best_off, wall)
    return best_on, best_off


def run_chaos_bench(
    quick: bool = False,
    strategy: Strategy = Strategy.GLOBAL,
    backends: tuple[str, ...] = CHAOS_BACKENDS,
    watchdog_s: float = 60.0,
) -> dict[str, Any]:
    from ..evaluation.programs import BENCHMARKS

    sizes = QUICK_PARAMS if quick else RUN_PARAMS
    seeds = SEEDS[:1] if quick else SEEDS
    results = {
        name: compile_program(
            BENCHMARKS[name], params=sizes[name], strategy=strategy
        )
        for name in sorted(BENCHMARKS)
    }
    oracles = {
        name: execute_spmd(results[name], transport="inline")[0]
        for name in sorted(results)
    }

    matrix: dict[str, Any] = {}
    runs = survived = 0
    restarts = 0
    recovery_s = 0.0
    for backend in backends:
        per_plan: dict[str, Any] = {}
        for seed in seeds:
            for plan_name, plan in fault_matrix(seed).items():
                cell_key = (
                    plan_name if len(seeds) == 1
                    else f"{plan_name}@seed{seed}"
                )
                programs: dict[str, Any] = {}
                for name in sorted(results):
                    cell = _run_cell(
                        results[name], oracles[name], backend, plan,
                        watchdog_s,
                    )
                    programs[name] = cell
                    runs += 1
                    survived += 1 if cell["survived"] else 0
                    restarts += cell.get("rank_restarts", 0)
                    recovery_s += cell.get("recovery_s", 0.0)
                per_plan[cell_key] = {
                    "plan": plan.as_dict(),
                    "programs": programs,
                    "survived": all(
                        c["survived"] for c in programs.values()
                    ),
                }
        matrix[backend] = {
            "plans": per_plan,
            "survived": all(p["survived"] for p in per_plan.values()),
        }

    overhead: dict[str, Any] = {}
    for backend in backends:
        on_s = off_s = 0.0
        for name in sorted(results):
            best_on, best_off = _clean_walls(
                results[name], backend, watchdog_s
            )
            on_s += best_on
            off_s += best_off
        pct = 100.0 * (on_s - off_s) / off_s if off_s > 0 else 0.0
        overhead[backend] = {
            "integrity_wall_s": round(on_s, 4),
            "raw_wall_s": round(off_s, 4),
            "overhead_pct": round(pct, 2),
            "ok": pct < MAX_OVERHEAD_PCT,
        }

    survival_rate = survived / runs if runs else 0.0
    return {
        "mode": "quick" if quick else "full",
        "strategy": strategy.value,
        "environment": environment_metadata(),
        "backends": sorted(backends),
        "runs": runs,
        "survived": survived,
        "survival_rate": round(survival_rate, 4),
        "recovery": {
            "rank_restarts": restarts,
            "total_recovery_s": round(recovery_s, 4),
            "mean_recovery_s": round(
                recovery_s / restarts if restarts else 0.0, 4
            ),
        },
        "matrix": matrix,
        "integrity_overhead": overhead,
        "ok": (
            survival_rate == 1.0
            and all(o["ok"] for o in overhead.values())
        ),
    }


def write_chaos_bench(
    path: str = "BENCH_chaos.json",
    quick: bool = False,
    strategy: Strategy = Strategy.GLOBAL,
    backends: tuple[str, ...] = CHAOS_BACKENDS,
    watchdog_s: float = 60.0,
) -> dict[str, Any]:
    payload = run_chaos_bench(
        quick=quick, strategy=strategy, backends=backends,
        watchdog_s=watchdog_s,
    )
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    append_history(
        "chaos", chaos_headline(payload),
        directory=os.path.dirname(os.path.abspath(path)),
    )
    return payload


def format_chaos_bench(payload: dict[str, Any]) -> str:
    lines = [
        f"{'backend':13s} {'plan':16s} {'survived':>9s} {'injected':>9s} "
        f"{'retrans':>8s} {'restarts':>9s}"
    ]
    for backend, info in sorted(payload["matrix"].items()):
        for plan_name, plan_info in sorted(info["plans"].items()):
            programs = plan_info["programs"].values()
            lines.append(
                f"{backend:13s} {plan_name:16s} "
                f"{sum(1 for c in programs if c['survived']):4d}/"
                f"{len(plan_info['programs']):<4d} "
                f"{sum(c.get('faults_injected', 0) for c in programs):9d} "
                f"{sum(c.get('retransmits', 0) for c in programs):8d} "
                f"{sum(c.get('rank_restarts', 0) for c in programs):9d}"
            )
    rec = payload["recovery"]
    lines.append(
        f"\nsurvival {payload['survived']}/{payload['runs']} "
        f"({payload['survival_rate']:.1%}); {rec['rank_restarts']} rank "
        f"restart(s), mean recovery {rec['mean_recovery_s'] * 1000:.1f}ms"
    )
    for backend, o in sorted(payload["integrity_overhead"].items()):
        lines.append(
            f"integrity overhead {backend:13s} {o['overhead_pct']:+6.2f}% "
            f"({o['integrity_wall_s']:.3f}s vs {o['raw_wall_s']:.3f}s)"
            + ("" if o["ok"] else "  EXCEEDS LIMIT")
        )
    lines.append(
        "all faulted runs healed to bitwise-identical results"
        if payload["ok"] else "DEGRADED: see payload"
    )
    return "\n".join(lines)
