"""Machine-adaptive threshold autotuning benchmark.

``python -m repro bench --autotune`` answers the question the unified
cost layer exists for: *does feeding the compiler the machine it is
actually running on change its schedules, and is the change an
improvement?*  It runs every Figure 10 benchmark through the pipeline
under five machine models —

* the two paper presets (``SP2``, ``NOW``), and
* three models calibrated from the host's real transport backends
  (``inline``, ``threaded``, ``multiprocess``) via the Figure 5-style
  micro-benchmark and :func:`~repro.machine.model.calibrated_model`

— and records, per benchmark x model: the derived combining threshold,
the resulting schedule, whether it differs from the default-SP2
schedule, the §6.1-predicted time delta under that model, and (for
schedules that actually changed) the measured wall-time delta of
executing both schedules on the corresponding substrate.  The payload
also carries each program's HBL-style traffic floor
(:mod:`repro.cost.lower_bound`) and a golden-consistency check: the
default-machine schedules must still match ``tests/golden/
schedules.json`` byte-for-byte, so autotuning can never silently move
the defaults.  ``ok`` fails on any lower-bound violation or golden
drift — the CI gate.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

from ..core.context import CompilerOptions
from ..core.pipeline import CompilationResult, Strategy, compile_program
from ..cost.model import CostModel
from ..machine.model import MACHINES, MachineModel, calibrated_model
from ..runtime.simulator import simulate
from ..runtime.spmd import SPMDExecutor
from .history import append_history, autotune_headline
from .runbench import QUICK_PARAMS, RUN_PARAMS
from .stats import environment_metadata
from .transportbench import calibrate_backend

#: Transport backends a calibrated model is fitted for (and measured on).
CALIBRATED_BACKENDS = ("inline", "threaded", "multiprocess")

#: The default model every other schedule is diffed against.
BASELINE_MODEL = "SP2"


def _schedule_signature(result: CompilationResult) -> dict[str, Any]:
    """The part of a schedule that combining decisions can move: the
    placed groups and the eliminated entries (positions + labels)."""
    return {
        "schedule": [
            [str(pc.position), sorted(e.label for e in pc.entries)]
            for pc in result.placed
        ],
        "eliminated": sorted(e.label for e in result.eliminated_entries()),
    }


def _measure_wall(
    result: CompilationResult,
    transport: "str | None",
    watchdog_s: float,
) -> float:
    t0 = time.perf_counter()
    executor = SPMDExecutor(result, transport=transport, watchdog_s=watchdog_s)
    try:
        executor.run()
    finally:
        executor.close()
    return time.perf_counter() - t0


def build_models(
    calibration: dict[str, dict[str, Any]],
) -> dict[str, MachineModel]:
    """The model ladder: presets plus one calibrated model per backend."""
    models: dict[str, MachineModel] = {
        "SP2": MACHINES["SP2"],
        "NOW": MACHINES["NOW"],
    }
    for backend, cal in calibration.items():
        models[f"calibrated-{backend}"] = calibrated_model(
            cal["model_name"], cal["startup_s"], cal["bandwidth_bps"]
        )
    return models


def golden_check() -> dict[str, Any]:
    """Compile every benchmark x strategy with default options (default
    params, SP2 model) and diff the schedules against the checked-in
    golden records.  Skips (``checked: False``) outside a source
    checkout where the golden file is not present."""
    from ..evaluation.programs import BENCHMARKS

    golden_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "..", "..", "..", "tests", "golden", "schedules.json",
    )
    golden_path = os.path.normpath(golden_path)
    if not os.path.exists(golden_path):
        return {"checked": False, "drifted": [], "path": None}
    with open(golden_path) as fh:
        records = json.load(fh)

    drifted: list[str] = []
    for name in sorted(BENCHMARKS):
        for strategy in Strategy:
            golden = records.get(name, {}).get(strategy.value)
            if golden is None:
                continue
            result = compile_program(BENCHMARKS[name], strategy=strategy)
            sig = _schedule_signature(result)
            if (
                sig["schedule"] != golden["schedule"]
                or sig["eliminated"] != golden["eliminated"]
            ):
                drifted.append(f"{name}/{strategy.value}")
    return {"checked": True, "drifted": drifted, "path": golden_path}


def run_autotune_bench(
    quick: bool = False,
    backends: tuple[str, ...] = CALIBRATED_BACKENDS,
    watchdog_s: float = 120.0,
) -> dict[str, Any]:
    from ..cost.lower_bound import lower_bound
    from ..evaluation.programs import BENCHMARKS
    from ..runtime.spmd import execute_spmd

    sizes = QUICK_PARAMS if quick else RUN_PARAMS
    calibration = {b: calibrate_backend(b) for b in backends}
    models = build_models(calibration)

    thresholds = {
        label: CostModel(machine=model).derived_threshold()
        for label, model in models.items()
    }

    programs: dict[str, Any] = {}
    unsound: list[str] = []
    for name in sorted(BENCHMARKS):
        source, params = BENCHMARKS[name], sizes[name]
        baseline = compile_program(
            source, params=params,
            options=CompilerOptions(machine=BASELINE_MODEL),
        )
        base_sig = _schedule_signature(baseline)
        lb = lower_bound(baseline.info)
        _, base_stats = execute_spmd(baseline)
        sound = lb.sound_for(base_stats.bytes_moved)
        if not sound:
            unsound.append(name)

        per_model: dict[str, Any] = {}
        for label, model in models.items():
            adapted = compile_program(
                source, params=params,
                options=CompilerOptions(machine=model),
            )
            sig = _schedule_signature(adapted)
            changed = sig != base_sig
            # Predicted: both schedules costed under *this* model, so the
            # delta isolates the scheduling decision from the machine.
            pred_base = simulate(baseline, model).total_time
            pred_adapted = simulate(adapted, model).total_time
            record: dict[str, Any] = {
                "threshold_bytes": thresholds[label],
                "call_sites": adapted.call_sites(),
                "schedule": sig["schedule"],
                "changed_vs_baseline": changed,
                "predicted_total_s": {
                    "baseline_schedule": round(pred_base, 6),
                    "adapted_schedule": round(pred_adapted, 6),
                },
                "predicted_delta_pct": (
                    round(100.0 * (pred_base - pred_adapted) / pred_base, 2)
                    if pred_base else None
                ),
            }
            if changed:
                # Measured: execute both schedules on the substrate the
                # model was fitted for (presets run the direct-copy path).
                transport = (
                    label.split("calibrated-", 1)[1]
                    if label.startswith("calibrated-") else None
                )
                base_wall = _measure_wall(baseline, transport, watchdog_s)
                adapted_wall = _measure_wall(adapted, transport, watchdog_s)
                record["measured_wall_s"] = {
                    "baseline_schedule": round(base_wall, 4),
                    "adapted_schedule": round(adapted_wall, 4),
                }
                record["measured_delta_pct"] = (
                    round(100.0 * (base_wall - adapted_wall) / base_wall, 2)
                    if base_wall else None
                )
            per_model[label] = record

        programs[name] = {
            "params": params,
            "baseline_model": BASELINE_MODEL,
            "baseline_call_sites": baseline.call_sites(),
            "lower_bound": {
                **lb.as_dict(),
                "bytes_moved": base_stats.bytes_moved,
                "ratio": lb.ratio(base_stats.bytes_moved),
                "sound": sound,
            },
            "models": per_model,
        }

    changed_by_model = {
        label: sorted(
            name for name, p in programs.items()
            if p["models"][label]["changed_vs_baseline"]
        )
        for label in models
    }
    golden = golden_check()
    return {
        "mode": "quick" if quick else "full",
        "environment": environment_metadata(),
        "calibration": calibration,
        "thresholds": thresholds,
        "programs": programs,
        "ablation": {
            "changed_by_model": changed_by_model,
            "any_changed": any(v for v in changed_by_model.values()),
        },
        "golden_check": golden,
        "lower_bound_violations": unsound,
        "ok": not unsound and not golden["drifted"],
    }


def write_autotune_bench(
    path: str = "BENCH_autotune.json",
    quick: bool = False,
    backends: tuple[str, ...] = CALIBRATED_BACKENDS,
    watchdog_s: float = 120.0,
) -> dict[str, Any]:
    payload = run_autotune_bench(
        quick=quick, backends=backends, watchdog_s=watchdog_s
    )
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    append_history(
        "autotune", autotune_headline(payload),
        directory=os.path.dirname(os.path.abspath(path)),
    )
    return payload


def format_autotune_bench(payload: dict[str, Any]) -> str:
    lines = ["derived thresholds:"]
    for label, t in sorted(payload["thresholds"].items()):
        lines.append(f"  {label:24s} {t:>8d} bytes")
    lines.append(
        f"\n{'program':16s} {'model':24s} {'sites':>6s} {'chg':>4s} "
        f"{'pred%':>7s} {'meas%':>7s} {'b/LB':>6s}"
    )
    for name, p in sorted(payload["programs"].items()):
        ratio = p["lower_bound"]["ratio"]
        ratio_s = f"{ratio:6.2f}" if ratio is not None else f"{'n/a':>6s}"
        for label, rec in sorted(p["models"].items()):
            pred = rec["predicted_delta_pct"]
            meas = rec.get("measured_delta_pct")
            lines.append(
                f"{name:16s} {label:24s} {rec['call_sites']:6d} "
                f"{'yes' if rec['changed_vs_baseline'] else '-':>4s} "
                f"{pred if pred is not None else '-':>7} "
                f"{meas if meas is not None else '-':>7} "
                f"{ratio_s}"
            )
    golden = payload["golden_check"]
    if not golden["checked"]:
        lines.append("golden check skipped (no checked-in schedules found)")
    elif golden["drifted"]:
        lines.append(f"GOLDEN DRIFT: {', '.join(golden['drifted'])}")
    else:
        lines.append("default-machine schedules match golden exactly")
    if payload["lower_bound_violations"]:
        lines.append(
            "LOWER-BOUND VIOLATION: "
            + ", ".join(payload["lower_bound_violations"])
        )
    changed = payload["ablation"]["changed_by_model"]
    moved = {m: names for m, names in changed.items() if names}
    if moved:
        for model, names in sorted(moved.items()):
            lines.append(f"schedule changes under {model}: {', '.join(names)}")
    else:
        lines.append("no schedules changed under any model at these sizes")
    return "\n".join(lines)
