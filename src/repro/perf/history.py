"""Bench history: one-line JSONL records per benchmark run.

Every ``repro bench`` variant (compile, ``--spmd``, ``--transport``)
appends a single-line record to ``BENCH_history.jsonl`` next to the JSON
payload it writes: the git commit, a UTC timestamp, the bench kind, and
that kind's headline numbers.  The file is append-only and one JSON
object per line, so benchmark trajectories across commits can be
reconstructed with a one-line ``jq``/pandas read — no database, no
parsing of full payloads.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from typing import Any

HISTORY_FILE = "BENCH_history.jsonl"


def git_commit() -> str | None:
    """The current commit hash, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def history_record(kind: str, headline: dict[str, Any]) -> dict[str, Any]:
    """A one-line record: commit + timestamp + the bench's headline."""
    return {
        "kind": kind,
        "commit": git_commit(),
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        **headline,
    }


def append_history(
    kind: str,
    headline: dict[str, Any],
    path: str | None = None,
    directory: str | None = None,
) -> dict[str, Any]:
    """Append one record to the history file (created on first use).
    ``directory`` places the file next to a bench output written
    elsewhere; an explicit ``path`` wins."""
    if path is None:
        path = os.path.join(directory or ".", HISTORY_FILE)
    record = history_record(kind, headline)
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


# -- headline extractors ------------------------------------------------------
#
# One per bench payload shape: compress the full JSON into the few
# numbers worth plotting across commits.


def compile_headline(payload: dict[str, Any]) -> dict[str, Any]:
    programs = payload.get("programs", {})
    ab = payload.get("ablation", {})
    pass_wall: dict[str, float] = {}
    pass_deactivated: dict[str, int] = {}
    for prog in programs.values():
        for trace in prog.get("passes", []):
            name = trace["pass"]
            pass_wall[name] = pass_wall.get(name, 0.0) + trace["wall_s"]
            pass_deactivated[name] = (
                pass_deactivated.get(name, 0)
                + trace.get("stats", {}).get("deactivated", 0)
            )
    return {
        "programs": len(programs),
        "total_s": round(
            sum(p.get("total_s", 0.0) for p in programs.values()), 4
        ),
        "ablation_speedup": ab.get("speedup"),
        "pass_wall_s": {k: round(v, 6) for k, v in pass_wall.items()},
        "pass_deactivated": pass_deactivated,
    }


def _grid_fields(params_seen: list[dict[str, Any]]) -> dict[str, Any]:
    """``P``/``grid`` fields from per-program params, backfill-safe:
    None when the payload predates grid stamping or mixes grids."""
    grids = {
        (p["pr"], p["pc"])
        for p in params_seen
        if isinstance(p, dict) and p.get("pr") and p.get("pc")
    }
    if len(grids) != 1:
        return {"P": None, "grid": None}
    pr, pc = grids.pop()
    return {"P": pr * pc, "grid": [pr, pc]}


def spmd_headline(payload: dict[str, Any]) -> dict[str, Any]:
    programs = payload.get("programs", {})
    speedups = [
        p["speedup"] for p in programs.values()
        if p.get("speedup") is not None
    ]
    return {
        "mode": payload.get("mode"),
        "strategy": payload.get("strategy"),
        "programs": len(programs),
        "ok": payload.get("ok"),
        **_grid_fields([p.get("params") for p in programs.values()]),
        "vec_wall_s": round(
            sum(p["vectorized"]["wall_s"] for p in programs.values()), 4
        ),
        "median_speedup": (
            round(sorted(speedups)[len(speedups) // 2], 2)
            if speedups else None
        ),
    }


def transport_headline(payload: dict[str, Any]) -> dict[str, Any]:
    backends = payload.get("backends", {})
    cal = payload.get("calibration", {})
    return {
        "mode": payload.get("mode"),
        "ok": payload.get("ok"),
        **_grid_fields([
            prog.get("params", payload.get("params"))
            for info in backends.values()
            for prog in info.get("programs", {}).values()
        ] or [payload.get("params")]),
        "backends": sorted(backends),
        "wall_s": {
            b: round(sum(
                prog["wall_s"] for prog in info["programs"].values()
            ), 4)
            for b, info in backends.items()
        },
        "calibrated_bandwidth_bps": {
            b: round(c["bandwidth_bps"])
            for b, c in cal.items() if isinstance(c, dict)
        },
    }


def chaos_headline(payload: dict[str, Any]) -> dict[str, Any]:
    """Backfill-safe: every field degrades to None/{} when a payload
    predates a counter, so mixed-age history files still parse."""
    recovery = payload.get("recovery") or {}
    overhead = payload.get("integrity_overhead") or {}
    return {
        "mode": payload.get("mode"),
        "ok": payload.get("ok"),
        "backends": payload.get("backends"),
        "runs": payload.get("runs"),
        "survival_rate": payload.get("survival_rate"),
        "rank_restarts": recovery.get("rank_restarts"),
        "mean_recovery_s": recovery.get("mean_recovery_s"),
        "integrity_overhead_pct": {
            b: o.get("overhead_pct")
            for b, o in overhead.items() if isinstance(o, dict)
        },
    }


def service_headline(payload: dict[str, Any]) -> dict[str, Any]:
    """Backfill-safe: every field degrades to None when a payload
    predates it, so mixed-age history files still parse."""
    phases = payload.get("phases") or {}
    storm = phases.get("storm") or {}
    warm = phases.get("warm") or {}
    cold = phases.get("cold") or {}
    coalesce = phases.get("coalesce") or {}
    disk = phases.get("disk") or {}
    regression = payload.get("regression") or {}
    correctness = payload.get("correctness") or {}
    cache = (payload.get("stats") or {}).get("cache") or {}
    return {
        "mode": payload.get("mode"),
        "ok": payload.get("ok"),
        "distinct_programs": (payload.get("corpus") or {}).get("distinct"),
        "storm_high_water": storm.get("client_high_water"),
        "storm_dropped": storm.get("dropped"),
        "cold_p50_ms": cold.get("p50_ms"),
        "warm_p99_ms": warm.get("p99_ms"),
        "warm_rps": warm.get("throughput_rps"),
        "speedup_ratio": regression.get("ratio"),
        "coalesced": coalesce.get("coalesced"),
        "disk_hits": disk.get("disk_hits"),
        "cache_hit_rate": cache.get("hit_rate"),
        "verified": correctness.get("verified"),
        "mismatches": correctness.get("mismatches"),
        "server_errors": payload.get("server_errors"),
    }


def exact_headline(payload: dict[str, Any]) -> dict[str, Any]:
    """Backfill-safe: every field degrades to None when a payload
    predates it, so mixed-age history files still parse."""
    benchmarks = payload.get("benchmarks") or {}
    records = payload.get("records") or []
    gaps = [
        r["gap"] for r in records
        if isinstance(r, dict) and r.get("gap") is not None
    ]
    solver_ms = [
        b["solver_ms"] for b in benchmarks.values()
        if isinstance(b, dict) and b.get("solver_ms") is not None
    ]
    rejected = sum(
        1 for r in records
        if isinstance(r, dict)
        and (r.get("oracle_ok") is False or r.get("exact_oracle_ok") is False)
    )
    return {
        "mode": payload.get("mode"),
        "ok": payload.get("ok"),
        "solver_budget_ms": payload.get("solver_budget_ms"),
        "benchmarks": len(benchmarks) or None,
        "records": len(records) or None,
        "proved": sum(
            1 for b in benchmarks.values()
            if isinstance(b, dict) and b.get("proved")
        ) if benchmarks else None,
        "max_gap": max(gaps) if gaps else None,
        "mean_gap": round(sum(gaps) / len(gaps), 4) if gaps else None,
        "solver_ms_total": round(sum(solver_ms), 1) if solver_ms else None,
        "oracle_rejections": rejected if records else None,
        "regressions": len(payload.get("regressions") or []) or 0,
    }


def autotune_headline(payload: dict[str, Any]) -> dict[str, Any]:
    """Backfill-safe: every field degrades to None/{} when a payload
    predates it, so mixed-age history files still parse."""
    programs = payload.get("programs") or {}
    ablation = payload.get("ablation") or {}
    changed = ablation.get("changed_by_model") or {}
    golden = payload.get("golden_check") or {}
    ratios = [
        p["lower_bound"]["ratio"]
        for p in programs.values()
        if isinstance(p.get("lower_bound"), dict)
        and p["lower_bound"].get("ratio") is not None
    ]
    return {
        "mode": payload.get("mode"),
        "ok": payload.get("ok"),
        "programs": len(programs) or None,
        "thresholds": payload.get("thresholds"),
        "changed_schedules": {
            m: len(names) for m, names in changed.items()
        } or None,
        "any_changed": ablation.get("any_changed"),
        "golden_drift": len(golden.get("drifted") or []) or 0,
        "max_bytes_over_lb": round(max(ratios), 3) if ratios else None,
        "lower_bound_violations": len(
            payload.get("lower_bound_violations") or []
        ) or 0,
    }


def kernel_headline(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """One headline per swept grid — scaling curves across commits need
    per-P points, so ``--kernels`` appends several records per run."""
    headlines = []
    for p, sweep in payload.get("sweeps", {}).items():
        speedups = sorted(
            cell["speedup"]
            for ladder in ("weak", "strong")
            for cell in sweep.get(ladder, {}).values()
            if cell.get("speedup") is not None
        )
        kernel_execute_s = sum(
            cell["kernel"]["execute_s"]
            for ladder in ("weak", "strong")
            for cell in sweep.get(ladder, {}).values()
        )
        weak_eps = sum(
            cell["kernel"]["elements_per_s"] or 0
            for cell in sweep.get("weak", {}).values()
        )
        reg = sweep.get("regression")
        headlines.append({
            "mode": payload.get("mode"),
            "ok": payload.get("ok"),
            "P": int(p),
            "grid": sweep.get("grid"),
            "kernel_tier": payload.get("kernel_tier"),
            "kernel_execute_s": round(kernel_execute_s, 4),
            "weak_elements_per_s": weak_eps,
            "median_speedup": (
                speedups[len(speedups) // 2] if speedups else None
            ),
            "regression_ratio": reg.get("ratio") if reg else None,
        })
    return headlines
