"""Optimality-gap benchmark for the anytime exact placement solver.

``python -m repro bench --exact`` runs the ``exact`` pipeline
(:mod:`repro.solver`) once per Figure 10 benchmark and compares the
result against all three paper strategies (``orig``/``nored``/``comb``)
— 18 benchmark x strategy records, matching the golden-schedule suite.
Per record it reports the greedy message count, the solver's best count
(``optimal_messages``), the ratio between them (``gap``), whether the
solver *proved* optimality (lower bound met the incumbent within the
budget), and the solver's wall time and node count.  Every schedule —
greedy and exact — is validated by the dynamic staleness oracle
(:func:`repro.runtime.checker.check_schedule`).

The regression gate compares against ``tests/golden/schedules.json``
when its records carry ``optimal_messages``/``gap`` fields:

* a greedy count drifting past its recorded ``optimal x gap`` envelope,
* the solver returning *more* messages than a previously proved
  optimum (a solver regression), or
* the solver returning *fewer* messages than a previously proved
  optimum (a soundness alarm: proved optima cannot be beaten)

all fail the run.  The anytime contract means a budget-capped solve is
never an error — it reports the greedy-seeded incumbent with
``proved_optimal: false`` and a gap of 1.0 against itself.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

from ..core.context import CompilerOptions
from ..core.pipeline import Strategy, compile_program
from ..evaluation.programs import BENCHMARKS
from ..runtime.checker import check_schedule
from .history import append_history, exact_headline
from .stats import environment_metadata

#: Anytime budget per benchmark.  Full mode matches the budget the
#: golden ``optimal_messages`` fields were generated with; quick mode is
#: sized for CI smoke runs (the clique lower bound proves most
#: benchmarks optimal without any search, so a small budget loses only
#: unproved tail-tightening).
FULL_BUDGET_MS = 8000
QUICK_BUDGET_MS = 2000

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))),
    "tests", "golden", "schedules.json",
)


def _oracle_ok(result) -> bool:
    try:
        check_schedule(result)
    except Exception:
        return False
    return True


def _golden_records() -> dict[str, Any]:
    """The golden suite's records, ``{}`` when not checked out (the
    bench also runs from installed trees without the test data)."""
    try:
        with open(GOLDEN_PATH) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return {}


def run_exact_bench(quick: bool = False) -> dict[str, Any]:
    budget_ms = QUICK_BUDGET_MS if quick else FULL_BUDGET_MS
    golden = _golden_records()
    records: list[dict[str, Any]] = []
    exact_by_bench: dict[str, dict[str, Any]] = {}
    regressions: list[str] = []

    for name in sorted(BENCHMARKS):
        source = BENCHMARKS[name]
        t0 = time.perf_counter()
        exact = compile_program(source, options=CompilerOptions(
            pass_pipeline=("exact",), solver_budget_ms=budget_ms,
        ))
        exact_wall = time.perf_counter() - t0
        stats = exact.stats
        exact_by_bench[name] = {
            "messages": exact.call_sites(),
            "proved": bool(stats.get("solver_proved")),
            "improved": bool(stats.get("solver_improved")),
            "lower_bound": stats.get("solver_lower_bound"),
            "seed_messages": stats.get("solver_seed_messages"),
            "solver_ms": stats.get("solver_ms"),
            "solver_nodes": stats.get("solver_nodes"),
            "solver_queries": stats.get("solver_queries"),
            "wall_s": round(exact_wall, 4),
            "oracle_ok": _oracle_ok(exact),
            "degraded": [e.to_dict() for e in exact.degradations],
        }

        for strategy in Strategy:
            greedy = compile_program(source, strategy=strategy)
            info = exact_by_bench[name]
            optimal = info["messages"]
            greedy_messages = greedy.call_sites()
            gap = round(greedy_messages / optimal, 4) if optimal else 1.0
            record = {
                "benchmark": name,
                "strategy": strategy.value,
                "greedy_messages": greedy_messages,
                "optimal_messages": optimal,
                "gap": gap,
                "proved_optimal": info["proved"],
                "solver_wall_ms": info["solver_ms"],
                "solver_nodes": info["solver_nodes"],
                "oracle_ok": _oracle_ok(greedy),
                "exact_oracle_ok": info["oracle_ok"],
                "degraded": bool(greedy.degradations) or bool(
                    info["degraded"]),
            }
            gold = (golden.get(name) or {}).get(strategy.value) or {}
            if gold.get("optimal_messages") is not None:
                envelope = gold["optimal_messages"] * gold.get("gap", 1.0)
                if greedy_messages > envelope + 1e-9:
                    regressions.append(
                        f"{name}/{strategy.value}: greedy {greedy_messages} "
                        f"messages exceeds recorded envelope {envelope:g}"
                    )
                if gold.get("proved_optimal"):
                    if optimal > gold["optimal_messages"]:
                        regressions.append(
                            f"{name}/{strategy.value}: solver found "
                            f"{optimal} messages, worse than proved "
                            f"optimum {gold['optimal_messages']}"
                        )
                    elif optimal < gold["optimal_messages"]:
                        regressions.append(
                            f"{name}/{strategy.value}: solver beat a "
                            f"proved optimum ({optimal} < "
                            f"{gold['optimal_messages']}) — soundness alarm"
                        )
            records.append(record)

    comb_counts = {
        r["benchmark"]: r["greedy_messages"]
        for r in records if r["strategy"] == "comb"
    }
    exact_le_comb = all(
        info["messages"] <= comb_counts.get(name, info["messages"])
        for name, info in exact_by_bench.items()
    )
    all_oracle_ok = all(
        r["oracle_ok"] and r["exact_oracle_ok"] for r in records
    )
    any_proved = any(info["proved"] for info in exact_by_bench.values())
    no_degradations = not any(
        info["degraded"] for info in exact_by_bench.values()
    )

    return {
        "mode": "quick" if quick else "full",
        "solver_budget_ms": budget_ms,
        "benchmarks": exact_by_bench,
        "records": records,
        "regressions": regressions,
        "golden_gap_fields": any(
            (rec or {}).get("optimal_messages") is not None
            for by_strat in golden.values()
            for rec in (by_strat or {}).values()
        ),
        "ok": (
            all_oracle_ok and exact_le_comb and any_proved
            and no_degradations and not regressions
        ),
        "environment": environment_metadata(),
    }


def format_exact_bench(payload: dict[str, Any]) -> str:
    lines = [
        f"exact placement bench ({payload['mode']}, "
        f"budget {payload['solver_budget_ms']} ms per benchmark)",
        "",
        f"{'benchmark':<16} {'strategy':<7} {'greedy':>6} {'optimal':>7} "
        f"{'gap':>6} {'proved':>6} {'ms':>7} {'nodes':>8} {'oracle':>6}",
    ]
    for r in payload["records"]:
        oracle = "ok" if r["oracle_ok"] and r["exact_oracle_ok"] else "FAIL"
        lines.append(
            f"{r['benchmark']:<16} {r['strategy']:<7} "
            f"{r['greedy_messages']:>6} {r['optimal_messages']:>7} "
            f"{r['gap']:>6.3f} {str(r['proved_optimal']).lower():>6} "
            f"{r['solver_wall_ms'] if r['solver_wall_ms'] is not None else '-':>7} "
            f"{r['solver_nodes'] if r['solver_nodes'] is not None else '-':>8} "
            f"{oracle:>6}"
        )
    proved = sum(
        1 for b in payload["benchmarks"].values() if b.get("proved")
    )
    lines.append("")
    lines.append(
        f"proved optimal: {proved}/{len(payload['benchmarks'])} benchmarks"
    )
    for msg in payload.get("regressions", []):
        lines.append(f"REGRESSION: {msg}")
    lines.append(f"ok: {payload['ok']}")
    return "\n".join(lines)


def write_exact_bench(
    path: str = "BENCH_exact.json", quick: bool = False
) -> dict[str, Any]:
    payload = run_exact_bench(quick=quick)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    append_history(
        "exact",
        exact_headline(payload),
        directory=os.path.dirname(os.path.abspath(path)),
    )
    return payload
