"""Pipeline-wide performance layer.

This package holds everything that makes the compiler fast without
changing what it computes:

* :mod:`repro.perf.stats` — cache hit/miss instrumentation shared by the
  analysis caches (sections, dependence verdicts, combinability,
  subsumption, live ranges);
* :mod:`repro.perf.batch` — the parallel batch-compile driver with a
  content-hash result cache (the "heavy traffic" serving scenario);
* :mod:`repro.perf.bench` — the perf-regression harness that emits
  ``BENCH_compile.json`` so successive PRs have a trajectory to compare.

Every *memo cache* is ablatable through
:attr:`repro.core.context.CompilerOptions.enable_caches`; cached and
uncached pipelines are asserted byte-identical by
``tests/test_perf_caches.py``.  Data-structure changes (position
interning, dense dominator tables, the CommSet inverted index) are exact
by construction and always on.

Submodules are imported lazily — ``import repro.perf`` must stay cheap
because :mod:`repro.core.context` imports :mod:`repro.perf.stats`.
"""
