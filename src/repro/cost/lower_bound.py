"""HBL-style communication lower bounds over affine array references.

Christ–Demmel–Knight–Scanlon–Yelick (arXiv 1308.0068) bound the
communication of any schedule for an affine-loop computation by the size
of the data footprint each processor must touch beyond what it already
holds.  This module instantiates that idea for this compiler's exact
execution model, where the bound is not merely asymptotic but a hard
byte floor:

* Storage validity starts exactly on the owner-computes partition: each
  rank's arrays are initialized valid only on its
  :meth:`~repro.runtime.darray.Ownership.owned_rsd` region.
* Writes only ever touch owned elements (distributed statements execute
  under owner-computes; replicated data is written redundantly
  everywhere, so reading it never needs the wire).
* Every read is checked against the validity mask, so a rank reading a
  non-owned element of a distributed array must have had that element
  delivered over the wire at least once — and every such delivery is
  counted in ``RuntimeStats.bytes_moved`` (the transports count the
  exact planned wire bytes; forwarding hops only add more).

Therefore, for any schedule the compiler could ever emit::

    bytes_moved  >=  sum over (rank, array) of
                     |elements read by rank \\ elements owned by rank|
                     * elem_bytes

The walker computes the right-hand side exactly for the scalarized
programs the pipeline analyzes: loop nests are enumerated with affine
bounds (loops whose variable reaches no subscript or inner bound are
executed once — repetition cannot enlarge a footprint), ``IF`` bodies
are skipped entirely (a guarded read may never execute; skipping
under-approximates, which keeps the bound sound), and reduction
intrinsics are excluded from the wire floor (the runtime reduces each
rank's *owned* piece, so their inputs never cross the wire, and their
combine traffic is deliberately not part of ``bytes_moved``).  Reduction
combining gets its own informational floor instead.  Anything the walker
cannot analyze exactly (non-affine subscripts, section arguments outside
reductions, arrays on mismatched grids) contributes zero — again an
under-approximation, never an overcount.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..affine import NonAffineError
from ..frontend import ast_nodes as ast
from ..frontend.analysis import ProgramInfo
from ..runtime.darray import Ownership, grid_ranks

#: Fixed element width of the runtime (doubles, as in the paper).
_SCALAR_BYTES = 8


@dataclass
class ArrayFloor:
    """Per-array slice of the wire floor."""

    array: str
    elem_bytes: int
    needed_elements: int  # non-owned elements read, summed over ranks

    @property
    def bytes(self) -> int:
        return self.needed_elements * self.elem_bytes


@dataclass
class LowerBoundReport:
    """The per-program communication floor.

    ``wire_floor_bytes`` is the provable minimum ``bytes_moved`` of any
    schedule (see the module docstring); ``reduction_floor_bytes`` is
    the separate tree-combine minimum for reduction intrinsics, which
    the runtime deliberately does not count in ``bytes_moved`` and so
    must never be folded into the gated ratio.
    """

    wire_floor_bytes: int
    reduction_floor_bytes: int
    per_array: dict[str, ArrayFloor] = field(default_factory=dict)
    unanalyzed_statements: int = 0

    def ratio(self, bytes_moved: int) -> "float | None":
        """``bytes_moved / wire_floor`` (None on a zero floor)."""
        if self.wire_floor_bytes <= 0:
            return None
        return bytes_moved / self.wire_floor_bytes

    def sound_for(self, bytes_moved: int) -> bool:
        """True iff the floor really is a floor for this execution."""
        return self.wire_floor_bytes <= bytes_moved

    def as_dict(self) -> dict[str, Any]:
        return {
            "wire_floor_bytes": self.wire_floor_bytes,
            "reduction_floor_bytes": self.reduction_floor_bytes,
            "per_array": {
                name: {
                    "needed_elements": f.needed_elements,
                    "bytes": f.bytes,
                }
                for name, f in sorted(self.per_array.items())
            },
            "unanalyzed_statements": self.unanalyzed_statements,
        }


class _FootprintWalker:
    """Enumerates the scalarized program and accumulates, per rank, the
    non-owned elements each distributed array is read at."""

    def __init__(self, info: ProgramInfo) -> None:
        self.info = info
        self.unanalyzed = 0
        self.reduction_floor = 0
        self._seen_reductions: set[int] = set()
        # Lazily built per distributed array: the list of grid ranks,
        # a (nranks, *shape) owned mask, and a same-shape need mask.
        self._masks: dict[str, tuple[list, np.ndarray, np.ndarray]] = {}

    # -- ownership masks ----------------------------------------------------

    def _array_masks(self, name: str):
        cached = self._masks.get(name)
        if cached is not None:
            return cached
        layout = self.info.layout(name)
        ranks = grid_ranks(layout.grid.shape)
        owned = np.zeros((len(ranks), *layout.shape), dtype=bool)
        ownership = Ownership(layout)
        for gr in ranks:
            rsd = ownership.owned_rsd(gr.coords)
            if not rsd.is_empty:
                idx = tuple(
                    slice(d.lo - 1, d.hi, d.step) for d in rsd.dims
                )
                owned[(gr.rank,) + idx] = True
        need = np.zeros_like(owned)
        self._masks[name] = (ranks, owned, need)
        return self._masks[name]

    # -- expression walk ----------------------------------------------------

    def _collect_reads(self, expr: ast.Expr, out: list[ast.ArrayRef]) -> None:
        """Distributed array reads in ``expr``, skipping reduction
        subtrees (their inputs are owned-local; see module docstring)."""
        if isinstance(expr, ast.Reduction):
            self._note_reduction(expr)
            return
        if isinstance(expr, ast.ArrayRef):
            if self.info.is_distributed(expr.name):
                out.append(expr)
            for sub in expr.subscripts:
                if isinstance(sub, ast.Index):
                    self._collect_reads(sub.expr, out)
            return
        if isinstance(expr, ast.BinOp):
            self._collect_reads(expr.left, out)
            self._collect_reads(expr.right, out)
        elif isinstance(expr, ast.UnOp):
            self._collect_reads(expr.operand, out)
        elif isinstance(expr, ast.Intrinsic):
            for arg in expr.args:
                self._collect_reads(arg, out)

    def _note_reduction(self, red: ast.Reduction) -> None:
        """Informational tree-combine floor: each distinct reduction
        site must move at least (P-1) partial results of scalar width,
        counted once per site (a repeated reduction could in principle
        be hoisted, so once is the floor)."""
        if id(red) in self._seen_reductions:
            return
        self._seen_reductions.add(id(red))
        if not self.info.is_distributed(red.arg.name):
            return
        layout = self.info.layout(red.arg.name)
        procs = layout.grid.size
        if procs > 1:
            self.reduction_floor += (procs - 1) * _SCALAR_BYTES

    # -- statement walk -----------------------------------------------------

    def walk(self, body: list[ast.Stmt], env: dict[str, int]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                self._assign(stmt, env)
            elif isinstance(stmt, ast.Do):
                self._do(stmt, env)
            # IF bodies are skipped wholesale: a guarded read may never
            # execute, and the branch condition itself is replicated
            # (the frontend rejects distributed reads in control), so
            # conditionals contribute nothing to a sound floor.

    def _do(self, stmt: ast.Do, env: dict[str, int]) -> None:
        try:
            lo = self.info.affine(stmt.lo).evaluate(env)
            hi = self.info.affine(stmt.hi).evaluate(env)
            step = self.info.affine(stmt.step).evaluate(env)
        except NonAffineError:
            self.unanalyzed += 1
            return
        if step == 0:
            self.unanalyzed += 1
            return
        stop = hi + 1 if step > 0 else hi - 1
        values = range(lo, stop, step)
        if not values:
            return
        if not self._var_reaches_subscripts(stmt.var, stmt.body):
            # Re-executing a body with an unchanged footprint cannot
            # enlarge the footprint: one trip suffices for the floor.
            values = values[:1]
        for value in values:
            env[stmt.var] = value
            self.walk(stmt.body, env)
        del env[stmt.var]

    def _var_reaches_subscripts(self, var: str, body: list[ast.Stmt]) -> bool:
        """Does ``var`` influence any subscript or inner loop bound?"""
        for stmt in ast.walk_stmts(body):
            exprs: list[ast.Expr] = []
            if isinstance(stmt, ast.Assign):
                exprs.append(stmt.rhs)
                if isinstance(stmt.lhs, ast.ArrayRef):
                    exprs.append(stmt.lhs)
            elif isinstance(stmt, ast.Do):
                exprs.extend((stmt.lo, stmt.hi, stmt.step))
            for expr in exprs:
                for node in ast.walk_expr(expr):
                    if not isinstance(node, ast.ArrayRef):
                        continue
                    for sub in node.subscripts:
                        parts = (
                            (sub.expr,) if isinstance(sub, ast.Index)
                            else (sub.lo, sub.hi, sub.step)
                        )
                        for part in parts:
                            if part is None:
                                continue
                            try:
                                form = self.info.affine(part)
                            except NonAffineError:
                                return True  # conservative: iterate fully
                            if var in form.symbols:
                                return True
            if isinstance(stmt, ast.Do):
                for bound in (stmt.lo, stmt.hi, stmt.step):
                    try:
                        if var in self.info.affine(bound).symbols:
                            return True
                    except NonAffineError:
                        return True
        return False

    def _element_of(
        self, ref: ast.ArrayRef, env: dict[str, int]
    ) -> "tuple[int, ...] | None":
        """The single global element a scalar reference touches, or None
        when the reference is not an analyzable point access."""
        layout = self.info.layout(ref.name)
        element = []
        for dim, sub in enumerate(ref.subscripts):
            if not isinstance(sub, ast.Index):
                return None  # a section outside a reduction: skip (sound)
            try:
                value = self.info.affine(sub.expr).evaluate(env)
            except NonAffineError:
                return None
            if not 1 <= value <= layout.dims[dim].extent:
                return None  # out-of-bounds never executes validly
            element.append(value)
        return tuple(element)

    def _assign(self, stmt: ast.Assign, env: dict[str, int]) -> None:
        reads: list[ast.ArrayRef] = []
        self._collect_reads(stmt.rhs, reads)

        lhs = stmt.lhs
        executing_rank: "int | None" = None  # None == replicated: all ranks
        lhs_grid = None
        if isinstance(lhs, ast.ArrayRef) and self.info.is_distributed(lhs.name):
            layout = self.info.layout(lhs.name)
            element = self._element_of(lhs, env)
            if element is None:
                if reads:
                    self.unanalyzed += 1
                return
            coords = Ownership(layout).owner_rank_coords(element)
            executing_rank = int(
                np.ravel_multi_index(coords, layout.grid.shape)
            )
            lhs_grid = layout.grid

        for ref in reads:
            layout = self.info.layout(ref.name)
            if lhs_grid is not None and layout.grid != lhs_grid:
                self.unanalyzed += 1  # cross-grid: no shared rank space
                continue
            element = self._element_of(ref, env)
            if element is None:
                self.unanalyzed += 1
                continue
            ranks, owned, need = self._array_masks(ref.name)
            idx = tuple(c - 1 for c in element)
            if executing_rank is not None:
                if not owned[(executing_rank,) + idx]:
                    need[(executing_rank,) + idx] = True
            else:
                # Replicated statement: every rank evaluates the RHS, so
                # every non-owner needs the element.
                need[(slice(None),) + idx] = True

    # -- result -------------------------------------------------------------

    def report(self) -> LowerBoundReport:
        per_array: dict[str, ArrayFloor] = {}
        total = 0
        for name, (_ranks, owned, need) in sorted(self._masks.items()):
            needed = int(np.count_nonzero(need & ~owned))
            if needed == 0:
                continue
            floor = ArrayFloor(
                array=name,
                elem_bytes=self.info.layout(name).elem_bytes,
                needed_elements=needed,
            )
            per_array[name] = floor
            total += floor.bytes
        return LowerBoundReport(
            wire_floor_bytes=total,
            reduction_floor_bytes=self.reduction_floor,
            per_array=per_array,
            unanalyzed_statements=self.unanalyzed,
        )


def lower_bound(info: ProgramInfo) -> LowerBoundReport:
    """The HBL-style communication floor of one elaborated (scalarized)
    program.  Depends only on the program and its data distribution —
    never on the placement strategy — so refining a strategy can only
    move ``bytes_moved`` toward the same fixed floor."""
    walker = _FootprintWalker(info)
    walker.walk(info.program.body, {})
    return walker.report()


def reduction_tree_messages(procs: int) -> int:
    """Messages of one combine+broadcast tree over ``procs`` ranks (the
    runtime's accounting for one reduction execution)."""
    if procs <= 1:
        return 0
    return 2 * math.ceil(math.log2(procs))
