"""The machine-derived cost model behind every combining decision.

The paper reads its ~20 KB combining threshold off the Figure 5 SP2
curves once, by hand.  This module derives it mechanically, per machine,
so the same compiler adapts to the SP2 preset, the NOW preset, or a
model calibrated from transport micro-benchmarks on the host actually
running the backends.

The derivation is the paper's own criterion made analytic: combining is
worthwhile until messages are large enough to amortize the per-message
cost, i.e. until delivered bandwidth reaches a fixed fraction ``f`` of
the asymptotic bandwidth ``B``.  With per-message cost ``C_eff`` the
delivered bandwidth at size ``n`` is ``n / (C_eff + n/B)``; setting that
to ``f*B`` and solving gives the knee in closed form::

    n_knee = f/(1-f) * B * C_eff

``C_eff`` is the per-message cost the runtime actually pays — network
startup plus the HPF software overhead (descriptor interpretation, tag
matching, completion wait) — because that is the cost combining
eliminates.  The knee is capped at the machine's cache size: past the
bcopy cliff (Fig 5's top curve) gathering a combined message evicts the
working set and combining turns counter-productive.

At the default fraction (0.8) the SP2 preset derives 18360 bytes —
within 11% of the paper's hand-read 20480 — and the NOW preset derives
a different, much larger knee (its per-message overhead is ~7x higher),
which is exactly the machine-dependence the paper's fixed constant
could not express.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.model import MACHINES, SP2, MachineModel

#: The bandwidth fraction defining the Fig 5 knee (both the analytic
#: closed form and the discrete profile read-off use it).
DEFAULT_KNEE_FRACTION = 0.8

#: §6.1's "bytes-equivalent" of one message startup for the exact
#: placement search.  Pinned rather than derived: the branch-and-bound /
#: MILP optimality-gap envelopes recorded in ``tests/golden/`` were
#: measured against this constant, and the placement argmin is not
#: scale-invariant in it.
PLACEMENT_STARTUP_BYTES = 4000.0


def resolve_machine(machine: "str | MachineModel") -> MachineModel:
    """A :class:`MachineModel` from a preset name or a model instance
    (calibrated models are passed through unchanged)."""
    if isinstance(machine, MachineModel):
        return machine
    try:
        return MACHINES[machine]
    except KeyError:
        known = ", ".join(sorted(MACHINES))
        raise ValueError(
            f"unknown machine {machine!r} (known presets: {known})"
        ) from None


def discrete_knee(
    curve: "list[tuple[int, float]]",
    fraction: float = DEFAULT_KNEE_FRACTION,
) -> int:
    """Smallest size on a measured/modelled ``(size, bandwidth)`` curve
    reaching ``fraction`` of the curve's peak bandwidth — the discrete
    read-off the Figure 5 profiler applies to its size axis."""
    if not curve:
        raise ValueError("knee of an empty bandwidth curve")
    target = fraction * max(bw for _size, bw in curve)
    for size, bw in curve:
        if bw >= target:
            return size
    return curve[-1][0]


@dataclass(frozen=True)
class PlacementCostModel:
    """§6.1's placement-search cost: startup ``C`` (scaled to
    inverse-bandwidth units, i.e. bytes-equivalent) plus transmitted
    volume.  Used by the exact branch-and-bound and MILP searches; the
    historical home was ``repro.core.ilp.CostModel`` (still importable
    under that name)."""

    startup: float = PLACEMENT_STARTUP_BYTES
    inv_bandwidth: float = 1.0


@dataclass(frozen=True)
class CostModel:
    """Single owner of cost decisions for one compilation.

    Wraps the :class:`MachineModel` the program is being compiled for
    and answers the one question every combining pass asks — "how large
    may a combined message grow?" — via :meth:`threshold_bytes`: an
    explicit override when the user gave one
    (``CompilerOptions.combine_threshold_bytes``), the machine-derived
    Fig 5 knee otherwise.
    """

    machine: MachineModel = SP2
    knee_fraction: float = DEFAULT_KNEE_FRACTION
    override_threshold_bytes: "int | None" = None

    def derived_threshold(self) -> int:
        """The analytic Fig 5 knee for this machine (see the module
        docstring): ``f/(1-f) * B * (startup + sw_overhead)``, capped at
        the cache size.  This is what replaces the paper's literal
        20 KB."""
        m = self.machine
        f = self.knee_fraction
        if not 0.0 < f < 1.0:
            raise ValueError(f"knee fraction must be in (0, 1), got {f}")
        per_message_s = m.startup_s + m.sw_overhead_s
        knee = (f / (1.0 - f)) * m.bandwidth_bps * per_message_s
        return max(1, min(int(round(knee)), m.cache_bytes))

    def threshold_bytes(self) -> int:
        """The combining threshold in effect: the explicit override if
        set, the derived knee otherwise."""
        if self.override_threshold_bytes is not None:
            return self.override_threshold_bytes
        return self.derived_threshold()

    def placement_model(self) -> PlacementCostModel:
        """The §6.1 search cost model (see
        :class:`PlacementCostModel` for why it is pinned)."""
        return PlacementCostModel()
