"""Unified cost-model layer: one owner for every cost decision.

Before this package, cost knowledge was scattered across five layers
that never talked: the :mod:`repro.machine.model` presets, the §6.1
simulator, the Figure 5 profiler (which derived the combining knee but
fed nothing back), the greedy/ILP/solver combiners (hard-coded 20 KB),
and bench-time-only transport calibration.  Everything routes through
here now:

* :class:`~repro.cost.model.CostModel` wraps a
  :class:`~repro.machine.model.MachineModel` and derives the combining
  threshold from the Fig 5 knee instead of the paper's hand-read 20 KB;
  every placement pass reads it via ``AnalysisContext.cost_model``.
* :mod:`repro.cost.lower_bound` computes an HBL-style per-program
  communication floor (Christ–Demmel–Knight–Scanlon–Yelick, arXiv
  1308.0068, adapted to the owner-computes partition), so every BENCH
  number can be read as "bytes moved vs. how few were possible".
"""

from .model import (
    DEFAULT_KNEE_FRACTION,
    CostModel,
    PlacementCostModel,
    discrete_knee,
    resolve_machine,
)

__all__ = [
    "DEFAULT_KNEE_FRACTION",
    "CostModel",
    "PlacementCostModel",
    "discrete_knee",
    "resolve_machine",
]
