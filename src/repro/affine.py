"""Affine integer expressions over named symbols.

The whole analysis side of the compiler — subscript analysis, dependence
testing, section computation — works on *affine* forms::

    c0 + c1*x1 + c2*x2 + ...

where the ``xi`` are loop induction variables or program parameters (``n``,
``nsteps``).  :class:`Affine` is an immutable value type with exact integer
coefficients, supporting the small algebra the compiler needs: addition,
subtraction, scaling, substitution of a symbol by another affine form, and
interval evaluation under symbol ranges.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .errors import DependenceError


class NonAffineError(DependenceError):
    """Raised when an expression cannot be put in affine form."""


class Affine:
    """An immutable affine form ``const + sum(coeff[s] * s)``.

    Zero coefficients are never stored, so two equal forms always compare
    and hash equal.
    """

    __slots__ = ("const", "coeffs", "_hash")

    def __init__(self, const: int = 0, coeffs: Mapping[str, int] | None = None) -> None:
        self.const = int(const)
        items = {}
        if coeffs:
            for name, c in coeffs.items():
                c = int(c)
                if c != 0:
                    items[name] = c
        self.coeffs = dict(sorted(items.items()))
        self._hash = hash((self.const, tuple(self.coeffs.items())))

    # -- constructors ------------------------------------------------------

    @staticmethod
    def constant(value: int) -> "Affine":
        cached = _CONSTANTS.get(value)
        if cached is not None:
            return cached
        return Affine(value)

    @staticmethod
    def symbol(name: str, coeff: int = 1) -> "Affine":
        if coeff == 1:
            cached = _SYMBOLS.get(name)
            if cached is None:
                cached = Affine(0, {name: 1})
                if len(_SYMBOLS) < _SYMBOL_POOL_LIMIT:
                    _SYMBOLS[name] = cached
            return cached
        return Affine(0, {name: coeff})

    # -- predicates --------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    @property
    def symbols(self) -> frozenset[str]:
        return frozenset(self.coeffs)

    def coeff(self, name: str) -> int:
        """Coefficient of ``name`` (0 if absent)."""
        return self.coeffs.get(name, 0)

    def depends_on(self, names: Iterable[str]) -> bool:
        return any(n in self.coeffs for n in names)

    # -- algebra -----------------------------------------------------------

    def __add__(self, other: "Affine | int") -> "Affine":
        if isinstance(other, int):
            return Affine(self.const + other, self.coeffs)
        merged = dict(self.coeffs)
        for name, c in other.coeffs.items():
            merged[name] = merged.get(name, 0) + c
        return Affine(self.const + other.const, merged)

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return Affine(-self.const, {n: -c for n, c in self.coeffs.items()})

    def __sub__(self, other: "Affine | int") -> "Affine":
        if isinstance(other, int):
            return Affine(self.const - other, self.coeffs)
        return self + (-other)

    def __rsub__(self, other: int) -> "Affine":
        return (-self) + other

    def scaled(self, factor: int) -> "Affine":
        if factor == 0:
            return Affine(0)
        return Affine(
            self.const * factor, {n: c * factor for n, c in self.coeffs.items()}
        )

    def __mul__(self, other: "Affine | int") -> "Affine":
        if isinstance(other, int):
            return self.scaled(other)
        if other.is_constant:
            return self.scaled(other.const)
        if self.is_constant:
            return other.scaled(self.const)
        raise NonAffineError(f"product of {self} and {other} is not affine")

    __rmul__ = __mul__

    def substitute(self, name: str, replacement: "Affine | int") -> "Affine":
        """Replace ``name`` with ``replacement`` throughout."""
        c = self.coeffs.get(name, 0)
        if c == 0:
            return self
        rest = {n: k for n, k in self.coeffs.items() if n != name}
        base = Affine(self.const, rest)
        if isinstance(replacement, int):
            return base + c * replacement
        return base + replacement.scaled(c)

    def substitute_all(self, bindings: Mapping[str, "Affine | int"]) -> "Affine":
        out = self
        for name, repl in bindings.items():
            out = out.substitute(name, repl)
        return out

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate to an integer; every symbol must be bound in ``env``."""
        total = self.const
        for name, c in self.coeffs.items():
            if name not in env:
                raise NonAffineError(f"unbound symbol {name!r} in {self}")
            total += c * env[name]
        return total

    def interval(self, ranges: Mapping[str, tuple[int, int]]) -> tuple[int, int]:
        """Min/max of the form when each symbol varies over an inclusive
        [lo, hi] range.  Symbols absent from ``ranges`` raise."""
        lo = hi = self.const
        for name, c in self.coeffs.items():
            if name not in ranges:
                raise NonAffineError(f"no range for symbol {name!r} in {self}")
            rlo, rhi = ranges[name]
            if rlo > rhi:
                raise NonAffineError(f"empty range for symbol {name!r}")
            if c >= 0:
                lo += c * rlo
                hi += c * rhi
            else:
                lo += c * rhi
                hi += c * rlo
        return lo, hi

    # -- comparison / display ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Affine):
            return NotImplemented
        return self.const == other.const and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Affine({self})"

    def __str__(self) -> str:
        parts: list[str] = []
        for name, c in self.coeffs.items():
            if c == 1:
                term = name
            elif c == -1:
                term = f"-{name}"
            else:
                term = f"{c}*{name}"
            if parts and not term.startswith("-"):
                parts.append(f"+{term}")
            else:
                parts.append(term)
        if self.const or not parts:
            if parts and self.const > 0:
                parts.append(f"+{self.const}")
            else:
                parts.append(str(self.const))
        return "".join(parts)


# Interning pools for the overwhelmingly common forms (Affine is immutable,
# so sharing is safe).  Constants cover typical bounds/offsets; the symbol
# pool is bounded because dependence testing mints fresh variable names.
_CONSTANTS: dict[int, Affine] = {v: Affine(v) for v in range(-64, 1025)}
_SYMBOL_POOL_LIMIT = 4096
_SYMBOLS: dict[str, Affine] = {}
