"""Precompiled execution plans for the SPMD runtime.

The element-wise executor re-derives everything on every firing: each
scalarized loop iteration walks the expression tree in Python, and each
communication firing re-computes partner ranks, overlap regions, and
eligibility masks from the symbolic section.  This module is the
inspector half of an inspector/executor split — pay the symbolic
analysis once, then run flat block operations:

* **Nest plans** (:func:`plan_nests`): a scalarized loop nest whose body
  is a single affine, injectively-subscripted assignment is lowered to a
  :class:`NestPlan`.  At runtime the plan is concretized against the
  enclosing loop environment (:func:`concretize_nest`) into numpy slice
  geometry, so the whole nest executes as one block operation per rank
  instead of ``count`` interpreted iterations.  Statements the vectorizer
  cannot prove rectangular keep the element-wise path; the reason is
  recorded so the bench harness can report degradations.

* **Communication plans** (:class:`CommPlanner`): every
  :class:`~repro.core.state.PlacedComm` is lowered once per concrete
  section tuple into a :class:`CommPlan` — a list of
  :class:`PlannedTransfer` records holding concrete per-rank numpy index
  tuples, partner ranks, forwarding masks (for the diagonal augmented
  exchanges), and wire byte/pair accounting.  Executing a plan is a
  handful of ``bcopy``-style slice copies; firing the same operation
  again with the same concrete sections reuses the plan from a cache
  keyed only by the enclosing loop variables' effect on the section.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..affine import Affine, NonAffineError
from ..comm.patterns import ReductionMapping, ShiftMapping
from ..distribution.layout import DistFormat
from ..errors import SimulationError
from ..frontend import ast_nodes as ast
from ..frontend.analysis import ProgramInfo
from ..sections.rsd import RSD, DimSection


class PlanFallback(Exception):
    """A planned nest cannot be executed as a block under the current
    runtime environment (e.g. a bound symbol only the interpreter can
    resolve); the caller falls back to element-wise execution."""


# ---------------------------------------------------------------------------
# Nest vectorization: static analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SubscriptPlan:
    """One affine subscript split into ``base + coeff * var`` where
    ``var`` is a nest variable (or absent)."""

    base: Affine
    var: str | None = None
    coeff: int = 0


@dataclass(frozen=True)
class RefPlan:
    """The subscript geometry of one array reference inside a nest."""

    name: str
    subs: tuple[SubscriptPlan, ...]


@dataclass
class NestPlan:
    """A perfect loop nest proven rectangular: single assignment body,
    affine bounds and subscripts, injective LHS."""

    outer_sid: int
    loops: tuple[ast.Do, ...]
    vars: tuple[str, ...]
    bounds: tuple[tuple[Affine, Affine, int], ...]  # (lo, hi, step) per loop
    assign: ast.Assign
    lhs: RefPlan
    rhs_refs: dict[int, RefPlan]  # id(ArrayRef) -> plan
    interior_sids: frozenset[int]


def _plan_ref(
    info: ProgramInfo, ref: ast.ArrayRef, vars: tuple[str, ...]
) -> "RefPlan | str":
    """Subscript geometry of one reference, or a fallback reason."""
    var_set = set(vars)
    subs: list[SubscriptPlan] = []
    used: set[str] = set()
    for sub in ref.subscripts:
        if not isinstance(sub, ast.Index):
            return "section subscript inside a loop nest"
        try:
            form = info.affine(sub.expr)
        except NonAffineError:
            return f"non-affine subscript {sub.expr} of {ref.name}"
        present = [v for v in vars if form.coeff(v) != 0]
        if len(present) > 1:
            return f"subscript of {ref.name} couples two loop variables"
        if present:
            (v,) = present
            if v in used:
                return f"loop variable {v} indexes two dimensions of {ref.name}"
            used.add(v)
            subs.append(SubscriptPlan(form.substitute(v, 0), v, form.coeff(v)))
        else:
            subs.append(SubscriptPlan(form))
    return RefPlan(ref.name, tuple(subs))


def analyze_nest(info: ProgramInfo, do: ast.Do) -> "NestPlan | str":
    """Prove one DO nest rectangular, or explain why it is not."""
    loops = [do]
    while len(loops[-1].body) == 1 and isinstance(loops[-1].body[0], ast.Do):
        loops.append(loops[-1].body[0])
    innermost = loops[-1]
    if len(innermost.body) != 1 or not isinstance(innermost.body[0], ast.Assign):
        return "loop body is not a single assignment"
    assign = innermost.body[0]
    vars = tuple(l.var for l in loops)
    if len(set(vars)) != len(vars):
        return "duplicate loop variable in nest"

    bounds: list[tuple[Affine, Affine, int]] = []
    for loop in loops:
        try:
            lo = info.affine(loop.lo)
            hi = info.affine(loop.hi)
            step = info.affine(loop.step)
        except NonAffineError:
            return "non-affine loop bounds"
        if not step.is_constant or step.const < 1:
            return "non-constant or non-positive loop step"
        if (lo.symbols | hi.symbols) & set(vars):
            return "loop bounds depend on nest variables"
        bounds.append((lo, hi, step.const))

    if not isinstance(assign.lhs, ast.ArrayRef):
        return "scalar assignment inside a loop nest"
    lhs = _plan_ref(info, assign.lhs, vars)
    if isinstance(lhs, str):
        return lhs
    counts = {v: 0 for v in vars}
    for sp in lhs.subs:
        if sp.var is not None:
            counts[sp.var] += 1
            if sp.coeff < 0:
                return "negative stride on the written array"
    if any(c != 1 for c in counts.values()):
        return "loop variable absent from LHS (non-injective write)"

    for node in ast.walk_expr(assign.rhs):
        if isinstance(node, ast.Reduction):
            return "reduction inside a loop nest"
    rhs_refs: dict[int, RefPlan] = {}
    for node in ast.array_refs(assign.rhs):
        rp = _plan_ref(info, node, vars)
        if isinstance(rp, str):
            return rp
        if node.name == lhs.name and rp.subs != lhs.subs:
            return "potentially overlapping read of the written array"
        rhs_refs[id(node)] = rp

    interior = frozenset(
        {l.sid for l in loops[1:]} | {assign.sid}
    )
    return NestPlan(
        outer_sid=do.sid,
        loops=tuple(loops),
        vars=vars,
        bounds=tuple(bounds),
        assign=assign,
        lhs=lhs,
        rhs_refs=rhs_refs,
        interior_sids=interior,
    )


def plan_nests(
    info: ProgramInfo, body: list[ast.Stmt]
) -> tuple[dict[int, NestPlan], dict[int, str]]:
    """Plan every DO nest in ``body``.

    Returns ``(plans, fallbacks)``: plans keyed by the outer loop's sid,
    and — for every assignment that will keep the element-wise path
    because some enclosing loop failed the analysis — the reason, keyed
    by the assignment's sid.  Assignments outside any loop execute once
    and are not counted as degradations.
    """
    plans: dict[int, NestPlan] = {}
    fallbacks: dict[int, str] = {}

    def visit(stmts: list[ast.Stmt], reason: str | None) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Do):
                outcome = analyze_nest(info, stmt)
                if isinstance(outcome, NestPlan):
                    plans[stmt.sid] = outcome
                else:
                    visit(stmt.body, outcome)
            elif isinstance(stmt, ast.If):
                visit(stmt.then_body, reason)
                visit(stmt.else_body, reason)
            elif isinstance(stmt, ast.Assign) and reason is not None:
                fallbacks[stmt.sid] = reason

    visit(body, None)
    return plans, fallbacks


# ---------------------------------------------------------------------------
# Nest concretization: plan + loop environment -> numpy geometry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConcreteRef:
    """One reference's geometry under a concrete environment.

    ``dims`` holds, per array dimension, either ``('p', index)`` — a
    1-based point — or ``('a', axis, start, stride)``: the element read
    at iteration ``k`` of nest axis ``axis`` is ``start + stride * k``
    (``start`` 1-based, for the *full* iteration box).
    """

    name: str
    dims: tuple[tuple, ...]
    axes: tuple[int, ...]  # nest axes present, ascending


@dataclass
class ConcreteNest:
    """A nest plan bound to one runtime environment."""

    plan: NestPlan
    axes: tuple[tuple[int, int, int], ...]  # (first value, step, count) per var
    shape: tuple[int, ...]  # iteration box extents
    lhs: ConcreteRef
    refs: dict[int, ConcreteRef]  # id(ArrayRef) -> geometry

    def full_box(self) -> tuple[tuple[int, int, int], ...]:
        return tuple((0, 1, count) for count in self.shape)


def concretize_nest(
    plan: NestPlan, env: dict[str, int], info: ProgramInfo
) -> ConcreteNest | None:
    """Bind a nest plan to the enclosing loop environment.

    Returns ``None`` for an empty iteration space; raises
    :class:`PlanFallback` when a bound or subscript cannot be resolved
    statically (the caller reverts to element-wise execution).
    """
    axes: list[tuple[int, int, int]] = []
    for lo, hi, step in plan.bounds:
        try:
            lo_v = lo.evaluate(env)
            hi_v = hi.evaluate(env)
        except NonAffineError as exc:
            raise PlanFallback(f"unresolvable loop bound: {exc}") from exc
        count = max(0, (hi_v - lo_v) // step + 1)
        if count == 0:
            return None
        axes.append((lo_v, step, count))
    shape = tuple(count for _, _, count in axes)

    var_axis = {v: i for i, v in enumerate(plan.vars)}

    def bind(rp: RefPlan) -> ConcreteRef:
        dims: list[tuple] = []
        extents = info.shape(rp.name)
        present: list[int] = []
        for d, sp in enumerate(rp.subs):
            try:
                base = sp.base.evaluate(env)
            except NonAffineError as exc:
                raise PlanFallback(f"unresolvable subscript: {exc}") from exc
            if sp.var is None:
                if not 1 <= base <= extents[d]:
                    raise PlanFallback(
                        f"subscript of {rp.name} out of bounds"
                    )
                dims.append(("p", base))
                continue
            axis = var_axis[sp.var]
            lo_v, step, count = axes[axis]
            start = base + sp.coeff * lo_v
            stride = sp.coeff * step
            last = start + stride * (count - 1)
            if not (1 <= min(start, last) and max(start, last) <= extents[d]):
                raise PlanFallback(f"subscript of {rp.name} out of bounds")
            present.append(axis)
            dims.append(("a", axis, start, stride))
        return ConcreteRef(rp.name, tuple(dims), tuple(sorted(present)))

    return ConcreteNest(
        plan=plan,
        axes=tuple(axes),
        shape=shape,
        lhs=bind(plan.lhs),
        refs={rid: bind(rp) for rid, rp in plan.rhs_refs.items()},
    )


def ref_np_index(cref: ConcreteRef, kbox: tuple[tuple[int, int, int], ...]):
    """numpy index tuple (array-dim order) for ``cref`` restricted to the
    iteration sub-box ``kbox`` (per nest axis: k0, kstep, kcount)."""
    idx: list = []
    for d in cref.dims:
        if d[0] == "p":
            idx.append(d[1] - 1)
            continue
        _, axis, start, stride = d
        k0, kstep, kcount = kbox[axis]
        first = start + stride * k0 - 1  # 0-based
        st = stride * kstep
        last = first + st * (kcount - 1)
        if st > 0:
            idx.append(slice(first, last + 1, st))
        else:
            stop = last - 1
            idx.append(slice(first, stop if stop >= 0 else None, st))
    return tuple(idx)


def ref_region(cref: ConcreteRef, kbox) -> RSD:
    """The (1-based) element region ``cref`` touches over ``kbox``."""
    dims: list[DimSection] = []
    for d in cref.dims:
        if d[0] == "p":
            dims.append(DimSection(d[1], d[1]))
            continue
        _, axis, start, stride = d
        k0, kstep, kcount = kbox[axis]
        first = start + stride * k0
        st = stride * kstep
        last = first + st * (kcount - 1)
        lo, hi = (first, last) if st > 0 else (last, first)
        dims.append(DimSection(lo, hi, abs(st) if kcount > 1 else 1))
    return RSD(tuple(dims))


def aligned_block(
    raw: np.ndarray, cref: ConcreteRef, kbox
) -> np.ndarray:
    """Reshape a raw slice (array-dim order) into iteration-box order,
    with size-1 axes for nest axes the reference does not carry."""
    order = [d[1] for d in cref.dims if d[0] == "a"]  # nest axis per block axis
    block = raw.transpose(tuple(int(i) for i in np.argsort(order)))
    target = tuple(
        kbox[a][2] if a in cref.axes else 1 for a in range(len(kbox))
    )
    return block.reshape(target)


def box_slice(kbox) -> tuple:
    """k-space numpy index selecting ``kbox`` out of a full-box block."""
    return tuple(
        slice(k0, k0 + kstep * (kcount - 1) + 1, kstep)
        for k0, kstep, kcount in kbox
    )


def store_order(block: np.ndarray, clhs: ConcreteRef) -> np.ndarray:
    """Transpose a box-shaped block into the LHS's array-dim order."""
    axes = tuple(d[1] for d in clhs.dims if d[0] == "a")
    return block.transpose(axes)


def rank_kbox(conc: ConcreteNest, owned: RSD):
    """The iteration sub-box whose LHS elements fall inside ``owned``;
    ``None`` when the rank owns none (or a scalar LHS dim misses)."""
    kbox: list[tuple[int, int, int] | None] = [None] * len(conc.shape)
    for dim, d in enumerate(conc.lhs.dims):
        osec = owned.dims[dim]
        if d[0] == "p":
            if not osec.contains_point(d[1]):
                return None
            continue
        _, axis, start, stride = d  # stride > 0: LHS coeffs are positive
        count = conc.shape[axis]
        prog = DimSection(start, start + stride * (count - 1), stride)
        inter = prog.intersect(osec)
        if inter.is_empty:
            return None
        k0 = (inter.lo - start) // stride
        kcount = inter.count()
        kstep = inter.step // stride if kcount > 1 else 1
        kbox[axis] = (k0, kstep, kcount)
    assert all(b is not None for b in kbox)
    return tuple(kbox)


# ---------------------------------------------------------------------------
# Block expression evaluation
# ---------------------------------------------------------------------------


def _vec_binop(op: str, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    if op == "==":
        return np.where(left == right, 1.0, 0.0)
    if op == "/=":
        return np.where(left != right, 1.0, 0.0)
    if op == "<":
        return np.where(left < right, 1.0, 0.0)
    if op == "<=":
        return np.where(left <= right, 1.0, 0.0)
    if op == ">":
        return np.where(left > right, 1.0, 0.0)
    if op == ">=":
        return np.where(left >= right, 1.0, 0.0)
    if op == "AND":
        return np.where((left != 0) & (right != 0), 1.0, 0.0)
    if op == "OR":
        return np.where((left != 0) | (right != 0), 1.0, 0.0)
    raise SimulationError(f"unknown operator {op!r}")


def _vec_intrinsic(name: str, args):
    if name == "SQRT":
        return np.sqrt(args[0])
    if name == "ABS":
        return np.abs(args[0])
    if name == "EXP":
        return np.exp(args[0])
    if name == "LOG":
        return np.log(args[0])
    if name == "MOD":
        return np.mod(args[0], args[1])
    if name == "MIN":
        return np.minimum(args[0], args[1])
    if name == "MAX":
        return np.maximum(args[0], args[1])
    raise SimulationError(f"unknown intrinsic {name!r}")


def var_axis_block(conc: ConcreteNest, axis: int, kbox) -> np.ndarray:
    """The loop variable's runtime values over ``kbox``, aligned on its
    nest axis (so ``a(i) = i * 2`` style value uses vectorize too)."""
    lo_v, step, _ = conc.axes[axis]
    k0, kstep, kcount = kbox[axis]
    values = (
        lo_v + step * (k0 + kstep * np.arange(kcount, dtype=np.float64))
    )
    shape = tuple(kcount if a == axis else 1 for a in range(len(kbox)))
    return values.reshape(shape)


def eval_rhs_block(
    conc: ConcreteNest,
    kbox,
    arrays: dict[str, np.ndarray],
    scalar_lookup,
):
    """Evaluate the nest's RHS over ``kbox`` against global ``arrays``.

    Returns a value broadcastable to the box shape.  ``scalar_lookup``
    resolves non-nest variables (loop vars of enclosing loops, scalars,
    parameters) exactly like the element-wise interpreter.
    """
    var_axis = {v: i for i, v in enumerate(conc.plan.vars)}

    def ev(expr: ast.Expr):
        if isinstance(expr, ast.Num):
            return float(expr.value)
        if isinstance(expr, ast.VarRef):
            axis = var_axis.get(expr.name)
            if axis is not None:
                return var_axis_block(conc, axis, kbox)
            return float(scalar_lookup(expr.name))
        if isinstance(expr, ast.ArrayRef):
            cref = conc.refs[id(expr)]
            raw = arrays[cref.name][ref_np_index(cref, kbox)]
            return aligned_block(raw, cref, kbox)
        if isinstance(expr, ast.BinOp):
            return _vec_binop(expr.op, ev(expr.left), ev(expr.right))
        if isinstance(expr, ast.UnOp):
            value = ev(expr.operand)
            if expr.op == "-":
                return -value
            return np.where(value != 0, 0.0, 1.0)
        if isinstance(expr, ast.Intrinsic):
            return _vec_intrinsic(expr.name, [ev(a) for a in expr.args])
        raise SimulationError(f"cannot block-evaluate {expr!r}")

    return ev(conc.plan.assign.rhs)


# ---------------------------------------------------------------------------
# Communication plans
# ---------------------------------------------------------------------------


@dataclass
class PlannedTransfer:
    """One block move: extract ``index`` from rank ``src``'s storage and
    install it on every rank in ``dsts``.  ``mask`` (diagonal augmented
    exchanges only) restricts the move to the eligible elements of the
    indexed box; masked transfers have exactly one destination.

    ``nbytes`` is the per-destination payload size on the wire and
    ``phase`` the execution round: a transfer in phase ``k`` may read
    data delivered by phases ``< k`` (the diagonal augmented exchanges
    forward corner data), so a message-passing backend must order
    phases with a barrier between them.

    ``entry_idx`` records which of the operation's entries produced the
    transfer, so a cached plan can be *translated* to a different
    section offset entry by entry (:func:`translate_plan`).
    """

    array: str
    src: int
    dsts: tuple[int, ...]
    index: tuple
    region: RSD | None = None
    mask: np.ndarray | None = None
    nbytes: int = 0
    phase: int = 0
    entry_idx: int = 0


@dataclass
class CommPlan:
    """A lowered communication operation: flat transfers plus the wire
    accounting the element-wise executor would have produced."""

    transfers: list[PlannedTransfer]
    wire_pairs: frozenset[tuple[int, int]]
    wire_bytes: int

    def pair_bytes(self) -> dict[tuple[int, int], int]:
        """Plan-time per-pair wire bytes (self-deliveries excluded) —
        the ground truth transport-measured traffic is checked against."""
        out: dict[tuple[int, int], int] = {}
        for t in self.transfers:
            for dst in t.dsts:
                if dst != t.src:
                    key = (t.src, dst)
                    out[key] = out.get(key, 0) + t.nbytes
        return out


def _np_index(rsd: RSD):
    return tuple(slice(d.lo - 1, d.hi, d.step) for d in rsd.dims)


class CommPlanner:
    """Lowers placed communication operations into :class:`CommPlan`\\ s.

    Owns no storage: partner ranks, overlap regions, and forwarding
    masks depend only on the layout tables and the concrete sections, so
    a plan compiled once is valid for every firing that produces the
    same sections.
    """

    def __init__(self, info, grid, ranks, ownership, coords_for,
                 shift_partner, rank_of) -> None:
        self.info = info
        self.grid = grid
        self.ranks = ranks
        self.ownership = ownership
        self._coords_for = coords_for
        self._shift_partner = shift_partner
        self._rank_of = rank_of

    def compile_op(self, op, sections) -> CommPlan:
        """Lower one PlacedComm given each entry's concrete section
        (``None`` for reduction-mapping entries, which move no data at
        their anchor)."""
        transfers: list[PlannedTransfer] = []
        pairs: set[tuple[int, int]] = set()
        nbytes = 0
        for entry_idx, (entry, section) in enumerate(
            zip(op.entries, sections)
        ):
            before = len(transfers)
            if section is None or section.is_empty:
                continue
            mapping = entry.pattern.mapping
            if isinstance(mapping, ReductionMapping):
                continue
            layout = self.info.layout(entry.array)
            own = self.ownership[entry.array]
            if isinstance(mapping, ShiftMapping):
                elem_shifts = dict(entry.pattern.elem_shifts)
                axes = [
                    a for a, s in enumerate(mapping.proc_shifts) if s != 0
                ]
                if len(axes) == 1:
                    nbytes += self._plan_axis_shift(
                        entry, section, layout, own, mapping, elem_shifts,
                        transfers, pairs,
                    )
                else:
                    nbytes += self._plan_diagonal_shift(
                        entry, section, layout, own, mapping, elem_shifts,
                        axes, transfers, pairs,
                    )
            else:
                nbytes += self._plan_assemble(
                    entry, section, layout, own, transfers, pairs
                )
            for t in transfers[before:]:
                t.entry_idx = entry_idx
        return CommPlan(transfers, frozenset(pairs), nbytes)

    def _plan_assemble(
        self, entry, section, layout, own, transfers, pairs
    ) -> int:
        """Assemble the section from its owners onto every rank."""
        nbytes = 0
        all_ranks = tuple(gr.rank for gr in self.ranks)
        for gr in self.ranks:
            owned = own.owned_rsd(self._coords_for(layout, gr))
            piece = section.intersect(owned)
            if piece.is_empty:
                continue
            size = piece.count()
            transfers.append(PlannedTransfer(
                array=entry.array,
                src=gr.rank,
                dsts=all_ranks,
                index=_np_index(piece),
                region=piece,
                nbytes=size * layout.elem_bytes,
            ))
            for dst in all_ranks:
                if dst != gr.rank:
                    pairs.add((gr.rank, dst))
                    nbytes += size * layout.elem_bytes
        return nbytes

    def _plan_axis_shift(
        self, entry, section, layout, own, mapping, elem_shifts,
        transfers, pairs,
    ) -> int:
        """Single-axis shift: each rank receives its shifted needs from
        the partner along the one moving axis."""
        nbytes = 0
        for gr in self.ranks:
            src_coords = self._shift_partner(
                layout, gr.coords, mapping.proc_shifts
            )
            if src_coords is None:
                continue  # boundary: no partner in this direction
            needs = own.shifted_needs(gr.coords, elem_shifts)
            recv = section.intersect(needs).intersect(
                own.owned_rsd(src_coords)
            )
            if recv.is_empty:
                continue
            src_rank = self._rank_of(src_coords)
            transfers.append(PlannedTransfer(
                array=entry.array,
                src=src_rank,
                dsts=(gr.rank,),
                index=_np_index(recv),
                region=recv,
                nbytes=recv.count() * layout.elem_bytes,
            ))
            pairs.add((src_rank, gr.rank))
            nbytes += recv.count() * layout.elem_bytes
        return nbytes

    def _plan_diagonal_shift(
        self, entry, section, layout, own, mapping, elem_shifts, axes,
        transfers, pairs,
    ) -> int:
        """Diagonal shift via sequential augmented axis exchanges: phase
        k moves along one axis; eligibility masks simulated at plan time
        decide which elements each phase forwards (corner data travels
        two hops, paper §2.2)."""
        # Cyclic dims interleave owners; the augmented-band scheme below
        # is block-halo specific, so assemble instead.
        for dim in elem_shifts:
            if layout.dims[dim].format is DistFormat.CYCLIC:
                return self._plan_assemble(
                    entry, section, layout, own, transfers, pairs
                )
        nbytes = 0
        boxes = {
            gr.rank: section.intersect(own.halo_band(gr.coords, elem_shifts))
            for gr in self.ranks
        }
        eligible: dict[int, np.ndarray] = {}
        for gr in self.ranks:
            mask = np.zeros(layout.shape, dtype=bool)
            owned = own.owned_rsd(self._coords_for(layout, gr))
            if not owned.is_empty:
                mask[_np_index(owned)] = True
            eligible[gr.rank] = mask

        for phase_no, axis in enumerate(axes):
            phase_shift = tuple(
                s if a == axis else 0
                for a, s in enumerate(mapping.proc_shifts)
            )
            phase: list[tuple[int, int, tuple, np.ndarray]] = []
            for gr in self.ranks:
                src_coords = self._shift_partner(
                    layout, gr.coords, phase_shift
                )
                if src_coords is None:
                    continue
                box = boxes[gr.rank]
                if box.is_empty:
                    continue
                src_rank = self._rank_of(src_coords)
                idx = _np_index(box)
                take = eligible[src_rank][idx] & ~eligible[gr.rank][idx]
                if not take.any():
                    continue
                phase.append((gr.rank, src_rank, idx, take))
            for dst_rank, src_rank, idx, take in phase:
                transfers.append(PlannedTransfer(
                    array=entry.array,
                    src=src_rank,
                    dsts=(dst_rank,),
                    index=idx,
                    mask=take,
                    nbytes=int(take.sum()) * layout.elem_bytes,
                    phase=phase_no,
                ))
                elig = eligible[dst_rank][idx]
                elig[take] = True
                eligible[dst_rank][idx] = elig
                pairs.add((src_rank, dst_rank))
                nbytes += int(take.sum()) * layout.elem_bytes
        return nbytes


def translate_plan(
    plan: CommPlan,
    base_offsets: tuple,
    offsets: tuple,
) -> CommPlan:
    """Shift a cached plan to a translated section tuple.

    ``base_offsets``/``offsets`` hold, per entry, a tuple of 1-based
    section origins for the dimensions the executor canonicalized (and
    ``None`` for dimensions — or whole entries — it did not).  The
    caller guarantees the two section tuples agree on everything except
    those origins, and that canonicalized dimensions are *serial* (no
    grid axis, full-extent ownership) and unshifted by the operation:
    under those conditions partner ranks, transfer counts, per-element
    eligibility masks, and wire accounting are translation-invariant, so
    translating is just adding the per-dimension delta to every index
    slice and region bound.  Masks and the pair/byte totals are shared
    with the base plan (they are read-only at execution time).
    """
    deltas: list = []
    changed = False
    for base_entry, new_entry in zip(base_offsets, offsets):
        if base_entry is None:
            deltas.append(None)
            continue
        dd = tuple(
            (n - b) if b is not None else 0
            for b, n in zip(base_entry, new_entry)
        )
        deltas.append(dd)
        if any(dd):
            changed = True
    if not changed:
        return plan

    transfers: list[PlannedTransfer] = []
    for t in plan.transfers:
        dd = deltas[t.entry_idx] if t.entry_idx < len(deltas) else None
        if dd is None or not any(dd):
            transfers.append(t)
            continue
        index = tuple(
            part if dd[d] == 0 else
            slice(part.start + dd[d], part.stop + dd[d], part.step)
            for d, part in enumerate(t.index)
        )
        region = t.region
        if region is not None:
            region = RSD(tuple(
                sec if dd[d] == 0 else
                DimSection(sec.lo + dd[d], sec.hi + dd[d], sec.step)
                for d, sec in enumerate(region.dims)
            ))
        transfers.append(PlannedTransfer(
            array=t.array,
            src=t.src,
            dsts=t.dsts,
            index=index,
            region=region,
            mask=t.mask,
            nbytes=t.nbytes,
            phase=t.phase,
            entry_idx=t.entry_idx,
        ))
    return CommPlan(transfers, plan.wire_pairs, plan.wire_bytes)
