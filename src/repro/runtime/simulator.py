"""Bulk-synchronous SPMD cost simulation.

Given a compiled program (a communication schedule over the augmented CFG)
and a :class:`MachineModel`, the simulator computes the program's compute
and communication time under the paper's §6.1 model: per executed
communication operation, startup × partners + volume / bandwidth (+ local
packing through ``bcopy`` for combined/strided data); bulk-synchronous, so
per-phase cost is the per-processor cost (our patterns are symmetric) and
total cost is the sum over executions.

Execution counts come from loop trip counts (symbolic bounds are evaluated
with outer variables at their range midpoints — exact for the rectangular
loops of every benchmark).  Compute time distributes each statement's
per-iteration operation count over the processors owning the left-hand
side, per the owner-computes rule.

This is the stand-in for the paper's physical SP2/NOW runs; it reproduces
the *shape* of Figure 10's normalized-time charts (who wins, by what
factor, and how the gap changes with problem size), not absolute seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..comm.compatibility import message_volume
from ..comm.patterns import (
    AllGatherMapping,
    GeneralMapping,
    ReductionMapping,
    ShiftMapping,
)
from ..core.pipeline import CompilationResult
from ..core.state import PlacedComm
from ..frontend import ast_nodes as ast
from ..ir.cfg import Loop, Node
from ..machine.model import MachineModel


@dataclass
class CommOpCost:
    """Cost breakdown of one placed communication operation.

    ``hidden_time`` is wire/packing time overlapped with computation
    between the placement point and the first use (only nonzero in
    overlap mode, §6); ``pressure_time`` is the cache/buffer-contention
    penalty of holding the message buffer across that same distance (only
    nonzero in cache-pressure mode) — the two sides of the trade-off the
    paper's push-late rule navigates.
    """

    op: PlacedComm
    executions: int
    messages_per_exec: int
    bytes_per_exec: int
    startup_time: float
    wire_time: float
    packing_time: float
    hidden_time: float = 0.0
    pressure_time: float = 0.0

    @property
    def total_time(self) -> float:
        exposed = max(0.0, self.wire_time + self.packing_time - self.hidden_time)
        return self.startup_time + exposed + self.pressure_time

    @property
    def total_messages(self) -> int:
        return self.executions * self.messages_per_exec

    @property
    def total_bytes(self) -> int:
        return self.executions * self.bytes_per_exec


@dataclass
class SimReport:
    """Per-run simulation outcome.

    ``lower_bound_bytes`` is the per-processor-summed HBL-style floor from
    :mod:`repro.cost.lower_bound` when the caller supplies it — purely
    informational context beside the modeled traffic (the simulator's own
    byte counts are per-processor, so the two are reported side by side,
    not gated against each other)."""

    machine: str
    strategy: str
    compute_time: float
    comm_ops: list[CommOpCost] = field(default_factory=list)
    lower_bound_bytes: "int | None" = None

    @property
    def comm_time(self) -> float:
        return sum(c.total_time for c in self.comm_ops)

    @property
    def startup_time(self) -> float:
        return sum(c.startup_time for c in self.comm_ops)

    @property
    def total_time(self) -> float:
        return self.compute_time + self.comm_time

    @property
    def messages_per_proc(self) -> int:
        return sum(c.total_messages for c in self.comm_ops)

    @property
    def bytes_per_proc(self) -> int:
        return sum(c.total_bytes for c in self.comm_ops)

    def summary(self) -> dict[str, float]:
        out = {
            "compute_s": self.compute_time,
            "comm_s": self.comm_time,
            "total_s": self.total_time,
            "messages": float(self.messages_per_proc),
            "megabytes": self.bytes_per_proc / 1e6,
        }
        if self.lower_bound_bytes is not None:
            out["lower_bound_megabytes"] = self.lower_bound_bytes / 1e6
        return out


class Simulator:
    """Cost simulation of one compiled program on one machine.

    ``overlap`` models §6's CPU-network overlap: non-startup communication
    time hides behind the computation between the placement point and the
    first consuming statement.  ``cache_pressure`` models the contention
    the paper's push-late rule avoids: buffers held across computation
    evict its working set, charged as a slowdown proportional to the
    buffer:cache ratio over the residency window.  Both default off, which
    reproduces the paper's measurement setup ("measurements were made with
    overlap disabled").
    """

    # Fraction of the residency window lost when buffers fill the cache.
    PRESSURE_FACTOR = 0.3

    def __init__(
        self,
        result: CompilationResult,
        machine: MachineModel,
        overlap: bool = False,
        cache_pressure: bool = False,
        lower_bound_bytes: "int | None" = None,
    ) -> None:
        self.result = result
        self.machine = machine
        self.overlap = overlap
        self.cache_pressure = cache_pressure
        self.lower_bound_bytes = lower_bound_bytes
        self.ctx = result.ctx
        self.info = result.ctx.info
        self._trip_cache: dict[int, int] = {}

    # -- loop trip accounting ---------------------------------------------------

    def _midpoint_env(self, loops: list[Loop]) -> dict[str, int]:
        env: dict[str, int] = {}
        for loop in loops:
            lo = self.info.affine(loop.stmt.lo).evaluate(env)
            hi = self.info.affine(loop.stmt.hi).evaluate(env)
            env[loop.var] = (lo + hi) // 2
        return env

    def loop_trip(self, loop: Loop) -> int:
        """Trip count with outer variables at midpoints."""
        key = id(loop)
        if key in self._trip_cache:
            return self._trip_cache[key]
        outer = loop.preheader.loops_containing()
        env = self._midpoint_env(outer)
        lo = self.info.affine(loop.stmt.lo).evaluate(env)
        hi = self.info.affine(loop.stmt.hi).evaluate(env)
        step = self.info.affine(loop.stmt.step).evaluate({})
        trips = max(0, (hi - lo) // step + 1)
        self._trip_cache[key] = trips
        return trips

    def executions_of(self, node: Node) -> int:
        count = 1
        for loop in node.loops_containing():
            count *= self.loop_trip(loop)
        return count

    # -- communication costs ------------------------------------------------------

    def _op_cost(self, op: PlacedComm) -> CommOpCost:
        node = self.ctx.node_of(op.position)
        execs = self.executions_of(node)
        ranges = self.ctx.sections.live_ranges_at(node)

        total_bytes = 0
        for entry in op.entries:
            section = self.ctx.sections.section_at(entry.use, node)
            total_bytes += message_volume(self.info, entry, section, ranges)

        mapping = op.entries[0].pattern.mapping
        m = self.machine
        if isinstance(mapping, ShiftMapping):
            messages = max(1, mapping.partners)
            wire = total_bytes / m.bandwidth_bps
        elif isinstance(mapping, ReductionMapping):
            procs = mapping.procs_combined()
            messages = 2 * max(1, math.ceil(math.log2(max(procs, 2))))
            wire = messages * total_bytes / m.bandwidth_bps
        elif isinstance(mapping, AllGatherMapping):
            procs = mapping.procs_combined()
            messages = max(1, procs - 1)
            wire = messages * max(1, total_bytes) / m.bandwidth_bps
        else:
            assert isinstance(mapping, GeneralMapping)
            procs = self.info.layout(op.entries[0].array).grid.size
            messages = max(1, procs - 1)
            wire = total_bytes / m.bandwidth_bps
        # Network startup is paid per wire message; the runtime-library
        # overhead (descriptor interpretation, call dispatch, completion
        # wait) is paid once per call-site execution — this is exactly the
        # per-call cost that message combining eliminates.
        per_exec_overhead = messages * m.startup_s + m.sw_overhead_s

        # Packing: halo sections are strided and combined messages are
        # gathered into one buffer (the Fig 5 bcopy curve; this is what
        # makes over-aggressive combining counter-productive past the
        # cache size).
        packing = m.bcopy_time(total_bytes) * 2  # pack + unpack

        hidden = 0.0
        pressure = 0.0
        if self.overlap or self.cache_pressure:
            residency_s = self._residency_seconds(op)
            if self.overlap:
                hidden = min(max(0.0, wire) + packing, residency_s)
            if self.cache_pressure:
                ratio = min(1.0, total_bytes / m.cache_bytes)
                pressure = self.PRESSURE_FACTOR * ratio * residency_s

        return CommOpCost(
            op=op,
            executions=execs,
            messages_per_exec=messages,
            bytes_per_exec=total_bytes,
            startup_time=execs * per_exec_overhead,
            wire_time=execs * max(0.0, wire),
            packing_time=execs * packing,
            hidden_time=execs * hidden,
            pressure_time=execs * pressure,
        )

    def _residency_seconds(self, op: PlacedComm) -> float:
        """Per-execution compute time between the operation's placement
        point and its first consuming statement — the window a buffer
        stays live (and the window available for overlap)."""
        from ..codegen.spmd import anchor_of_position

        anchor = anchor_of_position(self.ctx, op.position)
        if anchor[0] == "start":
            anchor_sid = 0
        elif anchor[0] == "end":
            return 0.0
        else:
            anchor_sid = anchor[1]
        first_use = min(
            consumer.use.stmt.sid
            for entry in op.entries
            for consumer in [entry, *entry.absorbed]
        )
        if first_use <= anchor_sid:
            return 0.0

        op_execs = self.executions_of(self.ctx.node_of(op.position))
        total_ops = 0.0
        for node in self.ctx.cfg.nodes:
            for stmt in node.stmts:
                if anchor_sid < stmt.sid < first_use:
                    total_ops += (
                        self.executions_of(node)
                        * self._expr_ops(stmt.rhs)
                        / self._stmt_parallelism(stmt)
                    )
        per_exec_ops = total_ops / max(1, op_execs)
        return self.machine.compute_time(per_exec_ops)

    # -- compute costs -----------------------------------------------------------

    # Transcendental intrinsics cost many FLOP-equivalents on 1990s CPUs.
    _INTRINSIC_WEIGHT = {"SQRT": 12, "EXP": 16, "LOG": 16, "MOD": 4}

    @classmethod
    def _expr_ops(cls, expr: ast.Expr) -> int:
        ops = 0
        for node in ast.walk_expr(expr):
            if isinstance(node, (ast.BinOp, ast.UnOp)):
                ops += 1
            elif isinstance(node, ast.Intrinsic):
                ops += cls._INTRINSIC_WEIGHT.get(node.name, 2)
        return max(1, ops)

    def _stmt_parallelism(self, stmt: ast.Assign) -> int:
        """Processors sharing the statement's iterations (owner-computes)."""
        if isinstance(stmt.lhs, ast.VarRef):
            return 1  # replicated scalar work
        layout = self.info.layout(stmt.lhs.name)
        procs = 1
        for dim in layout.distributed_dims:
            procs *= layout.procs_along(dim)
        return max(1, procs)

    def _reduction_elements(self, stmt: ast.Assign) -> int:
        """Local elements touched by reduction intrinsics in the statement."""
        total = 0
        for node in ast.walk_expr(stmt.rhs):
            if isinstance(node, ast.Reduction):
                layout = self.info.layout(node.arg.name)
                elems = 1
                for dim, sub in enumerate(node.arg.subscripts):
                    if isinstance(sub, ast.Triplet):
                        extent = layout.dims[dim].extent
                        share = layout.procs_along(dim)
                        elems *= max(1, extent // max(1, share))
                total += elems
        return total

    def compute_cost(self) -> float:
        flops = 0.0
        for node in self.ctx.cfg.nodes:
            execs = None
            for stmt in node.stmts:
                if execs is None:
                    execs = self.executions_of(node)
                per_iter = self._expr_ops(stmt.rhs) + self._reduction_elements(stmt)
                flops += execs * per_iter / self._stmt_parallelism(stmt)
        return self.machine.compute_time(flops)

    # -- entry point ------------------------------------------------------------

    def run(self) -> SimReport:
        report = SimReport(
            machine=self.machine.name,
            strategy=self.result.strategy.value,
            compute_time=self.compute_cost(),
            lower_bound_bytes=self.lower_bound_bytes,
        )
        for op in self.result.placed:
            report.comm_ops.append(self._op_cost(op))
        return report


def simulate(
    result: CompilationResult,
    machine: MachineModel,
    overlap: bool = False,
    cache_pressure: bool = False,
    lower_bound_bytes: "int | None" = None,
) -> SimReport:
    """Convenience wrapper: simulate one compiled program."""
    return Simulator(
        result, machine, overlap, cache_pressure, lower_bound_bytes
    ).run()
