"""Distributed-array bookkeeping for the SPMD executor.

Models the data distribution at runtime: which processor (rank) owns
which elements, neighbour relations on the processor grid, and the halo
bands nearest-neighbour messages fill (the paper's §4.8 "overlap
regions").  Index math is kept in *global* coordinates — each rank's
storage is a full-shape array plus a validity mask — so the executor
stays simple while ownership and data movement remain completely
faithful.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..distribution.layout import DistFormat, Layout
from ..errors import SimulationError
from ..sections.rsd import RSD, DimSection


@dataclass(frozen=True)
class GridRank:
    """One processor: its linear id and its grid coordinates."""

    rank: int
    coords: tuple[int, ...]


def grid_ranks(shape: tuple[int, ...]) -> list[GridRank]:
    """All processors of a grid, row-major."""
    ranks = []
    for rank, coords in enumerate(itertools.product(*(range(s) for s in shape))):
        ranks.append(GridRank(rank, coords))
    return ranks


def shifted_coords(
    coords: tuple[int, ...], shifts: tuple[int, ...], shape: tuple[int, ...]
) -> tuple[int, ...] | None:
    """Grid coordinates shifted by ``shifts``; None when off the edge
    (boundary processors have no partner in that direction)."""
    out = []
    for c, s, extent in zip(coords, shifts, shape):
        c2 = c + s
        if not 0 <= c2 < extent:
            return None
        out.append(c2)
    return tuple(out)


class Ownership:
    """Owned regions of one array layout, as RSDs in global coordinates."""

    def __init__(self, layout: Layout) -> None:
        self.layout = layout

    def owned_rsd(self, coords: tuple[int, ...]) -> RSD:
        """The region owned by the processor at grid ``coords``.

        BLOCK dims give contiguous spans, CYCLIC dims strided
        progressions, collapsed dims the whole extent.
        """
        dims = []
        for dim, mapping in enumerate(self.layout.dims):
            if mapping.format is DistFormat.COLLAPSED:
                dims.append(DimSection(1, mapping.extent))
                continue
            axis = mapping.grid_axis
            assert axis is not None
            coord = coords[axis]
            if mapping.format is DistFormat.BLOCK:
                lo, hi = self.layout.local_span(dim, coord)
                dims.append(DimSection(lo, hi))
            else:  # CYCLIC
                procs = self.layout.procs_along(dim)
                dims.append(DimSection(coord + 1, mapping.extent, procs))
        return RSD(tuple(dims))

    def halo_band(
        self,
        coords: tuple[int, ...],
        elem_shifts: dict[int, int],
    ) -> RSD:
        """The owned region of ``coords`` extended by ``|delta|`` elements
        on the read side of each shifted dimension — the overlap region a
        shift of ``elem_shifts`` can legitimately fill."""
        owned = self.owned_rsd(coords)
        dims = []
        for dim, section in enumerate(owned.dims):
            delta = elem_shifts.get(dim, 0)
            if delta == 0 or section.is_empty:
                dims.append(section)
                continue
            extent = self.layout.dims[dim].extent
            if delta > 0:
                dims.append(
                    DimSection(section.lo, min(section.hi + delta, extent),
                               section.step)
                )
            else:
                dims.append(
                    DimSection(max(section.lo + delta, 1), section.hi,
                               section.step)
                )
        return RSD(tuple(dims))

    def shifted_needs(
        self, coords: tuple[int, ...], elem_shifts: dict[int, int]
    ) -> RSD:
        """The elements a processor *reads* under an element shift: its
        owned region translated by the shift (clipped to the array).

        Exact for BLOCK (the translated span) and CYCLIC (the translated
        progression is exactly the wrapped neighbour's progression, modulo
        the array boundary).
        """
        owned = self.owned_rsd(coords)
        dims = []
        for dim, section in enumerate(owned.dims):
            delta = elem_shifts.get(dim, 0)
            if delta == 0 or section.is_empty:
                dims.append(section)
                continue
            extent = self.layout.dims[dim].extent
            dims.append(section.shifted(delta).clipped(1, extent))
        return RSD(tuple(dims))

    def owner_rank_coords(self, element: tuple[int, ...]) -> tuple[int, ...]:
        """Grid coordinates of the processor owning a global element."""
        coords = [0] * len(self.layout.grid.shape)
        for dim, index in enumerate(element):
            mapping = self.layout.dims[dim]
            if mapping.grid_axis is None:
                continue
            coords[mapping.grid_axis] = self.layout.owner_coord(dim, index)
        return tuple(coords)


class RankStorage:
    """One rank's view of one array: full-shape values plus a validity
    mask.  Reads outside the valid region are the runtime face of a
    placement bug."""

    def __init__(
        self,
        array: str,
        shape: tuple[int, ...],
        buffers: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        self.array = array
        self.shape = shape
        if buffers is None:
            self.values = np.zeros(shape)
            self.valid = np.zeros(shape, dtype=bool)
        else:
            # Transport-allocated storage (e.g. shared-memory views): the
            # executor and the transport workers must see the same bytes.
            self.values, self.valid = buffers
            assert self.values.shape == shape
            assert self.valid.shape == shape and self.valid.dtype == bool

    @staticmethod
    def _np_index(rsd: RSD):
        return tuple(slice(d.lo - 1, d.hi, d.step) for d in rsd.dims)

    def install(self, rsd: RSD, values: np.ndarray) -> None:
        if rsd.is_empty:
            return
        idx = self._np_index(rsd)
        self.values[idx] = values
        self.valid[idx] = True

    def extract(self, rsd: RSD) -> np.ndarray:
        if rsd.is_empty:
            return np.zeros(tuple(0 for _ in rsd.dims))
        idx = self._np_index(rsd)
        if not self.valid[idx].all():
            raise SimulationError(
                f"extracting invalid data from {self.array} {rsd}"
            )
        return np.array(self.values[idx], copy=True)

    def read(self, element: tuple[int, ...]) -> float:
        idx = tuple(c - 1 for c in element)
        if not self.valid[idx]:
            raise SimulationError(
                f"read of {self.array}{element}: element not present on "
                f"this rank (missing or misplaced communication)"
            )
        return float(self.values[idx])

    def write(self, element: tuple[int, ...], value: float) -> None:
        idx = tuple(c - 1 for c in element)
        self.values[idx] = value
        self.valid[idx] = True

    def invalidate_all_except(self, rsd: RSD) -> None:
        """Drop validity everywhere but the owned region (used when a
        writer invalidates stale copies)."""
        keep = np.zeros(self.shape, dtype=bool)
        if not rsd.is_empty:
            keep[self._np_index(rsd)] = True
        self.valid &= keep
