"""Placement-safety checking by concrete execution.

The strongest evidence a communication schedule is correct: run the
program and verify that, at every dynamic use of remote data, the value
the communication *delivered* equals the value the use actually reads.
Stale deliveries — communication hoisted above a write it depended on, or
a redundancy elimination that removed a still-needed message — show up as
value mismatches.

The checker executes the scalarized program with the reference
interpreter, firing scheduled communication operations at their anchors:

* a fired operation **snapshots** the concrete data section of each entry
  in its group (the section evaluated in the current loop environment);
* each executed statement instance looks up, for every use that required
  communication, the entry (or its subsuming entry, for uses eliminated
  as redundant) whose snapshot must cover the element being read, and
  compares the snapshot value with the current array value.

Any miss (element not covered) or mismatch (stale value) raises
:class:`SimulationError` identifying the entry and element — a placement
bug, not a user-program bug.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen.spmd import ScheduledProgram, lower_schedule
from ..comm.entries import CommEntry
from ..core.pipeline import CompilationResult
from ..errors import SimulationError
from ..frontend import ast_nodes as ast
from ..sections.rsd import RSD
from .interp import Interpreter


@dataclass
class Delivery:
    """One snapshot of communicated data for one entry."""

    entry: CommEntry
    rsd: RSD
    values: np.ndarray  # strided view materialized as a copy

    def covers(self, coords: tuple[int, ...]) -> bool:
        return all(
            d.contains_point(c) for d, c in zip(self.rsd.dims, coords)
        )

    def value_at(self, coords: tuple[int, ...]) -> float:
        idx = tuple(
            (c - d.lo) // d.step for d, c in zip(self.rsd.dims, coords)
        )
        return float(self.values[idx])


@dataclass
class CheckStats:
    deliveries: int = 0
    reads_checked: int = 0


class ScheduleChecker(Interpreter):
    """Interpreter that fires and validates the communication schedule."""

    def __init__(self, result: CompilationResult, seed: int = 12345) -> None:
        super().__init__(result.info, seed)
        self.result = result
        self.schedule: ScheduledProgram = lower_schedule(result)
        self.stats = CheckStats()
        self.delivered: dict[int, Delivery] = {}

        # Map each communication-requiring use to the entry whose delivery
        # must cover it: itself when alive, its (transitive) subsumer when
        # eliminated.
        self._covering: dict[int, CommEntry] = {}
        self._uses_by_sid: dict[int, list[CommEntry]] = {}
        for entry in result.entries:
            winner = entry
            while winner.eliminated_by is not None:
                winner = winner.eliminated_by
            self._covering[entry.id] = winner
            self._uses_by_sid.setdefault(entry.use.stmt.sid, []).append(entry)

    # -- schedule firing ------------------------------------------------------

    def _env_ints(self) -> dict[str, int]:
        env = {name: int(v) for name, v in self.env.items()}
        env.update(self.info.params)
        return env

    def _fire(self, anchor: tuple) -> None:
        for op in self.schedule.ops_at(anchor):
            node = self.result.ctx.node_of(op.position)
            env = self._env_ints()
            for entry in op.entries:
                section = self.result.ctx.sections.section_at(entry.use, node)
                shape = self.info.shape(entry.array)
                rsd = section.concretize(env, shape)
                if rsd.is_empty:
                    continue
                idx = tuple(
                    slice(d.lo - 1, d.hi, d.step) for d in rsd.dims
                )
                values = np.array(self.arrays[entry.array][idx], copy=True)
                self.delivered[entry.id] = Delivery(entry, rsd, values)
                self.stats.deliveries += 1

    # -- hooks over the base interpreter ------------------------------------------

    def run(self) -> CheckStats:
        self._fire(("start",))
        self.exec_body(self.info.program.body)
        self._fire(("end",))
        return self.stats

    def exec_stmt(self, stmt: ast.Stmt) -> None:
        self._fire(("before_stmt", stmt.sid))
        if isinstance(stmt, ast.Assign):
            self._check_uses(stmt)
            self.exec_assign(stmt)
            self._fire(("after_stmt", stmt.sid))
            return
        if isinstance(stmt, ast.Do):
            self._fire(("loop_pre", stmt.sid))
            lo = self.eval_index(stmt.lo)
            hi = self.eval_index(stmt.hi)
            step = self.eval_index(stmt.step)
            for value in range(lo, hi + 1, step):
                self.env[stmt.var] = float(value)
                self._fire(("loop_top", stmt.sid))
                self.exec_body(stmt.body)
            self.env.pop(stmt.var, None)
            self._fire(("loop_post", stmt.sid))
            self._fire(("after_stmt", stmt.sid))
            return
        assert isinstance(stmt, ast.If)
        if bool(self.eval_expr(stmt.cond)):
            self.exec_body(stmt.then_body)
        else:
            self.exec_body(stmt.else_body)
        self._fire(("after_stmt", stmt.sid))

    # -- validation --------------------------------------------------------------

    def _may_fire_later(self, winner: CommEntry) -> bool:
        """Is the winner's placed position at-or-after its own statement
        (the §6.2 extended-reduction case)?"""
        stmt_pos = self.result.ctx.cfg.position_before(winner.use.stmt)
        for pc in self.result.placed:
            if winner in pc.entries:
                return self.result.ctx.position_dominates(stmt_pos, pc.position)
        return False

    def _check_uses(self, stmt: ast.Assign) -> None:
        for entry in self._uses_by_sid.get(stmt.sid, []):
            winner = self._covering[entry.id]
            delivery = self.delivered.get(winner.id)
            if delivery is None:
                if entry.is_reduction and self._may_fire_later(winner):
                    # §6.2 flexibility: the combine phase is scheduled
                    # after this statement; the partials read *here* come
                    # straight from current state, so freshness holds by
                    # construction.
                    continue
                raise SimulationError(
                    f"use {entry.label}: no delivery fired for covering "
                    f"entry {winner.label} before the read"
                )
            for coords in self._read_elements(entry.use.ref):
                self._check_element(entry, delivery, coords)

    def _read_elements(self, ref: ast.Expr):
        """Concrete coordinates (1-based) this instance of the use reads."""
        assert isinstance(ref, ast.ArrayRef)
        shape = self.info.shape(ref.name)
        per_dim: list[list[int]] = []
        for dim, sub in enumerate(ref.subscripts):
            if isinstance(sub, ast.Index):
                per_dim.append([self.eval_index(sub.expr)])
            else:
                lo = 1 if sub.lo is None else self.eval_index(sub.lo)
                hi = shape[dim] if sub.hi is None else self.eval_index(sub.hi)
                step = 1 if sub.step is None else self.eval_index(sub.step)
                per_dim.append(list(range(lo, hi + 1, step)))
        # Cartesian product, small by construction in the test programs.
        coords = [()]
        for values in per_dim:
            coords = [c + (v,) for c in coords for v in values]
        return coords

    def _check_element(
        self, entry: CommEntry, delivery: Delivery, coords: tuple[int, ...]
    ) -> None:
        self.stats.reads_checked += 1
        if not delivery.covers(coords):
            raise SimulationError(
                f"use {entry.label}: element {coords} not covered by the "
                f"delivered section {delivery.rsd} of {delivery.entry.label}"
            )
        current = float(
            self.arrays[entry.array][tuple(c - 1 for c in coords)]
        )
        got = delivery.value_at(coords)
        # NaN-aware equality: a benchmark whose arithmetic produces NaN
        # (e.g. overflow in a long-running stencil) must not trip the
        # staleness check when the delivered NaN is the value read.
        if got != current and not (np.isnan(got) and np.isnan(current)):
            raise SimulationError(
                f"use {entry.label}: stale value at {coords}: communication "
                f"delivered {got!r} but the use reads {current!r}"
            )


def check_schedule(result: CompilationResult, seed: int = 12345) -> CheckStats:
    """Execute the compiled program, firing and validating its schedule.

    Returns check statistics; raises :class:`SimulationError` on any
    coverage or staleness violation.
    """
    return ScheduleChecker(result, seed).run()
