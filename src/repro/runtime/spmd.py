"""SPMD execution of compiled programs on simulated processor ranks.

This is the strongest end-to-end validation in the repository: the
compiled program — owner-computes iteration split plus the placed
communication schedule — runs on P simulated processors, each holding
only the data it owns plus whatever communication delivered, and must
produce exactly the same final arrays as the sequential F90 semantics.

Faithfulness points:

* each rank stores owned regions plus halo/buffer data behind a validity
  mask; reading an element no message delivered is an immediate error
  (the paper's miscompiled-placement failure mode);
* nearest-neighbour messages fill only the overlap band between a rank
  and its partner in the shift direction (paper §4.8's overlap regions) —
  a shift cannot masquerade as a broadcast; diagonal shifts travel as
  sequential *augmented* axis exchanges whose second phase forwards the
  corner data the first delivered (pHPF's coalescing, paper §2.2);
* every delivered or read value is cross-checked against a sequentially
  executed shadow state, so *stale* (correct-shape, wrong-time) data is
  detected too;
* reductions compute per-rank partials over owned elements only, then
  combine — the paper's §6.2 inverted communication structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..codegen.spmd import ScheduledProgram, lower_schedule
from ..comm.entries import CommEntry
from ..comm.patterns import ReductionMapping, ShiftMapping
from ..core.pipeline import CompilationResult
from ..errors import SimulationError
from ..frontend import ast_nodes as ast
from ..sections.rsd import RSD, DimSection
from .darray import GridRank, Ownership, RankStorage, grid_ranks
from .interp import Interpreter, initial_arrays


@dataclass
class SPMDStats:
    messages: int = 0
    bytes_moved: int = 0
    reductions: int = 0
    remote_reads: int = 0


class SPMDExecutor:
    """Executes one compiled program on simulated ranks."""

    def __init__(self, result: CompilationResult, seed: int = 12345) -> None:
        self.result = result
        self.info = result.info
        self.schedule: ScheduledProgram = lower_schedule(result)
        self.stats = SPMDStats()

        grids = {
            layout.grid for layout in self.info.layouts.values()
            if layout.distributed_dims
        }
        if len(grids) > 1:
            raise SimulationError(
                "SPMD execution supports a single processor grid per program"
            )
        self.grid = grids.pop() if grids else self.info.default_grid
        self.ranks: list[GridRank] = grid_ranks(self.grid.shape)

        # Sequential shadow: the ground truth every delivered value is
        # checked against.
        self.shadow = Interpreter(self.info, seed)

        self.ownership = {
            name: Ownership(layout) for name, layout in self.info.layouts.items()
        }
        init = initial_arrays(self.info, seed)
        self.storage: dict[int, dict[str, RankStorage]] = {}
        for gr in self.ranks:
            per_rank: dict[str, RankStorage] = {}
            for name, layout in self.info.layouts.items():
                store = RankStorage(name, layout.shape)
                owned = self.ownership[name].owned_rsd(
                    self._coords_for(layout, gr)
                )
                store.install(owned, init[name][store._np_index(owned)])
                per_rank[name] = store
            self.storage[gr.rank] = per_rank

        self._uses_by_sid: dict[int, dict[int, CommEntry]] = {}
        self._covering: dict[int, CommEntry] = {}
        for entry in result.entries:
            winner = entry
            while winner.eliminated_by is not None:
                winner = winner.eliminated_by
            self._covering[entry.id] = winner
            self._uses_by_sid.setdefault(entry.use.stmt.sid, {})[
                id(entry.use.ref)
            ] = entry

    # -- helpers -----------------------------------------------------------

    def _coords_for(self, layout, gr: GridRank) -> tuple[int, ...]:
        # All distributed layouts share self.grid; replicated layouts use
        # coordinate 0 everywhere.
        if layout.grid == self.grid:
            return gr.coords
        return tuple(0 for _ in layout.grid.shape)

    def _env_ints(self) -> dict[str, int]:
        env = {name: int(v) for name, v in self.shadow.env.items()}
        env.update(self.info.params)
        return env

    def _concrete_section(self, entry: CommEntry, node) -> RSD:
        section = self.result.ctx.sections.section_at(entry.use, node)
        return section.concretize(self._env_ints(), self.info.shape(entry.array))

    # -- communication ----------------------------------------------------------

    def _fire(self, anchor: tuple) -> None:
        for op in self.schedule.ops_at(anchor):
            node = self.result.ctx.node_of(op.position)
            # Combined entries share wire messages: deliveries within one
            # operation between the same (src, dst) pair count once.
            pairs: set[tuple[int, int]] = set()
            for entry in op.entries:
                pairs |= self._deliver(entry, node)
            self.stats.messages += len(pairs)

    def _deliver(self, entry: CommEntry, node) -> set[tuple[int, int]]:
        """Move one entry's data; returns the (src, dst) rank pairs used."""
        mapping = entry.pattern.mapping
        if isinstance(mapping, ReductionMapping):
            return set()  # reductions combine at their statement (§6.2)
        section = self._concrete_section(entry, node)
        if section.is_empty:
            return set()
        layout = self.info.layout(entry.array)
        own = self.ownership[entry.array]
        pairs: set[tuple[int, int]] = set()

        if isinstance(mapping, ShiftMapping):
            elem_shifts = dict(entry.pattern.elem_shifts)
            axes = [a for a, s in enumerate(mapping.proc_shifts) if s != 0]
            if len(axes) == 1:
                return self._deliver_axis_shift(
                    entry, section, layout, own, mapping, elem_shifts
                )
            # Multi-axis (diagonal) shift: pHPF subsumes it with an
            # *augmented* exchange per axis — each phase forwards the
            # corner data the previous phase delivered (paper §2.2).
            return self._deliver_diagonal_shift(
                entry, section, layout, own, mapping, elem_shifts, axes
            )

        # Allgather / general.
        return self._deliver_assemble(entry, section, layout, own)

    def _deliver_assemble(
        self, entry, section, layout, own
    ) -> set[tuple[int, int]]:
        """Assemble the section from its owners and install it on every
        rank (allgather/general semantics)."""
        pairs: set[tuple[int, int]] = set()
        parts: list[tuple[int, RSD, np.ndarray]] = []
        for gr in self.ranks:
            owned = own.owned_rsd(self._coords_for(layout, gr))
            piece = section.intersect(owned)
            if piece.is_empty:
                continue
            values = self.storage[gr.rank][entry.array].extract(piece)
            self._verify_fresh(entry.array, piece, values)
            parts.append((gr.rank, piece, values))
        for gr in self.ranks:
            for src_rank, piece, values in parts:
                self.storage[gr.rank][entry.array].install(piece, values)
                if src_rank != gr.rank:
                    pairs.add((src_rank, gr.rank))
                    self.stats.bytes_moved += values.size * layout.elem_bytes
        return pairs

    def _deliver_axis_shift(
        self, entry, section, layout, own, mapping, elem_shifts
    ) -> set[tuple[int, int]]:
        """Single-axis shift: each rank receives its shifted needs from
        the partner along the one moving axis."""
        pairs: set[tuple[int, int]] = set()
        for gr in self.ranks:
            src_coords = self._shift_partner(
                layout, gr.coords, mapping.proc_shifts
            )
            if src_coords is None:
                continue  # boundary: no partner in this direction
            needs = own.shifted_needs(gr.coords, elem_shifts)
            recv = section.intersect(needs).intersect(own.owned_rsd(src_coords))
            if recv.is_empty:
                continue
            src_rank = self._rank_of(src_coords)
            values = self.storage[src_rank][entry.array].extract(recv)
            self._verify_fresh(entry.array, recv, values)
            self.storage[gr.rank][entry.array].install(recv, values)
            pairs.add((src_rank, gr.rank))
            self.stats.bytes_moved += values.size * layout.elem_bytes
        return pairs

    def _deliver_diagonal_shift(
        self, entry, section, layout, own, mapping, elem_shifts, axes
    ) -> set[tuple[int, int]]:
        """Diagonal shift via sequential augmented axis exchanges.

        Each rank's target is the section clipped to its full halo *box*
        (including corners).  Phase k moves data along one axis only;
        sources may forward what earlier phases delivered to them, which
        is exactly how the corner value travels two hops.
        """
        from ..distribution.layout import DistFormat

        # Cyclic dims interleave owners; the augmented-band scheme below
        # is block-halo specific, so assemble instead (correct, if less
        # message-faithful — diagonal shifts on CYCLIC layouts are rare).
        for dim in elem_shifts:
            if layout.dims[dim].format is DistFormat.CYCLIC:
                return self._deliver_assemble(entry, section, layout, own)

        pairs: set[tuple[int, int]] = set()
        boxes = {
            gr.rank: section.intersect(own.halo_band(gr.coords, elem_shifts))
            for gr in self.ranks
        }
        # Eligibility: owned data plus anything this delivery already
        # moved (never pre-existing halo, which might be stale).
        eligible = {}
        for gr in self.ranks:
            mask = np.zeros(layout.shape, dtype=bool)
            owned = own.owned_rsd(self._coords_for(layout, gr))
            if not owned.is_empty:
                mask[tuple(slice(d.lo - 1, d.hi, d.step) for d in owned.dims)] = True
            eligible[gr.rank] = mask

        for axis in axes:
            phase_shift = tuple(
                s if a == axis else 0 for a, s in enumerate(mapping.proc_shifts)
            )
            updates = []
            for gr in self.ranks:
                src_coords = self._shift_partner(layout, gr.coords, phase_shift)
                if src_coords is None:
                    continue
                box = boxes[gr.rank]
                if box.is_empty:
                    continue
                src_rank = self._rank_of(src_coords)
                idx = tuple(slice(d.lo - 1, d.hi, d.step) for d in box.dims)
                take = eligible[src_rank][idx] & ~eligible[gr.rank][idx]
                if not take.any():
                    continue
                src_store = self.storage[src_rank][entry.array]
                if not src_store.valid[idx][take].all():
                    raise SimulationError(
                        f"diagonal forwarding of {entry.array}: source rank "
                        f"{src_rank} missing forwarded data"
                    )
                values = src_store.values[idx][take]
                expected = self.shadow.arrays[entry.array][idx][take]
                if not np.array_equal(values, expected):
                    raise SimulationError(
                        f"stale data shipped for {entry.array} (diagonal phase)"
                    )
                updates.append((gr.rank, src_rank, idx, take, values))
            for dst_rank, src_rank, idx, take, values in updates:
                store = self.storage[dst_rank][entry.array]
                region_vals = store.values[idx]
                region_valid = store.valid[idx]
                region_vals[take] = values
                region_valid[take] = True
                store.values[idx] = region_vals
                store.valid[idx] = region_valid
                elig = eligible[dst_rank][idx]
                elig[take] = True
                eligible[dst_rank][idx] = elig
                pairs.add((src_rank, dst_rank))
                self.stats.bytes_moved += int(take.sum()) * layout.elem_bytes
        return pairs

    def _shift_partner(
        self, layout, coords: tuple[int, ...], proc_shifts: tuple[int, ...]
    ) -> tuple[int, ...] | None:
        """Partner coordinates for a shift: CYCLIC axes wrap around the
        grid, BLOCK axes stop at the mesh edge."""
        from ..distribution.layout import DistFormat

        wrap_axes = {
            m.grid_axis
            for m in layout.dims
            if m.grid_axis is not None and m.format is DistFormat.CYCLIC
        }
        out = []
        for axis, (c, s, extent) in enumerate(
            zip(coords, proc_shifts, self.grid.shape)
        ):
            c2 = c + s
            if axis in wrap_axes:
                c2 %= extent
            elif not 0 <= c2 < extent:
                return None
            out.append(c2)
        return tuple(out)

    def _rank_of(self, coords: tuple[int, ...]) -> int:
        for gr in self.ranks:
            if gr.coords == coords:
                return gr.rank
        raise SimulationError(f"no rank at grid coordinates {coords}")

    def _verify_fresh(self, array: str, rsd: RSD, values: np.ndarray) -> None:
        idx = tuple(slice(d.lo - 1, d.hi, d.step) for d in rsd.dims)
        expected = self.shadow.arrays[array][idx]
        if not np.array_equal(values, expected):
            raise SimulationError(
                f"stale data shipped for {array} {rsd}: sender holds values "
                f"that disagree with the sequential semantics"
            )

    # -- statement execution -------------------------------------------------

    def run(self) -> SPMDStats:
        self._fire(("start",))
        self._exec_body(self.info.program.body)
        self._fire(("end",))
        return self.stats

    def _exec_body(self, body: list[ast.Stmt]) -> None:
        for stmt in body:
            self._fire(("before_stmt", stmt.sid))
            if isinstance(stmt, ast.Assign):
                self._exec_assign(stmt)
            elif isinstance(stmt, ast.Do):
                self._fire(("loop_pre", stmt.sid))
                lo = self.shadow.eval_index(stmt.lo)
                hi = self.shadow.eval_index(stmt.hi)
                step = self.shadow.eval_index(stmt.step)
                for value in range(lo, hi + 1, step):
                    self.shadow.env[stmt.var] = float(value)
                    self._fire(("loop_top", stmt.sid))
                    self._exec_body(stmt.body)
                self.shadow.env.pop(stmt.var, None)
                self._fire(("loop_post", stmt.sid))
            elif isinstance(stmt, ast.If):
                if bool(self.shadow.eval_expr(stmt.cond)):
                    self._exec_body(stmt.then_body)
                else:
                    self._exec_body(stmt.else_body)
            self._fire(("after_stmt", stmt.sid))

    def _exec_assign(self, stmt: ast.Assign) -> None:
        reductions = self._compute_reductions(stmt)

        if isinstance(stmt.lhs, ast.VarRef):
            # Replicated scalar: every rank computes; results must agree.
            values = {
                gr.rank: self._eval(stmt.rhs, gr.rank, stmt, reductions)
                for gr in self.ranks
            }
            distinct = set(values.values())
            if len(distinct) != 1:
                raise SimulationError(
                    f"replicated scalar {stmt.lhs.name!r} diverged across "
                    f"ranks at s{stmt.sid}: {sorted(distinct)[:4]}"
                )
            self.shadow.exec_stmt(stmt)
            return

        element = tuple(
            self.shadow.eval_index(sub.expr) for sub in stmt.lhs.subscripts
        )
        layout = self.info.layout(stmt.lhs.name)
        if not layout.distributed_dims:
            # Replicated array: every rank computes and stores (results
            # must agree, like scalars).
            values = {
                gr.rank: self._eval(stmt.rhs, gr.rank, stmt, reductions)
                for gr in self.ranks
            }
            if len(set(values.values())) != 1:
                raise SimulationError(
                    f"replicated array {stmt.lhs.name!r} diverged at s{stmt.sid}"
                )
            for gr in self.ranks:
                self.storage[gr.rank][stmt.lhs.name].write(
                    element, values[gr.rank]
                )
            self.shadow.exec_stmt(stmt)
            return

        # Owner-computes: the owner of the written element evaluates.
        own = self.ownership[stmt.lhs.name]
        owner = self._rank_of(own.owner_rank_coords(element))
        value = self._eval(stmt.rhs, owner, stmt, reductions)
        self.storage[owner][stmt.lhs.name].write(element, value)
        self.shadow.exec_stmt(stmt)

    def _compute_reductions(self, stmt: ast.Assign) -> dict[int, float]:
        """Allreduce every reduction intrinsic in the statement: per-rank
        partials over owned elements, combined globally."""
        out: dict[int, float] = {}
        for node in ast.walk_expr(stmt.rhs):
            if not isinstance(node, ast.Reduction):
                continue
            ref = node.arg
            layout = self.info.layout(ref.name)
            own = self.ownership[ref.name]
            section = self._section_of_ref(ref)
            partials = []
            for gr in self.ranks:
                piece = section.intersect(
                    own.owned_rsd(self._coords_for(layout, gr))
                )
                if piece.is_empty:
                    continue
                values = self.storage[gr.rank][ref.name].extract(piece)
                self._verify_fresh(ref.name, piece, values)
                partials.append(values)
            if not partials:
                raise SimulationError(f"reduction over empty section {ref}")
            flat = np.concatenate([p.ravel() for p in partials])
            if node.op == "SUM":
                out[id(node)] = float(flat.sum())
            elif node.op == "MAX":
                out[id(node)] = float(flat.max())
            else:
                out[id(node)] = float(flat.min())
            self.stats.reductions += 1
            self.stats.messages += max(
                0, 2 * int(np.ceil(np.log2(max(len(self.ranks), 2))))
            )
        return out

    def _section_of_ref(self, ref: ast.ArrayRef) -> RSD:
        dims = []
        shape = self.info.shape(ref.name)
        for dim, sub in enumerate(ref.subscripts):
            if isinstance(sub, ast.Index):
                v = self.shadow.eval_index(sub.expr)
                dims.append(DimSection(v, v))
            else:
                lo = 1 if sub.lo is None else self.shadow.eval_index(sub.lo)
                hi = shape[dim] if sub.hi is None else self.shadow.eval_index(sub.hi)
                step = 1 if sub.step is None else self.shadow.eval_index(sub.step)
                dims.append(DimSection(lo, hi, step))
        return RSD(tuple(dims))

    # -- per-rank expression evaluation -----------------------------------------

    def _eval(
        self,
        expr: ast.Expr,
        rank: int,
        stmt: ast.Assign,
        reductions: dict[int, float],
    ) -> float:
        if isinstance(expr, ast.Num):
            return float(expr.value)
        if isinstance(expr, ast.VarRef):
            return float(self.shadow._lookup(expr.name))
        if isinstance(expr, ast.Reduction):
            return reductions[id(expr)]
        if isinstance(expr, ast.ArrayRef):
            element = tuple(
                self.shadow.eval_index(sub.expr) for sub in expr.subscripts
            )
            store = self.storage[rank][expr.name]
            value = store.read(element)
            # Cross-check against ground truth: catches stale halos.
            truth = float(
                self.shadow.arrays[expr.name][tuple(c - 1 for c in element)]
            )
            if value != truth:
                raise SimulationError(
                    f"rank {rank} read stale {expr.name}{element} at "
                    f"s{stmt.sid}: has {value!r}, semantics say {truth!r}"
                )
            own = self.ownership[expr.name]
            layout = self.info.layout(expr.name)
            gr = self.ranks[rank]
            if own.owner_rank_coords(element) != self._coords_for(layout, gr):
                self.stats.remote_reads += 1
            return value
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, rank, stmt, reductions)
            right = self._eval(expr.right, rank, stmt, reductions)
            return float(Interpreter._binop(expr.op, left, right))
        if isinstance(expr, ast.UnOp):
            value = self._eval(expr.operand, rank, stmt, reductions)
            return -value if expr.op == "-" else float(not value)
        if isinstance(expr, ast.Intrinsic):
            args = [self._eval(a, rank, stmt, reductions) for a in expr.args]
            return float(Interpreter._intrinsic(expr.name, args))
        raise SimulationError(f"cannot evaluate {expr!r}")

    # -- results ------------------------------------------------------------

    def assemble(self) -> dict[str, np.ndarray]:
        """Global arrays stitched from each rank's owned region."""
        out: dict[str, np.ndarray] = {}
        for name, layout in self.info.layouts.items():
            own = self.ownership[name]
            result = np.zeros(layout.shape)
            for gr in self.ranks:
                owned = own.owned_rsd(self._coords_for(layout, gr))
                idx = tuple(slice(d.lo - 1, d.hi, d.step) for d in owned.dims)
                result[idx] = self.storage[gr.rank][name].values[idx]
            out[name] = result
        for name, value in self.shadow.scalars.items():
            out[name] = np.float64(value)
        return out


def execute_spmd(
    result: CompilationResult, seed: int = 12345
) -> tuple[dict[str, np.ndarray], SPMDStats]:
    """Run a compiled program on simulated ranks; returns the assembled
    final state and movement statistics.  Raises on any missing-data or
    staleness violation."""
    executor = SPMDExecutor(result, seed)
    stats = executor.run()
    return executor.assemble(), stats
