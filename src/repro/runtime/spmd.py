"""SPMD execution of compiled programs on simulated processor ranks.

This is the strongest end-to-end validation in the repository: the
compiled program — owner-computes iteration split plus the placed
communication schedule — runs on P simulated processors, each holding
only the data it owns plus whatever communication delivered, and must
produce exactly the same final arrays as the sequential F90 semantics.

Faithfulness points:

* each rank stores owned regions plus halo/buffer data behind a validity
  mask; reading an element no message delivered is an immediate error
  (the paper's miscompiled-placement failure mode);
* nearest-neighbour messages fill only the overlap band between a rank
  and its partner in the shift direction (paper §4.8's overlap regions) —
  a shift cannot masquerade as a broadcast; diagonal shifts travel as
  sequential *augmented* axis exchanges whose second phase forwards the
  corner data the first delivered (pHPF's coalescing, paper §2.2);
* every delivered or read value is cross-checked against a sequentially
  executed shadow state, so *stale* (correct-shape, wrong-time) data is
  detected too;
* reductions compute per-rank partials over owned elements only, then
  combine — the paper's §6.2 inverted communication structure.

Execution is plan-compiled (:mod:`repro.runtime.plans`): scalarized loop
nests the vectorizer proves rectangular run as whole-block numpy
operations per rank — the per-element validity, staleness, and
remote-read accounting collapses into bulk mask/equality checks over the
same regions — and each communication firing executes a cached
:class:`~repro.runtime.plans.CommPlan` of flat slice copies instead of
re-deriving partners and overlap regions.  Statements the vectorizer
declines (and every statement when ``vectorize=False``) take the
original element-wise path, so the two modes are mutually checking; the
equivalence suite asserts bitwise-identical final state.
"""

from __future__ import annotations

import time

import numpy as np

from ..codegen.spmd import ScheduledProgram, lower_schedule
from ..comm.entries import CommEntry
from ..comm.patterns import ReductionMapping
from ..core.pipeline import CompilationResult
from ..errors import SimulationError
from ..frontend import ast_nodes as ast
from ..perf.stats import RuntimeStats
from ..sections.rsd import RSD, DimSection
from ..transport import (
    DeadlockError,
    RankCrashError,
    RuntimeDegradationEvent,
    TransportError,
    make_transport,
)
from ..transport.lowering import LoweredComm, lower_comm
from .darray import GridRank, Ownership, RankStorage, grid_ranks
from .interp import Interpreter, initial_arrays
from .plans import (
    CommPlan,
    CommPlanner,
    ConcreteNest,
    NestPlan,
    PlanFallback,
    box_slice,
    concretize_nest,
    eval_rhs_block,
    plan_nests,
    ref_np_index,
    ref_region,
    store_order,
    translate_plan,
)

#: Backwards-compatible alias — the executor's counters moved into the
#: shared instrumentation module alongside the compile-side CacheStats.
SPMDStats = RuntimeStats


class SPMDExecutor:
    """Executes one compiled program on simulated ranks."""

    def __init__(
        self,
        result: CompilationResult,
        seed: int = 12345,
        vectorize: bool = True,
        transport: "str | None" = None,
        collectives: bool = True,
        watchdog_s: float = 30.0,
        kernels: "str | None" = None,
        chaos=None,
        max_rank_restarts: "int | None" = None,
        integrity: "bool | None" = None,
    ) -> None:
        self.result = result
        self.info = result.info
        self.schedule: ScheduledProgram = lower_schedule(result)
        self.stats = RuntimeStats()
        self.vectorize = vectorize
        self.collectives = collectives

        grids = {
            layout.grid for layout in self.info.layouts.values()
            if layout.distributed_dims
        }
        if len(grids) > 1:
            raise SimulationError(
                "SPMD execution supports a single processor grid per program"
            )
        self.grid = grids.pop() if grids else self.info.default_grid
        self.ranks: list[GridRank] = grid_ranks(self.grid.shape)

        # Optional message-passing backend.  None keeps the legacy
        # direct-copy data path byte for byte.  ``chaos`` (a FaultPlan
        # or --chaos-spec string) arms deterministic fault injection.
        self.transport = make_transport(
            transport, len(self.ranks), watchdog_s=watchdog_s,
            chaos=chaos, max_rank_restarts=max_rank_restarts,
            integrity=integrity,
        )
        self.wire = self.transport.stats if self.transport else None
        self._lowered: dict[int, LoweredComm] = {}

        # Sequential shadow: the ground truth every delivered value is
        # checked against.
        self.shadow = Interpreter(self.info, seed)

        self.ownership = {
            name: Ownership(layout) for name, layout in self.info.layouts.items()
        }
        init = initial_arrays(self.info, seed)
        buffers = None
        if self.transport is not None:
            buffers = self.transport.create_storage(
                (gr.rank, name, layout.shape)
                for gr in self.ranks
                for name, layout in self.info.layouts.items()
            )
        self.storage: dict[int, dict[str, RankStorage]] = {}
        for gr in self.ranks:
            per_rank: dict[str, RankStorage] = {}
            for name, layout in self.info.layouts.items():
                store = RankStorage(
                    name, layout.shape,
                    buffers[(gr.rank, name)] if buffers is not None else None,
                )
                owned = self.ownership[name].owned_rsd(
                    self._coords_for(layout, gr)
                )
                store.install(owned, init[name][store._np_index(owned)])
                per_rank[name] = store
            self.storage[gr.rank] = per_rank
        if self.transport is not None:
            self.transport.start(self.storage)

        self._uses_by_sid: dict[int, dict[int, CommEntry]] = {}
        self._covering: dict[int, CommEntry] = {}
        for entry in result.entries:
            winner = entry
            while winner.eliminated_by is not None:
                winner = winner.eliminated_by
            self._covering[entry.id] = winner
            self._uses_by_sid.setdefault(entry.use.stmt.sid, {})[
                id(entry.use.ref)
            ] = entry

        # Plan compilation (the inspector half): nest plans statically,
        # communication plans lazily per concrete-section tuple.
        self.planner = CommPlanner(
            self.info, self.grid, self.ranks, self.ownership,
            self._coords_for, self._shift_partner, self._rank_of,
        )
        self._comm_plans: dict[tuple, CommPlan] = {}
        #: canonical (rank-relative) plan cache: key -> (plan, offsets).
        #: Sections differing only in serial-dimension origins share one
        #: compiled plan, served by translation (satellite of the fused-
        #: kernel work: gravity's per-iteration sections otherwise defeat
        #: the exact-tuple cache).
        self._canon_plans: dict[tuple, tuple[CommPlan, tuple]] = {}
        self.nest_plans: dict[int, NestPlan] = {}
        self.fallback_reasons: dict[int, str] = {}
        self._fallback_assign_sids: set[int] = set()
        if vectorize:
            t0 = time.perf_counter()
            plans, fallbacks = plan_nests(self.info, self.info.program.body)
            self.fallback_reasons.update(fallbacks)
            anchored = set(self.schedule.anchors)
            for sid, plan in plans.items():
                if self._nest_has_interior_comm(plan, anchored):
                    self.fallback_reasons[plan.assign.sid] = (
                        "communication anchored inside the nest"
                    )
                    continue
                self.nest_plans[sid] = plan
            self._fallback_assign_sids = set(self.fallback_reasons)
            self.stats.plan_compile_s += time.perf_counter() - t0

        # Fused kernel codegen (the third lowering level).  Explicit
        # argument wins; otherwise the compile-side option decides.
        tier_request = kernels if kernels is not None else getattr(
            result.ctx.options, "kernels", "auto"
        )
        self.kernels = None
        if tier_request != "off" and vectorize:
            from .kernels import KernelEngine

            self.kernels = KernelEngine(self, tier_request)

    @staticmethod
    def _nest_has_interior_comm(plan: NestPlan, anchors: set) -> bool:
        """A communication firing at the loop top or anywhere inside the
        nest forces per-iteration execution."""
        for anchor in anchors:
            if len(anchor) < 2:
                continue
            kind, sid = anchor
            if sid in plan.interior_sids:
                return True
            if kind == "loop_top" and sid == plan.outer_sid:
                return True
        return False

    # -- helpers -----------------------------------------------------------

    def _coords_for(self, layout, gr: GridRank) -> tuple[int, ...]:
        # All distributed layouts share self.grid; replicated layouts use
        # coordinate 0 everywhere.
        if layout.grid == self.grid:
            return gr.coords
        return tuple(0 for _ in layout.grid.shape)

    def _env_ints(self) -> dict[str, int]:
        env = {name: int(v) for name, v in self.shadow.env.items()}
        env.update(self.info.params)
        return env

    def _concrete_section(self, entry: CommEntry, node) -> RSD:
        section = self.result.ctx.sections.section_at(entry.use, node)
        return section.concretize(self._env_ints(), self.info.shape(entry.array))

    # -- communication ----------------------------------------------------------

    def _fire(self, anchor: tuple) -> None:
        ops = self.schedule.ops_at(anchor)
        if not ops:
            return
        for op in ops:
            node = self.result.ctx.node_of(op.position)
            sections = tuple(
                None
                if isinstance(entry.pattern.mapping, ReductionMapping)
                else self._concrete_section(entry, node)
                for entry in op.entries
            )
            # The grid shape is part of the key: a plan's ranks, partners
            # and overlap regions are all grid-relative, so plans must
            # never be shared across different rank-grid shapes.
            key = (self.grid.shape, id(op), sections)
            plan = self._comm_plans.get(key)
            if plan is None:
                ckey, offsets = self._canonical_key(op, sections)
                base = (
                    self._canon_plans.get(ckey) if ckey is not None else None
                )
                t0 = time.perf_counter()
                if base is not None:
                    plan = translate_plan(base[0], base[1], offsets)
                    self.stats.plan_cache_hits += 1
                    self.stats.plan_translations += 1
                else:
                    plan = self.planner.compile_op(op, sections)
                    self.stats.plan_compiles += 1
                    if ckey is not None:
                        self._canon_plans[ckey] = (plan, offsets)
                self.stats.plan_compile_s += time.perf_counter() - t0
                self._comm_plans[key] = plan
            else:
                self.stats.plan_cache_hits += 1
            self._execute_plan(plan, op.kind)

    def _canonical_key(self, op, sections):
        """Rank-relative form of a section tuple, plus the origins that
        were normalized away.

        A dimension is canonicalized when translating a plan along it is
        provably exact: the dimension is *serial* (no grid axis — every
        rank owns its full extent, so partner sets and overlap counts
        cannot depend on the origin), the operation does not shift
        elements along it, and the section lies in bounds (no boundary
        clipping).  Such a dimension's section is replaced by its
        ``(count, step)`` run; the 1-based origin goes into the offsets
        tuple for :func:`translate_plan`.  Returns ``(None, None)`` when
        nothing was canonicalized (the exact cache already suffices).
        """
        canon = []
        offsets = []
        any_rel = False
        for entry, section in zip(op.entries, sections):
            if section is None or isinstance(
                entry.pattern.mapping, ReductionMapping
            ):
                canon.append(None)
                offsets.append(None)
                continue
            layout = self.info.layout(entry.array)
            elem_shifts = dict(entry.pattern.elem_shifts)
            dims_key = []
            origins = []
            for d, sec in enumerate(section.dims):
                if (
                    layout.dims[d].grid_axis is None
                    and elem_shifts.get(d, 0) == 0
                    and not sec.is_empty
                    and sec.lo >= 1
                    and sec.hi <= layout.dims[d].extent
                ):
                    dims_key.append(("rel", sec.count(), sec.step))
                    origins.append(sec.lo)
                    any_rel = True
                else:
                    dims_key.append(sec)
                    origins.append(None)
            canon.append(tuple(dims_key))
            offsets.append(tuple(origins))
        if not any_rel:
            return None, None
        return (self.grid.shape, id(op), tuple(canon)), tuple(offsets)

    def _execute_plan(self, plan: CommPlan, kind: str = "general") -> None:
        """Run one lowered communication operation: flat slice copies
        (legacy path) or real sends through the transport backend.

        Combined entries share wire messages — the plan's pair set counts
        deliveries between the same (src, dst) once per operation."""
        if self.transport is not None:
            self._execute_plan_transport(plan, kind)
            return
        if self.kernels is not None:
            self.kernels.execute_plan_copy(plan)
            return
        for t in plan.transfers:
            store = self.storage[t.src][t.array]
            if t.mask is None:
                if not store.valid[t.index].all():
                    raise SimulationError(
                        f"extracting invalid data from {t.array} {t.region}"
                    )
                values = store.values[t.index]
                expected = self.shadow.arrays[t.array][t.index]
                if not np.array_equal(values, expected):
                    raise SimulationError(
                        f"stale data shipped for {t.array} {t.region}: sender "
                        f"holds values that disagree with the sequential "
                        f"semantics"
                    )
                values = values.copy()
                for dst in t.dsts:
                    target = self.storage[dst][t.array]
                    target.values[t.index] = values
                    target.valid[t.index] = True
                self.stats.bcopy_calls += 1 + len(t.dsts)
            else:
                take = t.mask
                if not store.valid[t.index][take].all():
                    raise SimulationError(
                        f"diagonal forwarding of {t.array}: source rank "
                        f"{t.src} missing forwarded data"
                    )
                values = store.values[t.index][take]
                expected = self.shadow.arrays[t.array][t.index][take]
                if not np.array_equal(values, expected):
                    raise SimulationError(
                        f"stale data shipped for {t.array} (diagonal phase)"
                    )
                (dst,) = t.dsts
                target = self.storage[dst][t.array]
                region_vals = target.values[t.index]
                region_valid = target.valid[t.index]
                region_vals[take] = values
                region_valid[take] = True
                target.values[t.index] = region_vals
                target.valid[t.index] = region_valid
                self.stats.bcopy_calls += 2
        self.stats.messages += len(plan.wire_pairs)
        self.stats.bytes_moved += plan.wire_bytes

    # -- transport execution ---------------------------------------------------

    def _execute_plan_transport(self, plan: CommPlan, kind: str) -> None:
        """Execute one plan as real messages: lower to a collective
        schedule (cached per plan), run the validity/staleness oracle
        over the rounds, dispatch to the backend, then cross-check the
        measured wire traffic against the lowering's prediction exactly."""
        lowered = self._lowered.get(id(plan))
        if lowered is None:
            t0 = time.perf_counter()
            lowered = lower_comm(
                kind, plan, len(self.ranks), collectives=self.collectives
            )
            self.stats.plan_compile_s += time.perf_counter() - t0
            self._lowered[id(plan)] = lowered
        self._precheck_lowered(lowered)
        receipt = self.transport.execute(lowered)
        if receipt.pair_bytes != lowered.predicted_pairs:
            raise TransportError(
                f"wire accounting mismatch ({lowered.algorithm}): measured "
                f"per-pair bytes {receipt.pair_bytes} != predicted "
                f"{lowered.predicted_pairs}"
            )
        if receipt.pair_msgs != lowered.predicted_msgs:
            raise TransportError(
                f"wire accounting mismatch ({lowered.algorithm}): measured "
                f"per-pair messages {receipt.pair_msgs} != predicted "
                f"{lowered.predicted_msgs}"
            )
        # Keep the plan-level counters the element-wise path reports, so
        # RuntimeStats stays comparable across execution modes; the raw
        # measured traffic lives in ``self.wire``.
        self.stats.messages += len(plan.wire_pairs)
        self.stats.bytes_moved += plan.wire_bytes

    def _precheck_lowered(self, lowered: LoweredComm) -> None:
        """The legacy path's validity and staleness oracle, round-aware.

        Sends in round ``r`` may legitimately forward data delivered in
        rounds ``< r`` (diagonal phases, ring forwarding), which is not
        in the sender's storage yet when this runs — so we simulate
        delivery with an overlay mask.  Overlay-delivered elements are
        shadow-equal by induction (their original source was checked
        here when it sent), so the value comparison applies only to
        elements the sender holds for real and that no earlier round
        overwrote."""
        sim: dict[tuple[int, str], np.ndarray] = {}
        for rnd in lowered.rounds:
            for s in rnd:
                store = self.storage[s.src][s.array]
                region_valid = store.valid[s.index]
                overlay = sim.get((s.src, s.array))
                delivered = (
                    overlay[s.index] if overlay is not None
                    else np.zeros_like(region_valid)
                )
                take = (
                    s.mask if s.mask is not None
                    else np.ones(region_valid.shape, dtype=bool)
                )
                if not (region_valid | delivered)[take].all():
                    raise SimulationError(
                        f"extracting invalid data from {s.array} "
                        f"(rank {s.src}, {lowered.algorithm})"
                    )
                check = take & region_valid & ~delivered
                if check.any() and not np.array_equal(
                    store.values[s.index][check],
                    self.shadow.arrays[s.array][s.index][check],
                ):
                    raise SimulationError(
                        f"stale data shipped for {s.array}: sender holds "
                        f"values that disagree with the sequential semantics"
                    )
            for s in rnd:
                overlay = sim.get((s.dst, s.array))
                if overlay is None:
                    overlay = sim[(s.dst, s.array)] = np.zeros(
                        self.storage[s.dst][s.array].shape, dtype=bool
                    )
                region = overlay[s.index]
                if s.mask is None:
                    region[...] = True
                else:
                    region[s.mask] = True
                overlay[s.index] = region

    def close(self) -> None:
        """Release the transport backend (workers, shared memory).
        Idempotent; a no-op for the legacy direct-copy path."""
        if self.transport is not None:
            self.transport.shutdown()

    def __enter__(self) -> "SPMDExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _shift_partner(
        self, layout, coords: tuple[int, ...], proc_shifts: tuple[int, ...]
    ) -> tuple[int, ...] | None:
        """Partner coordinates for a shift: CYCLIC axes wrap around the
        grid, BLOCK axes stop at the mesh edge."""
        from ..distribution.layout import DistFormat

        wrap_axes = {
            m.grid_axis
            for m in layout.dims
            if m.grid_axis is not None and m.format is DistFormat.CYCLIC
        }
        out = []
        for axis, (c, s, extent) in enumerate(
            zip(coords, proc_shifts, self.grid.shape)
        ):
            c2 = c + s
            if axis in wrap_axes:
                c2 %= extent
            elif not 0 <= c2 < extent:
                return None
            out.append(c2)
        return tuple(out)

    def _rank_of(self, coords: tuple[int, ...]) -> int:
        for gr in self.ranks:
            if gr.coords == coords:
                return gr.rank
        raise SimulationError(f"no rank at grid coordinates {coords}")

    def _verify_fresh(self, array: str, rsd: RSD, values: np.ndarray) -> None:
        idx = tuple(slice(d.lo - 1, d.hi, d.step) for d in rsd.dims)
        expected = self.shadow.arrays[array][idx]
        if not np.array_equal(values, expected):
            raise SimulationError(
                f"stale data shipped for {array} {rsd}: sender holds values "
                f"that disagree with the sequential semantics"
            )

    # -- statement execution -------------------------------------------------

    def run(self) -> RuntimeStats:
        self._fire(("start",))
        self._exec_body(self.info.program.body)
        self._fire(("end",))
        self.stats.sync_faults(self.wire)
        if self.wire is not None and self.wire.restarts > 0:
            # The run completed on the requested backend, but only by
            # restarting crashed ranks — record that as a (recovered)
            # degradation so --diagnostics-json consumers see it.
            self.stats.degradations.append(RuntimeDegradationEvent(
                reason="rank_restart",
                backend=self.transport.name,
                detail=(
                    f"{self.wire.restarts} rank restart(s), "
                    f"{self.wire.recovery_s:.3f}s recovering"
                ),
                fallback="none (recovered in place)",
            ).to_dict())
        return self.stats

    def _exec_body(self, body: list[ast.Stmt]) -> None:
        for stmt in body:
            self._fire(("before_stmt", stmt.sid))
            if isinstance(stmt, ast.Assign):
                self._exec_assign(stmt)
                if stmt.sid in self._fallback_assign_sids:
                    self.stats.fallback_firings += 1
            elif isinstance(stmt, ast.Do):
                self._fire(("loop_pre", stmt.sid))
                plan = self.nest_plans.get(stmt.sid)
                done = False
                if plan is not None:
                    done = None
                    if self.kernels is not None:
                        # True: fused kernel ran.  False: dynamic
                        # fallback (element-wise).  None: kernel-
                        # ineligible — interpreted block path below.
                        done = self.kernels.try_exec_nest(plan)
                    if done is None:
                        done = self._try_exec_nest(plan)
                if not done:
                    lo = self.shadow.eval_index(stmt.lo)
                    hi = self.shadow.eval_index(stmt.hi)
                    step = self.shadow.eval_index(stmt.step)
                    for value in range(lo, hi + 1, step):
                        self.shadow.env[stmt.var] = float(value)
                        self._fire(("loop_top", stmt.sid))
                        self._exec_body(stmt.body)
                    self.shadow.env.pop(stmt.var, None)
                self._fire(("loop_post", stmt.sid))
            elif isinstance(stmt, ast.If):
                if bool(self.shadow.eval_expr(stmt.cond)):
                    self._exec_body(stmt.then_body)
                else:
                    self._exec_body(stmt.else_body)
            self._fire(("after_stmt", stmt.sid))

    # -- vectorized nest execution ----------------------------------------------

    def _try_exec_nest(self, plan: NestPlan) -> bool:
        """Execute a planned nest as block operations; False reverts the
        caller to the element-wise loop (dynamic fallback)."""
        try:
            conc = concretize_nest(plan, self._env_ints(), self.info)
        except PlanFallback:
            self.stats.fallback_firings += 1
            return False
        if conc is None:
            return True  # empty iteration space: nothing to do
        full = conc.full_box()
        name = conc.lhs.name
        layout = self.info.layout(name)

        # Ground-truth block from the sequential shadow.  Every rank's
        # reads are verified valid *and* equal to the shadow below, so
        # the owner-computed block is necessarily this block — writing it
        # preserves the element-wise path's values bit for bit while
        # keeping the full validation.
        shadow_block = np.broadcast_to(
            np.asarray(
                eval_rhs_block(conc, full, self.shadow.arrays,
                               self.shadow._lookup),
                dtype=np.float64,
            ),
            conc.shape,
        )

        if not layout.distributed_dims:
            # Replicated array: every rank reads (checked) and stores the
            # whole region.  Divergence across ranks is impossible once
            # each rank's reads are pinned to the shadow, which is what
            # the element-wise path's cross-rank comparison established.
            lhs_idx = ref_np_index(conc.lhs, full)
            value = store_order(shadow_block, conc.lhs)
            for gr in self.ranks:
                self._check_nest_reads(conc, full, gr)
                store = self.storage[gr.rank][name]
                store.values[lhs_idx] = value
                store.valid[lhs_idx] = True
            self.stats.bcopy_calls += len(self.ranks)
        else:
            # Owner-computes: each rank executes the sub-box of iterations
            # whose written elements it owns.
            own = self.ownership[name]
            for gr in self.ranks:
                owned = own.owned_rsd(self._coords_for(layout, gr))
                from .plans import rank_kbox

                kbox = rank_kbox(conc, owned)
                if kbox is None:
                    continue
                self._check_nest_reads(conc, kbox, gr)
                lhs_idx = ref_np_index(conc.lhs, kbox)
                store = self.storage[gr.rank][name]
                store.values[lhs_idx] = store_order(
                    shadow_block[box_slice(kbox)], conc.lhs
                )
                store.valid[lhs_idx] = True
                self.stats.bcopy_calls += 1

        # Advance the shadow by the same block.
        self.shadow.arrays[name][ref_np_index(conc.lhs, full)] = store_order(
            shadow_block, conc.lhs
        )
        self.stats.vectorized_firings += 1
        total = 1
        for count in conc.shape:
            total *= count
        self.stats.elements_written += total
        return True

    def _check_nest_reads(
        self, conc: ConcreteNest, kbox, gr: GridRank
    ) -> None:
        """Bulk form of the per-element read checks: every element each
        RHS reference touches over ``kbox`` must be valid on the rank and
        agree with the sequential shadow; remote reads are counted with
        the same per-iteration semantics as the element-wise path."""
        sid = conc.plan.assign.sid
        for rid, cref in conc.refs.items():
            idx = ref_np_index(cref, kbox)
            store = self.storage[gr.rank][cref.name]
            if not np.all(store.valid[idx]):
                raise SimulationError(
                    f"read of {cref.name} at s{sid}: elements not present on "
                    f"rank {gr.rank} (missing or misplaced communication)"
                )
            if not np.array_equal(
                store.values[idx], self.shadow.arrays[cref.name][idx]
            ):
                raise SimulationError(
                    f"rank {gr.rank} read stale {cref.name} at s{sid}: rank "
                    f"data disagrees with the sequential semantics"
                )
            # remote_reads: one count per iteration whose element lives on
            # another rank; iterations over axes the reference does not
            # carry re-read the same element.
            layout = self.info.layout(cref.name)
            own = self.ownership[cref.name]
            region = ref_region(cref, kbox)
            owned = self._owner_semantics_region(layout, own, gr)
            local = region.intersect(owned).count() if owned is not None else 0
            repeat = 1
            for axis, (_, _, kcount) in enumerate(kbox):
                if axis not in cref.axes:
                    repeat *= kcount
            self.stats.remote_reads += (region.count() - local) * repeat

    def _owner_semantics_region(self, layout, own: Ownership, gr: GridRank):
        """The region whose ``owner_rank_coords`` equal this rank's — the
        element-wise path's locality test.  Grid axes no dimension maps
        to default to coordinate 0 there, so ranks elsewhere on such an
        axis own nothing under that test (returns None)."""
        coords = self._coords_for(layout, gr)
        referenced = {
            m.grid_axis for m in layout.dims if m.grid_axis is not None
        }
        for axis, coord in enumerate(coords):
            if axis not in referenced and coord != 0:
                return None
        return own.owned_rsd(coords)

    # -- element-wise statement execution ---------------------------------------

    def _exec_assign(self, stmt: ast.Assign) -> None:
        reductions = self._compute_reductions(stmt)

        if isinstance(stmt.lhs, ast.VarRef):
            # Replicated scalar: every rank computes; results must agree.
            values = {
                gr.rank: self._eval(stmt.rhs, gr.rank, stmt, reductions)
                for gr in self.ranks
            }
            distinct = set(values.values())
            if len(distinct) != 1:
                raise SimulationError(
                    f"replicated scalar {stmt.lhs.name!r} diverged across "
                    f"ranks at s{stmt.sid}: {sorted(distinct)[:4]}"
                )
            self.shadow.exec_stmt(stmt)
            return

        element = tuple(
            self.shadow.eval_index(sub.expr) for sub in stmt.lhs.subscripts
        )
        layout = self.info.layout(stmt.lhs.name)
        if not layout.distributed_dims:
            # Replicated array: every rank computes and stores (results
            # must agree, like scalars).
            values = {
                gr.rank: self._eval(stmt.rhs, gr.rank, stmt, reductions)
                for gr in self.ranks
            }
            if len(set(values.values())) != 1:
                raise SimulationError(
                    f"replicated array {stmt.lhs.name!r} diverged at s{stmt.sid}"
                )
            for gr in self.ranks:
                self.storage[gr.rank][stmt.lhs.name].write(
                    element, values[gr.rank]
                )
            self.shadow.exec_stmt(stmt)
            return

        # Owner-computes: the owner of the written element evaluates.
        own = self.ownership[stmt.lhs.name]
        owner = self._rank_of(own.owner_rank_coords(element))
        value = self._eval(stmt.rhs, owner, stmt, reductions)
        self.storage[owner][stmt.lhs.name].write(element, value)
        self.shadow.exec_stmt(stmt)

    def _compute_reductions(self, stmt: ast.Assign) -> dict[int, float]:
        """Allreduce every reduction intrinsic in the statement: per-rank
        partials over owned elements, combined globally."""
        out: dict[int, float] = {}
        for node in ast.walk_expr(stmt.rhs):
            if not isinstance(node, ast.Reduction):
                continue
            ref = node.arg
            layout = self.info.layout(ref.name)
            own = self.ownership[ref.name]
            section = self._section_of_ref(ref)
            pieces: dict[int, np.ndarray] = {}
            for gr in self.ranks:
                piece = section.intersect(
                    own.owned_rsd(self._coords_for(layout, gr))
                )
                if piece.is_empty:
                    continue
                values = self.storage[gr.rank][ref.name].extract(piece)
                self._verify_fresh(ref.name, piece, values)
                pieces[gr.rank] = values
            if not pieces:
                raise SimulationError(f"reduction over empty section {ref}")
            if self.transport is not None:
                # Gather tree + broadcast through the backend; the
                # combine order is canonical (rank-sorted), so the value
                # is bit-identical to the concatenation below.
                out[id(node)], _receipt = self.transport.reduce(
                    pieces, node.op
                )
            else:
                flat = np.concatenate(
                    [pieces[r].ravel() for r in sorted(pieces)]
                )
                if node.op == "SUM":
                    out[id(node)] = float(flat.sum())
                elif node.op == "MAX":
                    out[id(node)] = float(flat.max())
                else:
                    out[id(node)] = float(flat.min())
            self.stats.reductions += 1
            self.stats.messages += max(
                0, 2 * int(np.ceil(np.log2(max(len(self.ranks), 2))))
            )
        return out

    def _section_of_ref(self, ref: ast.ArrayRef) -> RSD:
        dims = []
        shape = self.info.shape(ref.name)
        for dim, sub in enumerate(ref.subscripts):
            if isinstance(sub, ast.Index):
                v = self.shadow.eval_index(sub.expr)
                dims.append(DimSection(v, v))
            else:
                lo = 1 if sub.lo is None else self.shadow.eval_index(sub.lo)
                hi = shape[dim] if sub.hi is None else self.shadow.eval_index(sub.hi)
                step = 1 if sub.step is None else self.shadow.eval_index(sub.step)
                dims.append(DimSection(lo, hi, step))
        return RSD(tuple(dims))

    # -- per-rank expression evaluation -----------------------------------------

    def _eval(
        self,
        expr: ast.Expr,
        rank: int,
        stmt: ast.Assign,
        reductions: dict[int, float],
    ) -> float:
        if isinstance(expr, ast.Num):
            return float(expr.value)
        if isinstance(expr, ast.VarRef):
            return float(self.shadow._lookup(expr.name))
        if isinstance(expr, ast.Reduction):
            return reductions[id(expr)]
        if isinstance(expr, ast.ArrayRef):
            element = tuple(
                self.shadow.eval_index(sub.expr) for sub in expr.subscripts
            )
            store = self.storage[rank][expr.name]
            value = store.read(element)
            # Cross-check against ground truth: catches stale halos.
            truth = float(
                self.shadow.arrays[expr.name][tuple(c - 1 for c in element)]
            )
            if value != truth:
                raise SimulationError(
                    f"rank {rank} read stale {expr.name}{element} at "
                    f"s{stmt.sid}: has {value!r}, semantics say {truth!r}"
                )
            own = self.ownership[expr.name]
            layout = self.info.layout(expr.name)
            gr = self.ranks[rank]
            if own.owner_rank_coords(element) != self._coords_for(layout, gr):
                self.stats.remote_reads += 1
            return value
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, rank, stmt, reductions)
            right = self._eval(expr.right, rank, stmt, reductions)
            return float(Interpreter._binop(expr.op, left, right))
        if isinstance(expr, ast.UnOp):
            value = self._eval(expr.operand, rank, stmt, reductions)
            return -value if expr.op == "-" else float(not value)
        if isinstance(expr, ast.Intrinsic):
            args = [self._eval(a, rank, stmt, reductions) for a in expr.args]
            return float(Interpreter._intrinsic(expr.name, args))
        raise SimulationError(f"cannot evaluate {expr!r}")

    # -- results ------------------------------------------------------------

    def assemble(self) -> dict[str, np.ndarray]:
        """Global arrays stitched from each rank's owned region."""
        out: dict[str, np.ndarray] = {}
        for name, layout in self.info.layouts.items():
            own = self.ownership[name]
            result = np.zeros(layout.shape)
            for gr in self.ranks:
                owned = own.owned_rsd(self._coords_for(layout, gr))
                idx = tuple(slice(d.lo - 1, d.hi, d.step) for d in owned.dims)
                result[idx] = self.storage[gr.rank][name].values[idx]
            out[name] = result
        for name, value in self.shadow.scalars.items():
            out[name] = np.float64(value)
        return out


def execute_spmd(
    result: CompilationResult,
    seed: int = 12345,
    vectorize: bool = True,
    transport: "str | None" = None,
    collectives: bool = True,
    watchdog_s: float = 30.0,
    kernels: "str | None" = None,
    chaos=None,
    max_rank_restarts: "int | None" = None,
    integrity: "bool | None" = None,
) -> tuple[dict[str, np.ndarray], RuntimeStats]:
    """Run a compiled program on simulated ranks; returns the assembled
    final state and movement statistics.  Raises on any missing-data or
    staleness violation.  ``vectorize=False`` forces the element-wise
    reference path for every statement; ``transport`` selects a real
    message-passing backend (``inline``/``threaded``/``multiprocess``)
    instead of the default direct-copy data path; ``kernels`` picks the
    fused-codegen tier (``"auto"``/``"python"``/``"numba"``/``"off"``,
    default from ``CompilerOptions.kernels``).

    ``chaos`` arms deterministic fault injection (a
    :class:`~repro.transport.integrity.FaultPlan` or ``--chaos-spec``
    string).  Under chaos the run is self-healing: crashed ranks are
    restarted in place (up to ``max_rank_restarts``), and when recovery
    is impossible — restart budget exhausted, or a watchdog deadlock
    with faults armed — the program is re-executed on the deterministic
    ``inline`` backend and the degradation recorded in
    ``stats.degradations`` (W07xx).  A clean run (``chaos=None``) never
    degrades: transport errors propagate as before."""
    executor = SPMDExecutor(
        result, seed, vectorize=vectorize, transport=transport,
        collectives=collectives, watchdog_s=watchdog_s, kernels=kernels,
        chaos=chaos, max_rank_restarts=max_rank_restarts,
        integrity=integrity,
    )
    degraded = None
    try:
        try:
            stats = executor.run()
            arrays = executor.assemble()
        except RankCrashError as exc:
            degraded = RuntimeDegradationEvent(
                reason="restarts_exhausted",
                backend=exc.backend,
                detail=str(exc),
                fallback="inline",
                ranks=tuple(exc.dead_ranks),
            )
        except DeadlockError as exc:
            chaos_armed = (
                executor.transport is not None
                and executor.transport.chaos is not None
            )
            if not chaos_armed:
                raise  # a clean-run deadlock is a real bug: propagate
            degraded = RuntimeDegradationEvent(
                reason="deadlock",
                backend=executor.transport.name,
                detail=str(exc),
                fallback="inline",
            )
    finally:
        executor.close()
    if degraded is None:
        return arrays, stats
    # Graceful degradation: re-execute the whole program on the
    # deterministic inline backend, faults off.
    fallback = SPMDExecutor(
        result, seed, vectorize=vectorize, transport="inline",
        collectives=collectives, watchdog_s=watchdog_s, kernels=kernels,
    )
    try:
        stats = fallback.run()
        arrays = fallback.assemble()
    finally:
        fallback.close()
    stats.sync_faults(executor.wire)  # carry the failed attempt's ledger
    stats.degradations.append(degraded.to_dict())
    return arrays, stats
