"""Fused per-rank kernel execution for the SPMD runtime.

The vectorized executor already collapses a planned nest into block
numpy operations, but every firing still *interprets*: it re-walks the
RHS expression tree, re-derives per-rank iteration boxes and index
tuples, and re-counts remote reads symbolically.  This module is the
third lowering level — plans become *compiled code*:

* :class:`KernelEngine` owns a per-executor :class:`KernelCache` keyed
  like CommPlans, ``(nest sid, concrete loop geometry)``.  A miss emits
  a specialized Python function (:mod:`repro.codegen.kernels`) whose
  namespace prebinds numpy *views* of the shadow arrays and every
  participating rank's storage, so a firing is one call of straight-line
  code: fused RHS statement, per-rank validity/staleness checks, per-rank
  stores, shadow advance.  The movement accounting (remote reads, bcopy
  calls, elements written) is translation-invariant across firings of
  one geometry and is precomputed at build time.

* Subscript offsets that vary across firings (an enclosing loop variable
  indexing a serial dimension) become runtime arguments evaluated per
  firing; offsets that move along a *distributed* dimension would change
  rank participation, so such nests stay on the interpreted block path
  with the reason recorded (:attr:`KernelEngine.ineligible`).

* The legacy direct-copy communication path gets the same treatment:
  :meth:`KernelEngine.execute_plan_copy` compiles each CommPlan's
  transfer list into one straight-line function over prebound views —
  boundary data moves storage-to-storage without the interpreted loop's
  intermediate block copy, with the oracle checks emitted inline.

* An optional ``numba`` tier replaces the fused numpy statement with
  flattened strided scalar loops compiled by ``numba.njit``.  Tier
  resolution (:func:`resolve_tier`) and per-nest compilation both
  degrade to the python tier — recorded as ``kernel_fallback_reason``
  in :class:`~repro.perf.stats.RuntimeStats`, never an error.

Correctness posture: the emitted code performs *the same numpy
operations in the same order* as the interpreted block path
(:func:`~repro.runtime.plans.eval_rhs_block` and
``SPMDExecutor._try_exec_nest``), so final state is bitwise-identical;
the validity and staleness oracles are emitted with identical message
text, so every failure mode the interpreter detects, the kernel detects.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..affine import NonAffineError
from ..codegen.kernels import (
    NestSpec,
    analyze_kernel_spec,
    box_slice_literal,
    compile_fn,
    emit_index,
    fused_rhs_source,
    loop_source,
)
from ..errors import SimulationError
from .plans import (
    CommPlan,
    NestPlan,
    PlanFallback,
    aligned_block,
    concretize_nest,
    rank_kbox,
    ref_np_index,
    ref_region,
    var_axis_block,
)

__all__ = ["CompiledKernel", "KernelCache", "KernelEngine", "resolve_tier"]

_MISSING = object()


def resolve_tier(request: str) -> tuple[str, "str | None"]:
    """Resolve a kernel tier request to what this interpreter can run.

    ``"python"`` is always available.  ``"numba"`` and ``"auto"`` probe
    for an importable numba; an explicit ``"numba"`` request that cannot
    be honored degrades to ``"python"`` with the reason (never an
    error), while ``"auto"`` degrades silently.
    """
    if request == "python":
        return "python", None
    if request not in ("numba", "auto"):
        raise ValueError(f"unknown kernel tier {request!r}")
    try:
        import numba  # noqa: F401

        return "numba", None
    except Exception as exc:  # pragma: no cover - numba present
        if request == "numba":
            return "python", f"numba unavailable ({exc}); using python tier"
        return "python", None


@dataclass
class CompiledKernel:
    """One compiled nest firing: the function plus the per-firing
    accounting constants the interpreted path would have recomputed."""

    fn: object
    source: str
    elements: int
    bcopy_calls: int
    remote_reads: int


class KernelCache(dict):
    """Per-executor compiled-kernel cache, keyed ``(nest sid, axes)``
    where ``axes`` is the concrete ``(lo, step, count)`` tuple per loop —
    the same geometry-not-identity discipline as the CommPlan cache."""


class KernelEngine:
    """Builds and dispatches fused kernels for one :class:`SPMDExecutor`.

    The engine's protocol with the executor mirrors the vectorizer's:
    :meth:`try_exec_nest` returns ``True`` (executed), ``False`` (dynamic
    fallback — the caller runs the nest element-wise), or ``None``
    (kernel-ineligible — the caller keeps the interpreted block path).
    """

    def __init__(self, executor, tier_request: str = "auto") -> None:
        self.ex = executor
        self.tier, reason = resolve_tier(tier_request)
        executor.stats.kernel_tier = self.tier
        if reason:
            executor.stats.kernel_fallback_reason = reason
        self.cache = KernelCache()
        self.specs: dict[int, NestSpec] = {}
        #: assign sid -> why the nest cannot take the kernel path
        self.ineligible: dict[int, str] = {}
        self._copy_fns: dict[int, tuple] = {}

    # -- nest kernels ------------------------------------------------------

    def try_exec_nest(self, plan: NestPlan) -> "bool | None":
        stats = self.ex.stats
        spec = self.specs.get(plan.outer_sid)
        if spec is None:
            spec = self.specs[plan.outer_sid] = analyze_kernel_spec(
                plan, self.ex.info
            )
            if spec.reason is not None:
                self.ineligible[plan.assign.sid] = spec.reason
        if spec.reason is not None:
            return None

        env = self.ex._env_ints()
        axes = []
        try:
            for lo, hi, step in plan.bounds:
                lo_v = lo.evaluate(env)
                count = max(0, (hi.evaluate(env) - lo_v) // step + 1)
                if count == 0:
                    return True  # empty iteration space: nothing to do
                axes.append((lo_v, step, count))
            args = [int(a.evaluate(env)) for a in spec.dyn_args]
        except NonAffineError:
            stats.fallback_firings += 1
            return False
        args.extend(
            float(self.ex.shadow._lookup(name)) for name in spec.scal_args
        )

        key = (plan.outer_sid, tuple(axes))
        kern = self.cache.get(key, _MISSING)
        if kern is _MISSING:
            t0 = time.perf_counter()
            try:
                kern = self._build_nest(spec, env)
            except PlanFallback:
                stats.plan_compile_s += time.perf_counter() - t0
                stats.fallback_firings += 1
                return False
            stats.plan_compile_s += time.perf_counter() - t0
            stats.kernel_compiles += 1
            self.cache[key] = kern
        else:
            stats.kernel_cache_hits += 1

        try:
            kern.fn(*args)
        except PlanFallback:
            # a runtime offset stepped out of bounds: the element-wise
            # path is the one that can report the precise iteration
            stats.fallback_firings += 1
            return False
        stats.kernel_firings += 1
        stats.vectorized_firings += 1
        stats.elements_written += kern.elements
        stats.bcopy_calls += kern.bcopy_calls
        stats.remote_reads += kern.remote_reads
        return True

    # -- nest kernel construction -----------------------------------------

    def _build_nest(self, spec: NestSpec, env: dict) -> CompiledKernel:
        ex = self.ex
        info = ex.info
        plan = spec.plan
        conc = concretize_nest(plan, env, info)
        assert conc is not None  # caller proved counts > 0
        full = conc.full_box()
        name = conc.lhs.name
        layout = info.layout(name)
        sid = plan.assign.sid

        ns = {
            "_np": np,
            "_math": math,
            "_err": SimulationError,
            "_PF": PlanFallback,
            "_ae": np.array_equal,
        }
        nargs = len(spec.dyn_args) + len(spec.scal_args)
        body: list[str] = []

        def bases_of(rp):
            return [sp.base.evaluate(env) for sp in rp.subs]

        # Runtime bounds checks for every dynamic-offset dimension: the
        # build-time concretization proved *this* firing in bounds; other
        # firings of the same geometry must re-prove their offsets.
        emitted_checks: set[str] = set()
        all_refs = [("lhs", 0, plan.lhs)] + [
            ("rhs", rid, rp) for rid, rp in plan.rhs_refs.items()
        ]
        for kind, rid, rp in all_refs:
            extents = info.shape(rp.name)
            for d, sp in enumerate(rp.subs):
                dyn = spec.dyn_dims.get((kind, rid, d))
                if dyn is None:
                    continue
                if sp.var is None:
                    cond = f"1 <= _q{dyn.arg} <= {extents[d]}"
                else:
                    axis = plan.vars.index(sp.var)
                    lo_v, step, count = conc.axes[axis]
                    off = sp.coeff * lo_v
                    last = off + sp.coeff * step * (count - 1)
                    cond = (
                        f"1 <= _q{dyn.arg} + {off} and "
                        f"_q{dyn.arg} + {last} <= {extents[d]}"
                    )
                line = (
                    f"    if not ({cond}): raise "
                    f"_PF('subscript of {rp.name} out of bounds')"
                )
                if line not in emitted_checks:
                    emitted_checks.add(line)
                    body.append(line)

        # RHS reference blocks: prebound aligned views when static, an
        # inline slice + align call when the offset is a runtime argument.
        ref_exprs: dict[int, str] = {}
        ref_bases: dict[int, list] = {}
        dyn_ref: dict[int, bool] = {}
        for j, (rid, rp) in enumerate(plan.rhs_refs.items()):
            cref = conc.refs[rid]
            bases = ref_bases[rid] = bases_of(rp)
            is_dyn = any(
                ("rhs", rid, d) in spec.dyn_dims for d in range(len(rp.subs))
            )
            shadow_arr = ex.shadow.arrays[cref.name]
            if not is_dyn:
                blk = aligned_block(
                    shadow_arr[ref_np_index(cref, full)], cref, full
                )
                # The prebound block must be a live view of the shadow
                # array (reshape inserting size-1 axes never copies, but
                # don't let that assumption fail silently).
                is_dyn = not np.shares_memory(blk, shadow_arr)
                if not is_dyn:
                    ns[f"_b{j}"] = blk
            dyn_ref[rid] = is_dyn
            if is_dyn:
                ns[f"_arr{j}"] = shadow_arr
                ns[f"_align{j}"] = _aligner(cref, full)
                ix = emit_index(spec, "rhs", rid, rp, cref, full, bases)
                body.append(f"    _b{j} = _align{j}(_arr{j}[{ix}])")
            ref_exprs[rid] = f"_b{j}"

        for axis in range(len(plan.vars)):
            ns[f"_ax{axis}"] = var_axis_block(conc, axis, full)

        if self.tier == "numba" and not spec.dyn_args:
            tier_line = self._emit_numba_rhs(spec, conc, ns)
        else:
            tier_line = None
        if tier_line is not None:
            body.append(tier_line)
        else:
            expr = fused_rhs_source(spec, conc, ref_exprs)
            body.append(
                f"    _blk = _np.broadcast_to("
                f"_np.asarray({expr}, _np.float64), {conc.shape!r})"
            )

        perm = tuple(d[1] for d in conc.lhs.dims if d[0] == "a")
        body.append(f"    _val = _blk.transpose({perm!r})")
        lhs_bases = bases_of(plan.lhs)
        lhs_dyn = any(
            ("lhs", 0, d) in spec.dyn_dims for d in range(len(plan.lhs.subs))
        )

        remote_reads = 0
        bcopy = 0
        ref_index = {rid: j for j, rid in enumerate(plan.rhs_refs)}

        def emit_rank(gr, kbox) -> None:
            nonlocal remote_reads
            r = gr.rank
            for rid, cref in conc.refs.items():
                j = ref_index[rid]
                store = ex.storage[r][cref.name]
                msg_invalid = (
                    f"read of {cref.name} at s{sid}: elements not present "
                    f"on rank {r} (missing or misplaced communication)"
                )
                msg_stale = (
                    f"rank {r} read stale {cref.name} at s{sid}: rank data "
                    f"disagrees with the sequential semantics"
                )
                if not dyn_ref[rid]:
                    idx = ref_np_index(cref, kbox)
                    ns[f"_v{j}_{r}"] = store.valid[idx]
                    ns[f"_s{j}_{r}"] = store.values[idx]
                    ns[f"_e{j}_{r}"] = ex.shadow.arrays[cref.name][idx]
                    body.append(
                        f"    if not _v{j}_{r}.all(): "
                        f"raise _err({msg_invalid!r})"
                    )
                    body.append(
                        f"    if not _ae(_s{j}_{r}, _e{j}_{r}): "
                        f"raise _err({msg_stale!r})"
                    )
                else:
                    ns[f"_rv{j}_{r}"] = store.valid
                    ns[f"_rs{j}_{r}"] = store.values
                    ix = emit_index(
                        spec, "rhs", rid, plan.rhs_refs[rid], cref, kbox,
                        ref_bases[rid],
                    )
                    body.append(
                        f"    if not _rv{j}_{r}[{ix}].all(): "
                        f"raise _err({msg_invalid!r})"
                    )
                    body.append(
                        f"    if not _ae(_rs{j}_{r}[{ix}], _arr{j}[{ix}]): "
                        f"raise _err({msg_stale!r})"
                    )
                # movement accounting, hoisted to build time: regions on
                # dynamic (serial, in-bounds) dims translate rigidly, so
                # the local/remote split is firing-invariant.
                rlayout = info.layout(cref.name)
                rown = ex.ownership[cref.name]
                region = ref_region(cref, kbox)
                owned = ex._owner_semantics_region(rlayout, rown, gr)
                local = (
                    region.intersect(owned).count() if owned is not None
                    else 0
                )
                repeat = 1
                for axis, (_, _, kcount) in enumerate(kbox):
                    if axis not in cref.axes:
                        repeat *= kcount
                remote_reads += (region.count() - local) * repeat

            wstore = ex.storage[r][name]
            if layout.distributed_dims:
                value = f"_blk[{box_slice_literal(kbox)}].transpose({perm!r})"
            else:
                value = "_val"
            if not lhs_dyn:
                idx = ref_np_index(conc.lhs, kbox)
                ns[f"_lw{r}"] = wstore.values[idx]
                ns[f"_lv{r}"] = wstore.valid[idx]
                body.append(f"    _lw{r}[...] = {value}")
                body.append(f"    _lv{r}[...] = True")
            else:
                ns[f"_flw{r}"] = wstore.values
                ns[f"_flv{r}"] = wstore.valid
                ix = emit_index(
                    spec, "lhs", 0, plan.lhs, conc.lhs, kbox, lhs_bases
                )
                body.append(f"    _flw{r}[{ix}] = {value}")
                body.append(f"    _flv{r}[{ix}] = True")

        if not layout.distributed_dims:
            for gr in ex.ranks:
                emit_rank(gr, full)
                bcopy += 1
        else:
            own = ex.ownership[name]
            for gr in ex.ranks:
                owned = own.owned_rsd(ex._coords_for(layout, gr))
                kbox = rank_kbox(conc, owned)
                if kbox is None:
                    continue
                emit_rank(gr, kbox)
                bcopy += 1

        # Shadow advance, last — identical order to the interpreted path,
        # so self-referencing nests alias identically.
        if not lhs_dyn:
            ns["_shwv"] = ex.shadow.arrays[name][ref_np_index(conc.lhs, full)]
            body.append("    _shwv[...] = _val")
        else:
            ns["_shw"] = ex.shadow.arrays[name]
            ix = emit_index(spec, "lhs", 0, plan.lhs, conc.lhs, full, lhs_bases)
            body.append(f"    _shw[{ix}] = _val")

        sig = ", ".join(f"_q{i}" for i in range(nargs))
        source = f"def _kernel({sig}):\n" + "\n".join(body) + "\n"
        fn = compile_fn(source, f"s{sid}", ns)
        elements = 1
        for count in conc.shape:
            elements *= count
        return CompiledKernel(
            fn=fn,
            source=source,
            elements=elements,
            bcopy_calls=bcopy,
            remote_reads=remote_reads,
        )

    def _emit_numba_rhs(self, spec, conc, ns) -> "str | None":
        """Compile the flattened-loop tier for a static nest; returns the
        body line that invokes it, or ``None`` to keep the fused numpy
        statement (degradation recorded, never raised)."""
        ex = self.ex
        plan = spec.plan
        ref_order = list(plan.rhs_refs.keys())
        try:
            import numba

            src = loop_source(spec, conc, ref_order)
            loop_ns: dict = {"_math": math}
            pyfn = compile_fn(src, f"loop-s{plan.assign.sid}", loop_ns)
            jitted = numba.njit(pyfn)
            raws = [
                ex.shadow.arrays[conc.refs[rid].name] for rid in ref_order
            ]
            # Trial invocation: compiles eagerly and proves the loop body
            # is nopython-clean.  Writes only the scratch output.
            scal = [0.0] * len(spec.scal_args)
            jitted(np.empty(conc.shape), *raws, *scal)
        except Exception as exc:
            if not ex.stats.kernel_fallback_reason:
                ex.stats.kernel_fallback_reason = (
                    f"numba tier degraded at s{plan.assign.sid}: {exc}"
                )
            return None
        ns["_loop"] = jitted
        for i, arr in enumerate(raws):
            ns[f"_raw{i}"] = arr
        args = "".join(f", _raw{i}" for i in range(len(raws)))
        args += "".join(
            f", _q{len(spec.dyn_args) + i}"
            for i in range(len(spec.scal_args))
        )
        return (
            f"    _blk = _np.empty({conc.shape!r}); _loop(_blk{args})"
        )

    # -- communication copy kernels ----------------------------------------

    def execute_plan_copy(self, plan: CommPlan) -> None:
        """Run one CommPlan on the legacy direct-copy data path as a
        single compiled function (validity + staleness + slice-to-slice
        installs over prebound views, no intermediate block copies)."""
        stats = self.ex.stats
        cached = self._copy_fns.get(id(plan))
        if cached is None:
            t0 = time.perf_counter()
            cached = self._build_copy(plan)
            stats.plan_compile_s += time.perf_counter() - t0
            stats.kernel_compiles += 1
            self._copy_fns[id(plan)] = cached
        else:
            stats.kernel_cache_hits += 1
        fn, bcopy = cached
        fn()
        stats.kernel_firings += 1
        stats.bcopy_calls += bcopy
        stats.messages += len(plan.wire_pairs)
        stats.bytes_moved += plan.wire_bytes

    def _build_copy(self, plan: CommPlan) -> tuple:
        ex = self.ex
        ns = {"_err": SimulationError, "_ae": np.array_equal}
        body: list[str] = []
        bcopy = 0
        for k, t in enumerate(plan.transfers):
            store = ex.storage[t.src][t.array]
            ns[f"_sv{k}"] = store.valid[t.index]
            ns[f"_sd{k}"] = store.values[t.index]
            ns[f"_ex{k}"] = ex.shadow.arrays[t.array][t.index]
            if t.mask is None:
                body.append(
                    f"    if not _sv{k}.all(): raise _err("
                    f"{f'extracting invalid data from {t.array} {t.region}'!r})"
                )
                msg = (
                    f"stale data shipped for {t.array} {t.region}: sender "
                    f"holds values that disagree with the sequential "
                    f"semantics"
                )
                body.append(
                    f"    if not _ae(_sd{k}, _ex{k}): raise _err({msg!r})"
                )
                for dst in t.dsts:
                    target = ex.storage[dst][t.array]
                    ns[f"_dv{k}_{dst}"] = target.values[t.index]
                    ns[f"_dm{k}_{dst}"] = target.valid[t.index]
                    body.append(f"    _dv{k}_{dst}[...] = _sd{k}")
                    body.append(f"    _dm{k}_{dst}[...] = True")
                bcopy += 1 + len(t.dsts)
            else:
                ns[f"_mk{k}"] = t.mask
                msg_fwd = (
                    f"diagonal forwarding of {t.array}: source rank "
                    f"{t.src} missing forwarded data"
                )
                body.append(
                    f"    if not _sv{k}[_mk{k}].all(): "
                    f"raise _err({msg_fwd!r})"
                )
                body.append(f"    _t{k} = _sd{k}[_mk{k}]")
                msg_stale = f"stale data shipped for {t.array} (diagonal phase)"
                body.append(
                    f"    if not _ae(_t{k}, _ex{k}[_mk{k}]): "
                    f"raise _err({msg_stale!r})"
                )
                (dst,) = t.dsts
                target = ex.storage[dst][t.array]
                ns[f"_dv{k}_{dst}"] = target.values[t.index]
                ns[f"_dm{k}_{dst}"] = target.valid[t.index]
                body.append(f"    _dv{k}_{dst}[_mk{k}] = _t{k}")
                body.append(f"    _dm{k}_{dst}[_mk{k}] = True")
                bcopy += 2
        if not body:
            body.append("    pass")
        source = "def _copy():\n" + "\n".join(body) + "\n"
        fn = compile_fn(source, "commplan", ns)
        return fn, bcopy


def _aligner(cref, kbox):
    """A partially-applied :func:`aligned_block` safe to close over."""

    def align(raw):
        return aligned_block(raw, cref, kbox)

    return align
