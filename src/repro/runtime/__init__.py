"""Execution substrates: reference interpreter, schedule checker, SPMD
executor, and the bulk-synchronous cost simulator."""

from .checker import CheckStats, ScheduleChecker, check_schedule
from .interp import Interpreter, initial_arrays, initial_scalars, interpret
from .simulator import SimReport, Simulator, simulate
from .spmd import SPMDExecutor, SPMDStats, execute_spmd

__all__ = [
    "CheckStats",
    "Interpreter",
    "SPMDExecutor",
    "SPMDStats",
    "ScheduleChecker",
    "SimReport",
    "Simulator",
    "check_schedule",
    "execute_spmd",
    "initial_arrays",
    "initial_scalars",
    "interpret",
    "simulate",
]
