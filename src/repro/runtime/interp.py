"""Reference interpreter for mini-HPF programs (numpy-backed).

Executes a program with F90 section semantics: section assignments become
numpy slice operations, reductions become ``np.sum``/``min``/``max``, DO
loops iterate scalar indices.  This is the *semantic ground truth* used by
the test suite to validate the scalarizer (scalarized programs must
compute exactly the same values) and by the schedule checker to validate
communication placement.

Arrays are initialized from a name-seeded RNG so any two interpreters
over the same program start from identical state.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..frontend import ast_nodes as ast
from ..frontend.analysis import ProgramInfo


def initial_arrays(info: ProgramInfo, seed: int = 12345) -> dict[str, np.ndarray]:
    """Deterministic initial state: every array filled from an RNG seeded
    by (seed, name); scalars start at small nonzero values."""
    state: dict[str, np.ndarray] = {}
    for name in sorted(info.layouts):
        shape = info.shape(name)
        rng = np.random.default_rng(abs(hash((seed, name))) % (2**32))
        state[name] = rng.uniform(0.5, 1.5, size=shape)
    return state


def initial_scalars(info: ProgramInfo, seed: int = 12345) -> dict[str, float]:
    scalars: dict[str, float] = {}
    for name in sorted(info.scalars):
        rng = np.random.default_rng(abs(hash((seed, name, "s"))) % (2**32))
        scalars[name] = float(rng.uniform(0.5, 1.5))
    return scalars


class Interpreter:
    """Evaluates a (possibly unscalarized) program over numpy arrays."""

    def __init__(
        self, info: ProgramInfo, seed: int = 12345, vectorize: bool = False
    ) -> None:
        self.info = info
        self.arrays = initial_arrays(info, seed)
        self.scalars = initial_scalars(info, seed)
        self.env: dict[str, float] = {}
        self.vectorize = vectorize
        self._nest_plans: dict[int, object] = {}
        if vectorize:
            from .plans import plan_nests

            self._nest_plans, _ = plan_nests(info, info.program.body)

    # -- expression evaluation -----------------------------------------------

    def _lookup(self, name: str) -> float:
        if name in self.env:
            return self.env[name]
        if name in self.scalars:
            return self.scalars[name]
        if name in self.info.params:
            return float(self.info.params[name])
        raise SimulationError(f"unbound variable {name!r}")

    def eval_index(self, expr: ast.Expr) -> int:
        value = self.eval_expr(expr)
        if isinstance(value, np.ndarray):
            raise SimulationError(f"array value used as index: {expr}")
        rounded = int(round(float(value)))
        return rounded

    def _slice_of(self, array: str, dim: int, sub: ast.Subscript):
        """numpy index object (0-based) for one subscript."""
        if isinstance(sub, ast.Index):
            return self.eval_index(sub.expr) - 1
        extent = self.info.shape(array)[dim]
        lo = 1 if sub.lo is None else self.eval_index(sub.lo)
        hi = extent if sub.hi is None else self.eval_index(sub.hi)
        step = 1 if sub.step is None else self.eval_index(sub.step)
        return slice(lo - 1, hi, step)

    def _index_tuple(self, ref: ast.ArrayRef):
        return tuple(
            self._slice_of(ref.name, dim, sub)
            for dim, sub in enumerate(ref.subscripts)
        )

    def read_ref(self, ref: ast.ArrayRef):
        return self.arrays[ref.name][self._index_tuple(ref)]

    def eval_expr(self, expr: ast.Expr):
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.VarRef):
            return self._lookup(expr.name)
        if isinstance(expr, ast.ArrayRef):
            return self.read_ref(expr)
        if isinstance(expr, ast.BinOp):
            left = self.eval_expr(expr.left)
            right = self.eval_expr(expr.right)
            return self._binop(expr.op, left, right)
        if isinstance(expr, ast.UnOp):
            value = self.eval_expr(expr.operand)
            if expr.op == "-":
                return -value
            if expr.op == "NOT":
                return 0.0 if value else 1.0
            raise SimulationError(f"unknown unary op {expr.op!r}")
        if isinstance(expr, ast.Reduction):
            data = self.read_ref(expr.arg)
            if expr.op == "SUM":
                return float(np.sum(data))
            if expr.op == "MAX":
                return float(np.max(data))
            if expr.op == "MIN":
                return float(np.min(data))
            raise SimulationError(f"unknown reduction {expr.op!r}")
        if isinstance(expr, ast.Intrinsic):
            args = [self.eval_expr(a) for a in expr.args]
            return self._intrinsic(expr.name, args)
        raise SimulationError(f"cannot evaluate {expr!r}")

    @staticmethod
    def _binop(op: str, left, right):
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "==":
            return np.where(left == right, 1.0, 0.0) if isinstance(left, np.ndarray) else float(left == right)
        if op == "/=":
            return float(left != right)
        if op == "<":
            return float(left < right)
        if op == "<=":
            return float(left <= right)
        if op == ">":
            return float(left > right)
        if op == ">=":
            return float(left >= right)
        if op == "AND":
            return float(bool(left) and bool(right))
        if op == "OR":
            return float(bool(left) or bool(right))
        raise SimulationError(f"unknown operator {op!r}")

    @staticmethod
    def _intrinsic(name: str, args):
        if name == "SQRT":
            return np.sqrt(args[0])
        if name == "ABS":
            return np.abs(args[0])
        if name == "EXP":
            return np.exp(args[0])
        if name == "LOG":
            return np.log(args[0])
        if name == "MOD":
            return np.mod(args[0], args[1])
        if name == "MIN":
            return np.minimum(args[0], args[1])
        if name == "MAX":
            return np.maximum(args[0], args[1])
        raise SimulationError(f"unknown intrinsic {name!r}")

    # -- statement execution -------------------------------------------------

    def run(self) -> None:
        self.exec_body(self.info.program.body)

    def exec_body(self, body: list[ast.Stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.exec_assign(stmt)
        elif isinstance(stmt, ast.Do):
            plan = self._nest_plans.get(stmt.sid)
            if plan is not None and self._exec_nest_block(plan):
                return
            lo = self.eval_index(stmt.lo)
            hi = self.eval_index(stmt.hi)
            step = self.eval_index(stmt.step)
            for value in range(lo, hi + 1, step):
                self.env[stmt.var] = float(value)
                self.exec_body(stmt.body)
            self.env.pop(stmt.var, None)
        elif isinstance(stmt, ast.If):
            if bool(self.eval_expr(stmt.cond)):
                self.exec_body(stmt.then_body)
            else:
                self.exec_body(stmt.else_body)

    def _exec_nest_block(self, plan) -> bool:
        """Execute a planned rectangular nest as one block operation.

        Returns False (caller iterates element-wise) when the plan cannot
        be concretized under the current environment."""
        from .plans import (
            PlanFallback,
            concretize_nest,
            eval_rhs_block,
            ref_np_index,
            store_order,
        )

        env = {name: int(v) for name, v in self.env.items()}
        env.update(self.info.params)
        try:
            conc = concretize_nest(plan, env, self.info)
        except PlanFallback:
            return False
        if conc is None:
            return True  # empty iteration space
        full = conc.full_box()
        block = np.broadcast_to(
            np.asarray(
                eval_rhs_block(conc, full, self.arrays, self._lookup),
                dtype=np.float64,
            ),
            conc.shape,
        )
        # The vectorizer only admits identical-subscript self-reads, so a
        # view of the target aliases each element onto itself — safe.
        self.arrays[conc.lhs.name][ref_np_index(conc.lhs, full)] = (
            store_order(block, conc.lhs)
        )
        return True

    def exec_assign(self, stmt: ast.Assign) -> None:
        value = self.eval_expr(stmt.rhs)
        if isinstance(stmt.lhs, ast.VarRef):
            self.scalars[stmt.lhs.name] = float(value)
            return
        idx = self._index_tuple(stmt.lhs)
        if isinstance(value, np.ndarray):
            # A bare section RHS is a *view* of the target's buffer; an
            # overlapping store would clobber elements it still has to
            # read.  Snapshot first (F90 fetch-before-store semantics).
            value = value.copy()
        self.arrays[stmt.lhs.name][idx] = value

    # -- results ------------------------------------------------------------

    def state(self) -> dict[str, np.ndarray]:
        out = dict(self.arrays)
        out.update({name: np.float64(v) for name, v in self.scalars.items()})
        return out


def interpret(
    info: ProgramInfo, seed: int = 12345, vectorize: bool = False
) -> dict[str, np.ndarray]:
    """Run a program to completion and return its final state."""
    interp = Interpreter(info, seed, vectorize=vectorize)
    interp.run()
    return interp.state()
