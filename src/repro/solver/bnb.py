"""Bounded pseudo-boolean branch-and-bound solver (dependency-free).

The exact placement search (see :mod:`repro.solver.encode`) reduces the
whole-pipeline placement problem to a conjunction of *normalized*
pseudo-boolean constraints ``Σ coeff·lit ≥ bound`` with positive integer
coefficients over literals of boolean variables.  This module provides:

* :class:`PBModel` — the constraint store with normalizing builders
  (clauses, implications, exactly-one, weighted ≤, cardinality ≤ k);
  negative coefficients, duplicate literals, and complementary pairs are
  normalized away at add time so the solver core only ever sees the one
  canonical form.
* :class:`PBSolver` — chronological DFS with pseudo-boolean unit
  propagation: per constraint it tracks the maximum still-achievable
  left-hand side, detects violation early (``maxsum < bound``), and
  forces any unassigned literal whose coefficient exceeds the slack.
  The search is *bounded*: an optional wall-clock deadline and node
  limit turn it into an anytime decision procedure returning
  :data:`UNKNOWN` instead of running away — the contract the
  binary-search driver in :mod:`repro.solver.search` builds on.

Literals are ints: variable ``v`` has positive literal ``2v`` and
negation ``2v + 1`` (:func:`pos` / :func:`neg`; ``lit ^ 1`` negates).
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


def pos(var: int) -> int:
    """The positive literal of ``var``."""
    return var << 1


def neg(var: int) -> int:
    """The negated literal of ``var``."""
    return (var << 1) | 1


def negate(lit: int) -> int:
    return lit ^ 1


class PBModel:
    """A conjunction of normalized constraints ``Σ coeff·lit ≥ bound``.

    Constraints are stored as immutable ``(lits, coeffs, bound)`` triples
    with strictly positive coefficients and strictly positive bounds
    (trivially-true constraints are dropped; a constraint whose maximum
    LHS is below its bound marks the whole model infeasible).
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self.constraints: list[tuple[tuple[int, ...], tuple[int, ...], int]] = []
        self.infeasible = False

    def new_var(self) -> int:
        var = self.num_vars
        self.num_vars += 1
        return var

    def copy(self) -> "PBModel":
        """Shallow copy sharing the (immutable) constraint triples — the
        binary-search driver layers one cardinality constraint per query
        on a copy instead of rebuilding the whole model."""
        clone = PBModel()
        clone.num_vars = self.num_vars
        clone.constraints = list(self.constraints)
        clone.infeasible = self.infeasible
        return clone

    # -- builders (all normalize to the canonical ≥ form) --------------------

    def add_ge(self, terms: Iterable[tuple[int, int]], bound: int) -> None:
        """Add ``Σ coeff·lit ≥ bound`` (coefficients may be negative)."""
        merged: dict[int, int] = {}
        for coeff, lit in terms:
            if coeff == 0:
                continue
            if coeff < 0:
                # c·l == |c|·¬l + c, so flip the literal and lift the bound.
                bound += -coeff
                lit, coeff = lit ^ 1, -coeff
            merged[lit] = merged.get(lit, 0) + coeff
        # Cancel complementary pairs: m·x + m·¬x is the constant m.
        for lit in [l for l in merged if (l ^ 1) in merged and l < (l ^ 1)]:
            m = min(merged[lit], merged[lit ^ 1])
            merged[lit] -= m
            merged[lit ^ 1] -= m
            bound -= m
        lits: list[int] = []
        coeffs: list[int] = []
        for lit in sorted(merged):
            if merged[lit] > 0:
                lits.append(lit)
                coeffs.append(merged[lit])
        if bound <= 0:
            return  # trivially satisfied
        if sum(coeffs) < bound:
            self.infeasible = True
            return
        self.constraints.append((tuple(lits), tuple(coeffs), bound))

    def add_clause(self, lits: Sequence[int]) -> None:
        self.add_ge([(1, lit) for lit in lits], 1)

    def add_implies(self, a: int, b: int) -> None:
        """Literal implication ``a → b``."""
        self.add_clause([a ^ 1, b])

    def add_at_most_one(self, lits: Sequence[int]) -> None:
        if len(lits) > 1:
            self.add_ge([(1, lit ^ 1) for lit in lits], len(lits) - 1)

    def add_exactly_one(self, lits: Sequence[int]) -> None:
        self.add_clause(lits)
        self.add_at_most_one(lits)

    def add_at_most_k(self, lits: Sequence[int], k: int) -> None:
        """Cardinality ``Σ lit ≤ k`` — the binary-search objective bound."""
        if k < 0:
            self.infeasible = True
            return
        if k < len(lits):
            self.add_ge([(1, lit ^ 1) for lit in lits], len(lits) - k)

    def add_weighted_le(self, terms: Iterable[tuple[int, int]], bound: int) -> None:
        """``Σ coeff·lit ≤ bound`` with non-negative coefficients — used
        for group-volume caps and the bytes-moved tie-break."""
        terms = list(terms)
        total = sum(coeff for coeff, _ in terms)
        self.add_ge([(coeff, lit ^ 1) for coeff, lit in terms], total - bound)

    # -- checking -------------------------------------------------------------

    def value(self, lit: int, assignment: Sequence[int]) -> bool:
        v = assignment[lit >> 1]
        return bool(v) if (lit & 1) == 0 else not v

    def satisfied(self, assignment: Sequence[int]) -> bool:
        """Does a complete 0/1 assignment satisfy every constraint?"""
        for lits, coeffs, bound in self.constraints:
            lhs = 0
            for lit, coeff in zip(lits, coeffs):
                if self.value(lit, assignment):
                    lhs += coeff
            if lhs < bound:
                return False
        return not self.infeasible


class PBSolver:
    """Chronological branch-and-bound DFS with PB unit propagation."""

    def __init__(self, model: PBModel) -> None:
        self.model = model
        cons = model.constraints
        self.bounds = [bound for _, _, bound in cons]
        self.maxcoef = [max(coeffs) if coeffs else 0 for _, coeffs, _ in cons]
        occ: list[list[tuple[int, int]]] = [[] for _ in range(2 * model.num_vars)]
        for ci, (lits, coeffs, _) in enumerate(cons):
            for lit, coeff in zip(lits, coeffs):
                occ[lit].append((ci, coeff))
        self.occ = occ

    def solve(
        self,
        decide_order: Optional[Sequence[int]] = None,
        prefer: Optional[Sequence[int]] = None,
        deadline: Optional[float] = None,
        node_limit: Optional[int] = None,
    ) -> tuple[str, Optional[list[int]], int]:
        """Run the DFS; returns ``(status, assignment, nodes)``.

        ``decide_order`` lists variables in decision order (vars missing
        from it are decided last, in index order); ``prefer`` gives the
        first value tried per variable (default 0).  ``deadline`` is an
        absolute :func:`time.monotonic` instant; past it (or past
        ``node_limit`` decisions) the result is :data:`UNKNOWN`.
        """
        model = self.model
        if model.infeasible:
            return UNSAT, None, 0
        n = model.num_vars
        cons = model.constraints
        bounds = self.bounds
        maxcoef = self.maxcoef
        occ = self.occ

        if decide_order is None:
            order = list(range(n))
        else:
            seen = set(decide_order)
            order = list(decide_order) + [v for v in range(n) if v not in seen]
        want = list(prefer) if prefer is not None else [0] * n
        if len(want) < n:
            want.extend([0] * (n - len(want)))

        assign = [-1] * n
        maxsum = [sum(coeffs) for _, coeffs, _ in cons]
        satsum = [0] * len(cons)
        trail: list[int] = []
        # One frame per decision: (trail length before it, var, first
        # value tried, resume index into ``order``, both-values-tried).
        frames: list[tuple[int, int, int, int, bool]] = []
        nodes = 0

        def assign_var(var: int, value: int, queue: list[int]) -> bool:
            assign[var] = value
            trail.append(var)
            falsified = (var << 1) + (1 if value else 0)
            ok = True
            for ci, coeff in occ[falsified]:
                maxsum[ci] -= coeff
                if maxsum[ci] < bounds[ci]:
                    ok = False
                else:
                    queue.append(ci)
            for ci, coeff in occ[falsified ^ 1]:
                satsum[ci] += coeff
            return ok

        def propagate(queue: list[int]) -> bool:
            while queue:
                ci = queue.pop()
                bound = bounds[ci]
                if satsum[ci] >= bound:
                    continue
                slack = maxsum[ci] - bound
                if slack < 0:
                    return False
                if slack >= maxcoef[ci]:
                    continue
                lits, coeffs, _ = cons[ci]
                for lit, coeff in zip(lits, coeffs):
                    if coeff > slack and assign[lit >> 1] == -1:
                        # maxsum - coeff < bound: the literal must hold.
                        if not assign_var(lit >> 1, 1 - (lit & 1), queue):
                            return False
                        if satsum[ci] >= bound:
                            break
            return True

        def undo_to(tlen: int) -> None:
            while len(trail) > tlen:
                var = trail.pop()
                value = assign[var]
                assign[var] = -1
                falsified = (var << 1) + (1 if value else 0)
                for ci, coeff in occ[falsified]:
                    maxsum[ci] += coeff
                for ci, coeff in occ[falsified ^ 1]:
                    satsum[ci] -= coeff

        queue = list(range(len(cons)))
        if not propagate(queue):
            return UNSAT, None, 0

        order_idx = 0
        while True:
            while order_idx < len(order) and assign[order[order_idx]] != -1:
                order_idx += 1
            if order_idx == len(order):
                return SAT, assign[:], nodes
            nodes += 1
            if node_limit is not None and nodes > node_limit:
                return UNKNOWN, None, nodes
            if (
                deadline is not None
                and (nodes & 63) == 0
                and time.monotonic() > deadline
            ):
                return UNKNOWN, None, nodes
            var = order[order_idx]
            value = 1 if want[var] else 0
            frames.append((len(trail), var, value, order_idx, False))
            queue = []
            ok = assign_var(var, value, queue) and propagate(queue)
            while not ok:
                # Unwind fully-explored decisions, then flip the newest
                # one-sided decision (chronological backtracking).
                while frames and frames[-1][4]:
                    tlen, _, _, _, _ = frames.pop()
                    undo_to(tlen)
                if not frames:
                    return UNSAT, None, nodes
                tlen, dvar, dval, oidx, _ = frames[-1]
                undo_to(tlen)
                frames[-1] = (tlen, dvar, dval, oidx, True)
                order_idx = oidx
                nodes += 1
                if node_limit is not None and nodes > node_limit:
                    return UNKNOWN, None, nodes
                if (
                    deadline is not None
                    and (nodes & 63) == 0
                    and time.monotonic() > deadline
                ):
                    return UNKNOWN, None, nodes
                queue = []
                ok = assign_var(dvar, 1 - dval, queue) and propagate(queue)
