"""Joint pseudo-boolean encoding of the whole placement problem.

Unlike the per-pass pipeline (§4.5 subset elimination, §4.6 redundancy
elimination, §4.7 greedy combining — each locally greedy), this model
encodes every placement decision for a program *jointly* and lets the
bounded solver of :mod:`repro.solver.bnb` minimize the true objective,
total message count (tie-break: bytes moved).

Variables (one boolean each):

* ``x[c,p]`` — entry ``c`` fires at candidate position ``p`` (``p``
  ranges over the entry's full legality chain from §4.4, not the
  heuristically narrowed working set).
* ``e[l,w,p]`` — loser ``l`` is eliminated by winner ``w`` placed at
  ``p``; created only where ``p`` lies in both candidate chains and the
  §4.6 subsumption predicate holds there, so every elimination the model
  can express satisfies Claim 4.7's coverage constraint by construction.
* ``g[c,r,p]`` — ``c`` joins the combined message led by representative
  ``r`` at ``p`` (``r.id ≤ c.id`` breaks group symmetry; ``g[r,r,p]`` is
  the *leader* variable that counts as one emitted message).

Constraints:

1. exactly-one: each entry is placed at one position or eliminated once;
2. winners fire: ``e[l,w,p] → x[w,p]``;
3. membership ties to placement: ``x[c,p] ↔ ∃r g[c,r,p]`` and
   ``g[c,r,p] → x[c,p]``;
4. leadership: ``g[c,r,p] → g[r,r,p]``;
5. pairwise §4.7 compatibility within a group;
6. combined-volume cap: members beyond the representative fit in
   ``threshold − vol(r,p)`` (a lone oversized message stays legal, the
   same rule the greedy partitioner applies);
7. (added per query) ``Σ leaders ≤ k`` — the binary-search bound.

:func:`decode_assignment` maps a satisfying assignment back to concrete
placement actions (placements, eliminations, combined groups) that
:mod:`repro.solver.search` applies to the real ``CommEntry`` objects —
the decoded schedule is verified by the existing oracle and simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..comm.compatibility import message_volume
from ..comm.entries import CommEntry
from ..core.context import AnalysisContext
from ..core.greedy import _combinable_at
from ..core.redundancy import subsumes_at
from ..ir.cfg import Position
from .bnb import PBModel, pos as plit


@dataclass
class DecodedSchedule:
    """A solver assignment translated back into placement actions."""

    #: entry id → chosen fire position (placed entries only).
    placements: dict[int, Position]
    #: loser entry id → winner entry id.
    eliminations: dict[int, int]
    #: one emitted message per item: (position, member entry ids).
    groups: list[tuple[Position, list[int]]]

    @property
    def messages(self) -> int:
        return len(self.groups)


@dataclass
class ExactModel:
    """The PB model plus every index needed to decode assignments."""

    ctx: AnalysisContext
    entries: list[CommEntry]
    model: PBModel
    x_index: dict[tuple[int, Position], int]
    e_index: dict[tuple[int, int, Position], int]
    g_index: dict[tuple[int, int, Position], int]
    leader_index: dict[tuple[int, Position], int]
    volumes: dict[tuple[int, int], int]
    weights: dict[Position, int] = field(default_factory=dict)

    # -- decision heuristics --------------------------------------------------

    def decide_order(self) -> list[int]:
        """Per-entry decision blocks, most-constrained entry first: try
        eliminations, then group memberships latest-position-first (the
        greedy pass's own tie-break bias), leaders last within a block."""
        order: list[int] = []
        for entry in sorted(self.entries, key=lambda e: (len(e.candidates), e.id)):
            for (loser, _w, _p), var in sorted(self.e_index.items()):
                if loser == entry.id:
                    order.append(var)
            for position in reversed(entry.candidates):
                members = [
                    var
                    for (c, r, p), var in self.g_index.items()
                    if c == entry.id and p == position and r != entry.id
                ]
                order.extend(sorted(members))
                leader = self.g_index.get((entry.id, entry.id, position))
                if leader is not None:
                    order.append(leader)
        return order

    def prefer(self) -> list[int]:
        """First value tried per variable: eliminations and group joins
        are message-saving, so try them True; everything else False."""
        want = [0] * self.model.num_vars
        for var in self.e_index.values():
            want[var] = 1
        for (c, r, _p), var in self.g_index.items():
            if c != r:
                want[var] = 1
        return want

    # -- objective ------------------------------------------------------------

    def leader_vars(self) -> list[int]:
        return sorted(self.leader_index.values())

    def volume_at(self, entry: CommEntry, position: Position) -> int:
        key = (entry.id, position.node_id)
        cached = self.volumes.get(key)
        if cached is not None:
            return cached
        ctx = self.ctx
        node = ctx.node_of(position)
        volume = message_volume(
            ctx.info,
            entry,
            ctx.sections.section_at(entry.use, node),
            ctx.sections.live_ranges_at(node),
        )
        self.volumes[key] = volume
        return volume

    def weight_of(self, position: Position) -> int:
        """Static trip weight: 8 per enclosing loop (the §6.1 model)."""
        cached = self.weights.get(position)
        if cached is not None:
            return cached
        node = self.ctx.node_of(position)
        weight = 8 ** len(node.loops_containing())
        self.weights[position] = weight
        return weight

    def bytes_moved(self, assignment: list[int]) -> int:
        by_id = {e.id: e for e in self.entries}
        total = 0
        for (eid, position), var in self.x_index.items():
            if assignment[var]:
                total += self.weight_of(position) * self.volume_at(
                    by_id[eid], position
                )
        return total

    def byte_terms(self) -> list[tuple[int, int]]:
        """(weight·volume, x-literal) terms for the bytes tie-break."""
        by_id = {e.id: e for e in self.entries}
        return [
            (self.weight_of(position) * self.volume_at(by_id[eid], position),
             plit(var))
            for (eid, position), var in self.x_index.items()
        ]

    # -- bounds ---------------------------------------------------------------

    def lower_bound(self) -> int:
        """A sound message-count floor: a greedy clique of entries that
        can neither be eliminated (no ``e`` variable targets them) nor
        ever share a message with each other (no shared position where
        §4.7 compatibility holds) — each clique member needs its own
        message in every feasible schedule."""
        if not self.entries:
            return 0
        eliminable = {loser for (loser, _w, _p) in self.e_index}
        can_share: set[tuple[int, int]] = set()
        for (c, r, _p) in self.g_index:
            if c != r:
                can_share.add((r, c))  # r.id ≤ c.id by construction
        hard = [e for e in self.entries if e.id not in eliminable]
        if not hard:
            return 1

        def conflicts(a: int, b: int) -> bool:
            key = (a, b) if a <= b else (b, a)
            return key not in can_share

        best = 1
        degree = {
            e.id: sum(1 for o in hard if o is not e and conflicts(e.id, o.id))
            for e in hard
        }
        for seed_key in (
            lambda e: (-degree[e.id], e.id),
            lambda e: e.id,
        ):
            clique: list[int] = []
            for e in sorted(hard, key=seed_key):
                if all(conflicts(e.id, member) for member in clique):
                    clique.append(e.id)
            best = max(best, len(clique))
        return best


class EncodingLimitError(Exception):
    """The model build blew past its deadline — the anytime driver treats
    this as 'no improvement found' and returns the greedy incumbent."""


def build_model(
    ctx: AnalysisContext,
    entries: list[CommEntry],
    deadline: Optional[float] = None,
) -> ExactModel:
    """Encode the joint placement problem for the given (alive) entries."""
    import time

    live = [e for e in entries if e.alive and e.candidates]
    live.sort(key=lambda e: e.id)
    model = PBModel()
    em = ExactModel(
        ctx=ctx,
        entries=live,
        model=model,
        x_index={},
        e_index={},
        g_index={},
        leader_index={},
        volumes={},
    )

    def check_deadline() -> None:
        if deadline is not None and time.monotonic() > deadline:
            raise EncodingLimitError("model build exceeded the solver budget")

    # Placement variables over the full legality chains.
    for entry in live:
        for position in entry.candidates:
            em.x_index[(entry.id, position)] = model.new_var()

    # Elimination variables where §4.6 subsumption actually holds.
    for winner in live:
        check_deadline()
        wset = winner.candidate_set()
        for loser in live:
            if loser is winner:
                continue
            shared = wset & loser.candidate_set()
            for position in sorted(shared):
                if subsumes_at(ctx, winner, loser, position):
                    em.e_index[(loser.id, winner.id, position)] = model.new_var()

    # Group-membership variables: per position, every §4.7-compatible
    # (member, representative) pair with rep.id ≤ member.id.
    members_at: dict[Position, list[CommEntry]] = {}
    for entry in live:
        for position in entry.candidates:
            members_at.setdefault(position, []).append(entry)
    for position, members in sorted(members_at.items()):
        check_deadline()
        members.sort(key=lambda e: e.id)
        for i, rep in enumerate(members):
            em.g_index[(rep.id, rep.id, position)] = model.new_var()
            em.leader_index[(rep.id, position)] = em.g_index[
                (rep.id, rep.id, position)
            ]
            for other in members[i + 1:]:
                if _combinable_at(ctx, other, rep, position):
                    em.g_index[(other.id, rep.id, position)] = model.new_var()

    # 1. Exactly one fate per entry: placed at one position or eliminated.
    choice: dict[int, list[int]] = {e.id: [] for e in live}
    for (eid, _position), var in em.x_index.items():
        choice[eid].append(plit(var))
    for (loser, _winner, _position), var in em.e_index.items():
        choice[loser].append(plit(var))
    for entry in live:
        model.add_exactly_one(choice[entry.id])

    # 2. A winner must fire at the covering position.
    for (loser, winner, position), var in em.e_index.items():
        model.add_implies(plit(var), plit(em.x_index[(winner, position)]))

    # 3. Placement ⇔ membership in some group at that position.
    group_choices: dict[tuple[int, Position], list[int]] = {}
    for (member, rep, position), var in em.g_index.items():
        group_choices.setdefault((member, position), []).append(plit(var))
        model.add_implies(plit(var), plit(em.x_index[(member, position)]))
        # 4. Groups need their leader.
        if member != rep:
            model.add_implies(
                plit(var), plit(em.g_index[(rep, rep, position)])
            )
    for (eid, position), var in em.x_index.items():
        lits = group_choices.get((eid, position), [])
        model.add_clause([plit(var) ^ 1] + lits)

    # 5./6. Within-group pairwise compatibility and the volume cap.
    by_id = {e.id: e for e in live}
    group_members: dict[tuple[int, Position], list[int]] = {}
    for (member, rep, position), _var in em.g_index.items():
        if member != rep:
            group_members.setdefault((rep, position), []).append(member)
    threshold = ctx.cost_model.threshold_bytes()
    for (rep, position), members in sorted(group_members.items()):
        check_deadline()
        rep_entry = by_id[rep]
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if not _combinable_at(ctx, by_id[a], by_id[b], position):
                    model.add_clause([
                        plit(em.g_index[(a, rep, position)]) ^ 1,
                        plit(em.g_index[(b, rep, position)]) ^ 1,
                    ])
        budget = threshold - em.volume_at(rep_entry, position)
        terms = [
            (em.volume_at(by_id[m], position),
             plit(em.g_index[(m, rep, position)]))
            for m in members
        ]
        terms = [(volume, lit) for volume, lit in terms if volume > 0]
        if budget <= 0:
            # An oversized message may exist alone but admits no members.
            for _volume, lit in terms:
                model.add_clause([lit ^ 1])
        elif terms and sum(volume for volume, _lit in terms) > budget:
            model.add_weighted_le(terms, budget)

    return em


def decode_assignment(
    em: ExactModel, assignment: list[int]
) -> DecodedSchedule:
    """Translate a satisfying assignment into placement actions.

    Each placed entry is put in exactly one group — the one led by its
    lowest-id representative with a true membership variable — so the
    decoded message count never exceeds the assignment's leader count.
    """
    placements: dict[int, Position] = {}
    for (eid, position), var in em.x_index.items():
        if assignment[var]:
            placements[eid] = position
    eliminations: dict[int, int] = {}
    for (loser, winner, _position), var in em.e_index.items():
        if assignment[var] and loser not in eliminations:
            eliminations[loser] = winner
    chosen_rep: dict[int, int] = {}
    for (member, rep, position), var in em.g_index.items():
        if not assignment[var]:
            continue
        if placements.get(member) != position:
            continue
        if member not in chosen_rep or rep < chosen_rep[member]:
            chosen_rep[member] = rep
    grouped: dict[tuple[int, Position], list[int]] = {}
    for member, position in placements.items():
        rep = chosen_rep[member]
        grouped.setdefault((rep, position), []).append(member)
    groups = [
        (position, sorted(members))
        for (_rep, position), members in grouped.items()
    ]
    groups.sort(key=lambda item: (item[0], item[1]))
    return DecodedSchedule(
        placements=placements, eliminations=eliminations, groups=groups
    )
