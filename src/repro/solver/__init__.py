"""Exact anytime placement solver (whole-pipeline optimal schedules).

The greedy pipeline of §4 is locally optimal at every step; this package
encodes the *entire* placement problem — candidate positions, §4.6
redundancy between entries, §4.7 combinability into shared messages —
as one pseudo-boolean model (:mod:`repro.solver.encode`), solves it with
a bounded branch-and-bound decision procedure (:mod:`repro.solver.bnb`),
and minimizes total message count by Chlorophyll-style binary search
under an anytime ``solver_budget_ms`` deadline
(:mod:`repro.solver.search`).  Importing the package registers the
``exact`` placement pass; ``perf/exactbench.py`` reports greedy-vs-
optimal gaps over the golden benchmark records.
"""

from .bnb import SAT, UNKNOWN, UNSAT, PBModel, PBSolver
from .encode import (
    DecodedSchedule,
    ExactModel,
    build_model,
    decode_assignment,
)
from .search import ExactPlacementPass, SolveReport, solve_schedule

__all__ = [
    "SAT",
    "UNKNOWN",
    "UNSAT",
    "PBModel",
    "PBSolver",
    "DecodedSchedule",
    "ExactModel",
    "build_model",
    "decode_assignment",
    "ExactPlacementPass",
    "SolveReport",
    "solve_schedule",
]
