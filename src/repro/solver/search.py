"""Anytime exact placement search and the ``exact`` pipeline pass.

Chlorophyll-style driver (binary search on message count over a bounded
solver): seed the incumbent with the greedy ``comb`` schedule, then
binary-search the message count between a sound lower bound (greedy
clique over never-eliminable, never-combinable entries) and the
incumbent, asking the PB solver one decision query per step.  Every
query runs under the remaining share of ``solver_budget_ms``; the driver
*always* returns the best incumbent found so far — on a full proof
(``lower bound == incumbent``) the schedule is optimal and flagged so,
on timeout the greedy seed (or the best improvement over it) comes back
unchanged.  The fallback is therefore never worse than today's ``comb``
pipeline, by construction.

:class:`ExactPlacementPass` registers this as the pass behind the
``exact`` named pipeline.  Solver failures degrade to the greedy comb
schedule through a :class:`~repro.core.faults.DegradationEvent` carrying
the ``W0604`` solver-fallback code; a failure computing the greedy seed
itself escapes to the pass manager's boundary, which falls back to the
always-sound Latest placement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..comm.entries import CommEntry
from ..core.context import AnalysisContext
from ..core.faults import DegradationEvent
from ..core.passes import PlacementPass, PlacementRun, register_pass
from ..core.state import PlacedComm, PlacementState
from ..errors import SOLVER_FALLBACK_CODE
from .bnb import SAT, UNSAT, PBSolver
from .encode import (
    DecodedSchedule,
    EncodingLimitError,
    build_model,
    decode_assignment,
)

#: Per-query decision cap — a backstop under the wall-clock deadline so a
#: single pathological query cannot monopolize the budget's final check.
DEFAULT_NODE_LIMIT = 4_000_000


@dataclass
class SolveReport:
    """What the anytime search did — surfaced in pass stats and bench."""

    seed_messages: int
    best_messages: int
    lower_bound: int
    proved: bool
    improved: bool
    wall_ms: float
    nodes: int
    queries: int
    deadline_hit: bool

    def as_stats(self) -> dict[str, int]:
        return {
            "solver_ms": int(self.wall_ms),
            "solver_nodes": self.nodes,
            "solver_queries": self.queries,
            "solver_proved": int(self.proved),
            "solver_improved": int(self.improved),
            "solver_lower_bound": self.lower_bound,
            "solver_seed_messages": self.seed_messages,
        }


def solve_schedule(
    ctx: AnalysisContext,
    entries: list[CommEntry],
    seed_messages: int,
    budget_ms: int,
    node_limit: int = DEFAULT_NODE_LIMIT,
) -> tuple[Optional[DecodedSchedule], SolveReport]:
    """Binary-search the optimal message count under an anytime budget.

    Returns ``(decoded, report)``: ``decoded`` is ``None`` when the seed
    was not improved on (the caller keeps the greedy schedule), else the
    best decoded improvement.  ``report.proved`` is True only when the
    search closed the gap (``lower_bound == best_messages``) — i.e. the
    returned count is the true optimum, not just the best incumbent.
    """
    t0 = time.monotonic()

    def report(
        best: int, lb: int, nodes: int, queries: int, deadline_hit: bool
    ) -> SolveReport:
        return SolveReport(
            seed_messages=seed_messages,
            best_messages=best,
            lower_bound=lb,
            proved=lb >= best,
            improved=best < seed_messages,
            wall_ms=(time.monotonic() - t0) * 1000.0,
            nodes=nodes,
            queries=queries,
            deadline_hit=deadline_hit,
        )

    if budget_ms <= 0:
        return None, report(seed_messages, 0, 0, 0, True)
    deadline = t0 + budget_ms / 1000.0
    try:
        em = build_model(ctx, entries, deadline=deadline)
    except EncodingLimitError:
        return None, report(seed_messages, 0, 0, 0, True)

    lower = em.lower_bound()
    upper = seed_messages
    best_decoded: Optional[DecodedSchedule] = None
    nodes_total = 0
    queries = 0
    deadline_hit = False
    order = em.decide_order()
    prefer = em.prefer()
    leaders = em.leader_vars()

    while lower < upper:
        if time.monotonic() > deadline:
            deadline_hit = True
            break
        k = (lower + upper - 1) // 2
        model = em.model.copy()
        model.add_at_most_k([lv << 1 | 0 for lv in leaders], k)
        queries += 1
        status, assignment, nodes = PBSolver(model).solve(
            decide_order=order,
            prefer=prefer,
            deadline=deadline,
            node_limit=node_limit,
        )
        nodes_total += nodes
        if status == SAT:
            assert assignment is not None
            decoded = decode_assignment(em, assignment)
            if decoded.messages < upper:
                best_decoded = decoded
                upper = decoded.messages
            else:  # defensive: a SAT answer never worse than its bound
                upper = k
        elif status == UNSAT:
            lower = k + 1
        else:
            deadline_hit = True
            break

    return best_decoded, report(
        upper, lower, nodes_total, queries, deadline_hit
    )


def _capture_marks(
    entries: list[CommEntry],
) -> list[tuple[CommEntry, Optional[CommEntry], list[CommEntry]]]:
    return [(e, e.eliminated_by, list(e.absorbed)) for e in entries]


def _restore_marks(
    marks: list[tuple[CommEntry, Optional[CommEntry], list[CommEntry]]],
) -> None:
    for entry, eliminated_by, absorbed in marks:
        entry.eliminated_by = eliminated_by
        entry.absorbed = absorbed


def _apply_decoded(
    entries: list[CommEntry], decoded: DecodedSchedule
) -> list[PlacedComm]:
    """Write the solver's eliminations into the entry marks and build the
    placed groups — the shape the oracle, simulator, and reports consume."""
    by_id = {e.id: e for e in entries}
    for loser_id, winner_id in decoded.eliminations.items():
        loser, winner = by_id[loser_id], by_id[winner_id]
        loser.eliminated_by = winner
        winner.absorbed.append(loser)
    placed = [
        PlacedComm(position, [by_id[i] for i in member_ids])
        for position, member_ids in decoded.groups
    ]
    placed.sort(key=lambda pc: pc.position)
    return placed


@register_pass
class ExactPlacementPass(PlacementPass):
    """Whole-pipeline exact placement behind the ``exact`` pipeline.

    Runs §4.5–§4.7 internally to build the greedy incumbent, then the
    anytime PB search; a solver failure degrades to that incumbent with
    a ``W0604`` event, and a failure building the incumbent itself hits
    the manager's boundary (fallback: Latest placement).
    """

    name = "exact"
    section = "§4+§6.1"
    description = "anytime exact whole-pipeline placement (PB search)"
    mutates_entries = True
    fallback_desc = "every entry at its Latest point"

    def run(self, run: PlacementRun) -> dict[str, int]:
        from ..core import pipeline as pl  # late: monkeypatchable namespace

        ctx = run.ctx
        # Greedy comb incumbent on a private working state.
        state = PlacementState(ctx, run.entries)
        if ctx.options.enable_subset_elimination:
            pl.subset_eliminate(ctx, state)
        if ctx.options.enable_redundancy_elimination:
            pl.redundancy_eliminate(ctx, state)
        seed_placed = pl.greedy_choose(ctx, state)
        seed_marks = _capture_marks(run.entries)
        pl._reset_eliminations(run.entries)

        decoded: Optional[DecodedSchedule] = None
        solver_stats: dict[str, int] = {}
        try:
            decoded, solve_report = solve_schedule(
                ctx, run.entries, len(seed_placed),
                ctx.options.solver_budget_ms,
            )
            solver_stats = solve_report.as_stats()
        except Exception as exc:
            if ctx.options.strict:
                raise
            run.faults.append(DegradationEvent.from_exception(
                "exact", exc, "greedy comb schedule (§4.5-§4.7)",
                code=SOLVER_FALLBACK_CODE,
            ))
            solver_stats = {"solver_proved": 0, "solver_improved": 0}

        if decoded is None:
            _restore_marks(seed_marks)
            run.placed = seed_placed
        else:
            run.placed = _apply_decoded(run.entries, decoded)
        stats = {
            "groups": len(run.placed),
            "redundant": sum(
                1 for e in run.entries if e.eliminated_by is not None
            ),
        }
        stats.update(solver_stats)
        return stats

    def recover(self, run: PlacementRun) -> dict[str, int]:
        from ..core import pipeline as pl

        run.placed = pl._latest_placement(run.entries)
        return {"groups": len(run.placed), "redundant": 0}
