"""Additional data-parallel kernels beyond the paper's benchmark set.

These exercise placement structure the paper's four benchmarks do not:

* ``REDBLACK`` — four-colour strided updates: the compiler must prove
  odd/even strided sections independent (exact GCD dependence testing)
  and keep per-colour exchanges separate;
* ``PIPELINE`` — a line sweep with an inner-level carried dependence:
  communication cannot be vectorized out of the inner loop at all, the
  worst case for message count (the paper's citations [12, 15] attack it
  with pipelining, which this compiler intentionally does not model);
* ``BLOCKED_MATMUL`` — a k-loop accumulation whose operand fetches hoist
  fully out of the time-invariant loop (maximum vectorization win);
* ``WAVEFRONT`` — a diagonal recurrence: carried dependences at both
  levels pin communication to the statement.

Used by the generality tests and the scale benchmarks; they are not part
of the Figure 10 reproduction.
"""

from __future__ import annotations

REDBLACK = """
PROGRAM redblack
  PARAM n = 32
  PARAM pr = 2
  PARAM pc = 2
  PARAM nsweeps = 4
  PROCESSORS procs(pr, pc)
  TEMPLATE t(n, n)
  DISTRIBUTE t(BLOCK, BLOCK) ONTO procs
  REAL u(n, n) ALIGN WITH t
  REAL f(n, n) ALIGN WITH t

  DO sweep = 1, nsweeps
    ! red points (odd, odd) read their four neighbours
    u(3:n-1:2, 3:n-1:2) = 0.25 * (u(2:n-2:2, 3:n-1:2) + u(4:n:2, 3:n-1:2) + &
        u(3:n-1:2, 2:n-2:2) + u(3:n-1:2, 4:n:2)) + f(3:n-1:2, 3:n-1:2)
    ! black points (even, even) read the freshly updated reds
    u(2:n-1:2, 2:n-1:2) = 0.25 * (u(1:n-2:2, 2:n-1:2) + u(3:n:2, 2:n-1:2) + &
        u(2:n-1:2, 1:n-2:2) + u(2:n-1:2, 3:n:2)) + f(2:n-1:2, 2:n-1:2)
  END DO
END PROGRAM
"""

PIPELINE = """
PROGRAM pipe
  PARAM n = 16
  PARAM pr = 4
  PROCESSORS procs(pr)
  REAL a(n, n)
  DISTRIBUTE a(BLOCK, *) ONTO procs

  DO j = 2, n
    DO i = 2, n
      a(i, j) = a(i - 1, j) + a(i, j - 1)
    END DO
  END DO
END PROGRAM
"""

BLOCKED_MATMUL = """
PROGRAM matmul
  PARAM n = 16
  PARAM pr = 4
  PROCESSORS procs(pr)
  REAL a(n, n)
  REAL b(n, n)
  REAL c(n, n)
  DISTRIBUTE a(BLOCK, *) ONTO procs
  DISTRIBUTE b(BLOCK, *) ONTO procs
  DISTRIBUTE c(BLOCK, *) ONTO procs

  DO i = 1, n
    DO j = 1, n
      c(i, j) = 0
    END DO
  END DO
  DO k = 1, n
    DO i = 1, n
      DO j = 1, n
        c(i, j) = c(i, j) + a(i, k) * b(k, j)
      END DO
    END DO
  END DO
END PROGRAM
"""

WAVEFRONT = """
PROGRAM wavefront
  PARAM n = 12
  PARAM pr = 3
  PROCESSORS procs(pr)
  REAL w(n, n)
  DISTRIBUTE w(BLOCK, *) ONTO procs

  DO i = 2, n
    DO j = 2, n
      w(i, j) = 0.5 * (w(i - 1, j) + w(i - 1, j - 1))
    END DO
  END DO
END PROGRAM
"""

EXTRA_PROGRAMS = {
    "redblack": REDBLACK,
    "pipeline": PIPELINE,
    "matmul": BLOCKED_MATMUL,
    "wavefront": WAVEFRONT,
}
