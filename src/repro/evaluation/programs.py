"""The four evaluation benchmarks of the paper's Figure 10, in mini-HPF.

* ``shallow`` — the NCAR shallow-water benchmark, following the simplified
  structure printed in the paper's Figure 2 (13 two-dimensional
  ``(BLOCK, BLOCK)`` arrays, one time-stepped sweep of stencil updates).
  Diagonal accesses are written in the pre-coalesced axis-shift form the
  pHPF message-coalescing pass produces (the paper's counts already
  reflect that subsumption).
* ``gravity`` — the NPAC gravity code of Figure 1: 3-d ``(*, BLOCK,
  BLOCK)`` arrays swept along the serial first axis, with four-direction
  NNC on ``g``/``glast`` and two statements of four global sums each.
* ``trimesh`` and ``hydflo`` — the paper gives no listing, only the
  communication structure implied by its table (routine names, NNC
  pattern, per-version message counts); these are synthetic codes with
  exactly that structure (see DESIGN.md's substitution table).

Every program is parametric in the problem size ``n``, the processor-grid
shape ``pr × pc``, and the time-step count, so one source serves the whole
Figure 10 sweep: ``compile_program(SHALLOW, params={"n": 512, ...})``.
"""

from __future__ import annotations

SHALLOW = """
PROGRAM shallow
  PARAM n = 64
  PARAM pr = 5
  PARAM pc = 5
  PARAM nsteps = 50
  PROCESSORS procs(pr, pc)
  TEMPLATE t(n, n)
  DISTRIBUTE t(BLOCK, BLOCK) ONTO procs
  REAL u(n, n) ALIGN WITH t
  REAL v(n, n) ALIGN WITH t
  REAL p(n, n) ALIGN WITH t
  REAL cu(n, n) ALIGN WITH t
  REAL cv(n, n) ALIGN WITH t
  REAL z(n, n) ALIGN WITH t
  REAL h(n, n) ALIGN WITH t
  REAL unew(n, n) ALIGN WITH t
  REAL vnew(n, n) ALIGN WITH t
  REAL pnew(n, n) ALIGN WITH t
  REAL uold(n, n) ALIGN WITH t
  REAL vold(n, n) ALIGN WITH t
  REAL pold(n, n) ALIGN WITH t

  DO step = 1, nsteps
    ! S1: mass flux in x — reads p shifted +x
    cu(2:n-1, 2:n-1) = 0.5 * (p(3:n, 2:n-1) + p(2:n-1, 2:n-1)) * u(2:n-1, 2:n-1)
    ! S2: mass flux in y — reads p shifted +y
    cv(2:n-1, 2:n-1) = 0.5 * (p(2:n-1, 3:n) + p(2:n-1, 2:n-1)) * v(2:n-1, 2:n-1)
    ! S3: height field — reads u shifted -x, v shifted -y
    h(2:n-1, 2:n-1) = p(2:n-1, 2:n-1) + &
        0.25 * (u(1:n-2, 2:n-1) * u(2:n-1, 2:n-1) + v(2:n-1, 1:n-2) * v(2:n-1, 2:n-1))
    ! S4: potential vorticity — reads u +x, v +y, p +x, p +y
    z(2:n-1, 2:n-1) = (4.0 / n) * (u(3:n, 2:n-1) - v(2:n-1, 3:n)) / &
        (p(3:n, 2:n-1) + p(2:n-1, 3:n))
    ! S5: new u — reads z -y, h +x, cv +x, cv -y
    unew(2:n-1, 2:n-1) = uold(2:n-1, 2:n-1) + &
        z(2:n-1, 1:n-2) * (cv(3:n, 2:n-1) + cv(2:n-1, 1:n-2)) - &
        (h(3:n, 2:n-1) - h(2:n-1, 2:n-1))
    ! S6: new v — reads z -x, h +y, cu -x, cu +y
    vnew(2:n-1, 2:n-1) = vold(2:n-1, 2:n-1) - &
        z(1:n-2, 2:n-1) * (cu(1:n-2, 2:n-1) + cu(2:n-1, 3:n)) - &
        (h(2:n-1, 3:n) - h(2:n-1, 2:n-1))
    ! S7: new p — reads cu -x, cv -y
    pnew(2:n-1, 2:n-1) = pold(2:n-1, 2:n-1) - &
        (cu(1:n-2, 2:n-1) - cu(2:n-1, 2:n-1)) - &
        (cv(2:n-1, 1:n-2) - cv(2:n-1, 2:n-1))
    ! S8: time smoothing work array — reads p +x, p +y again
    uold(2:n-1, 2:n-1) = u(2:n-1, 2:n-1) + &
        0.1 * (p(3:n, 2:n-1) - p(2:n-1, 3:n))
    ! time update
    vold(2:n-1, 2:n-1) = v(2:n-1, 2:n-1)
    pold(2:n-1, 2:n-1) = p(2:n-1, 2:n-1)
    u(2:n-1, 2:n-1) = unew(2:n-1, 2:n-1)
    v(2:n-1, 2:n-1) = vnew(2:n-1, 2:n-1)
    p(2:n-1, 2:n-1) = pnew(2:n-1, 2:n-1)
  END DO
END PROGRAM
"""

GRAVITY = """
PROGRAM gravity
  PARAM n = 32
  PARAM pr = 5
  PARAM pc = 5
  PROCESSORS procs(pr, pc)
  REAL g(n, n, n)
  DISTRIBUTE g(*, BLOCK, BLOCK) ONTO procs
  TEMPLATE t2(n, n)
  DISTRIBUTE t2(BLOCK, BLOCK) ONTO procs
  REAL glast(n, n) ALIGN WITH t2
  REAL pot(n, n) ALIGN WITH t2
  REAL acc(n, n) ALIGN WITH t2
  REAL sg
  REAL slast

  glast(:, :) = g(1, :, :)
  DO i = 2, n-1
    ! four-direction NNC on the current g plane (updated by the previous
    ! iteration's sweep, so the exchange must stay inside the loop)
    pot(2:n-1, 2:n-1) = g(i, 3:n, 2:n-1) + g(i, 1:n-2, 2:n-1) + &
        g(i, 2:n-1, 3:n) + g(i, 2:n-1, 1:n-2)
    ! four boundary-row global sums of the current plane (one statement)
    sg = SUM(g(i, n, :)) + SUM(g(i, n-1, :)) + SUM(g(i, 1, :)) + SUM(g(i, 2, :))
    ! four-direction NNC on glast
    acc(2:n-1, 2:n-1) = glast(3:n, 2:n-1) + glast(1:n-2, 2:n-1) + &
        glast(2:n-1, 3:n) + glast(2:n-1, 1:n-2) + sg
    ! four boundary-row global sums of glast (one statement)
    slast = SUM(glast(n, :)) + SUM(glast(n-1, :)) + SUM(glast(1, :)) + SUM(glast(2, :))
    glast(:, :) = g(i, :, :)
    ! local force evaluation on the plane: the expensive physics
    ! (inverse-square-root interactions) that dominates compute time;
    ! all updates are damped so the field stays bounded over the sweep
    acc(2:n-1, 2:n-1) = acc(2:n-1, 2:n-1) / &
        SQRT(pot(2:n-1, 2:n-1) * pot(2:n-1, 2:n-1) + &
             acc(2:n-1, 2:n-1) * acc(2:n-1, 2:n-1) + 1.0) + &
        pot(2:n-1, 2:n-1) / &
        SQRT(pot(2:n-1, 2:n-1) * pot(2:n-1, 2:n-1) + 1.0) + &
        0.0001 * sg + 0.0001 * slast
    pot(2:n-1, 2:n-1) = pot(2:n-1, 2:n-1) / &
        SQRT(acc(2:n-1, 2:n-1) * acc(2:n-1, 2:n-1) + 1.0) + &
        0.1 * acc(2:n-1, 2:n-1) + 0.0001 * sg + 0.0001 * slast
    ! local relaxation sweeps of the potential on the plane (no
    ! communication; purely local work between exchanges)
    DO sm = 1, 6
      pot(2:n-1, 2:n-1) = 0.8 * pot(2:n-1, 2:n-1) + &
          0.2 * acc(2:n-1, 2:n-1) / &
          SQRT(pot(2:n-1, 2:n-1) * pot(2:n-1, 2:n-1) + 0.5)
    END DO
    ! forward sweep: propagate into the next plane
    g(i+1, 2:n-1, 2:n-1) = 0.5 * pot(2:n-1, 2:n-1) + &
        0.3 * acc(2:n-1, 2:n-1) + 0.0001 * slast
  END DO
END PROGRAM
"""

TRIMESH = """
PROGRAM trimesh
  PARAM n = 32
  PARAM pr = 5
  PARAM pc = 5
  PARAM nsweeps = 10
  PROCESSORS procs(pr, pc)
  TEMPLATE t(n, n)
  DISTRIBUTE t(BLOCK, BLOCK) ONTO procs
  REAL x1(n, n) ALIGN WITH t
  REAL x2(n, n) ALIGN WITH t
  REAL x3(n, n) ALIGN WITH t
  REAL x4(n, n) ALIGN WITH t
  REAL x5(n, n) ALIGN WITH t
  REAL x6(n, n) ALIGN WITH t
  REAL r1(n, n) ALIGN WITH t
  REAL r2(n, n) ALIGN WITH t
  REAL r3(n, n) ALIGN WITH t
  REAL w(n, n) ALIGN WITH t

  DO sweep = 1, nsweeps
    ! -- normdot: 24 NNC references (6 arrays x 4 directions), no
    !    redundancy; all in one dependence region so each direction
    !    combines into a single exchange: 24 -> 24 -> 4.
    r1(2:n-1, 2:n-1) = x1(3:n, 2:n-1) + x1(1:n-2, 2:n-1) + &
        x1(2:n-1, 3:n) + x1(2:n-1, 1:n-2) + &
        x2(3:n, 2:n-1) + x2(1:n-2, 2:n-1) + &
        x2(2:n-1, 3:n) + x2(2:n-1, 1:n-2)
    r2(2:n-1, 2:n-1) = x3(3:n, 2:n-1) + x3(1:n-2, 2:n-1) + &
        x3(2:n-1, 3:n) + x3(2:n-1, 1:n-2) + &
        x4(3:n, 2:n-1) + x4(1:n-2, 2:n-1) + &
        x4(2:n-1, 3:n) + x4(2:n-1, 1:n-2)
    r3(2:n-1, 2:n-1) = x5(3:n, 2:n-1) + x5(1:n-2, 2:n-1) + &
        x5(2:n-1, 3:n) + x5(2:n-1, 1:n-2) + &
        x6(3:n, 2:n-1) + x6(1:n-2, 2:n-1) + &
        x6(2:n-1, 3:n) + x6(2:n-1, 1:n-2)
    x1(2:n-1, 2:n-1) = r1(2:n-1, 2:n-1)
    x2(2:n-1, 2:n-1) = r1(2:n-1, 2:n-1) * 0.5
    x3(2:n-1, 2:n-1) = r2(2:n-1, 2:n-1)
    x4(2:n-1, 2:n-1) = r2(2:n-1, 2:n-1) * 0.5
    x5(2:n-1, 2:n-1) = r3(2:n-1, 2:n-1)
    x6(2:n-1, 2:n-1) = r3(2:n-1, 2:n-1) * 0.5
  END DO
END PROGRAM
"""

TRIMESH_GAUSS = """
PROGRAM trimesh_gauss
  PARAM n = 32
  PARAM pr = 5
  PARAM pc = 5
  PARAM nsweeps = 10
  PROCESSORS procs(pr, pc)
  TEMPLATE t(n, n)
  DISTRIBUTE t(BLOCK, BLOCK) ONTO procs
  REAL a(n, n) ALIGN WITH t
  REAL b(n, n) ALIGN WITH t
  REAL c(n, n) ALIGN WITH t
  REAL d(n, n) ALIGN WITH t
  REAL rhs(n, n) ALIGN WITH t

  DO sweep = 1, nsweeps
    ! -- gauss: 13 NNC references (3 arrays x 4 directions + one extra),
    !    no redundancy, combining per direction: 13 -> 13 -> 4.
    rhs(2:n-1, 2:n-1) = a(3:n, 2:n-1) + a(1:n-2, 2:n-1) + &
        a(2:n-1, 3:n) + a(2:n-1, 1:n-2) + &
        b(3:n, 2:n-1) + b(1:n-2, 2:n-1) + &
        b(2:n-1, 3:n) + b(2:n-1, 1:n-2) + &
        c(3:n, 2:n-1) + c(1:n-2, 2:n-1) + &
        c(2:n-1, 3:n) + c(2:n-1, 1:n-2) + &
        d(3:n, 2:n-1)
    a(2:n-1, 2:n-1) = rhs(2:n-1, 2:n-1)
    b(2:n-1, 2:n-1) = rhs(2:n-1, 2:n-1) * 0.5
    c(2:n-1, 2:n-1) = rhs(2:n-1, 2:n-1) * 0.25
    d(2:n-1, 2:n-1) = rhs(2:n-1, 2:n-1) * 0.125
  END DO
END PROGRAM
"""

HYDFLO_FLUX = """
PROGRAM hydflo_flux
  PARAM n = 16
  PARAM pr = 5
  PARAM pc = 5
  PARAM nsteps = 5
  PROCESSORS procs(pr, pc)
  REAL rho(n, n, n)
  REAL e1(n, n, n)
  REAL e2(n, n, n)
  REAL e3(n, n, n)
  REAL q1(n, n, n)
  REAL q2(n, n, n)
  REAL q3(n, n, n)
  REAL f(n, n, n)
  DISTRIBUTE rho(*, BLOCK, BLOCK) ONTO procs
  DISTRIBUTE e1(*, BLOCK, BLOCK) ONTO procs
  DISTRIBUTE e2(*, BLOCK, BLOCK) ONTO procs
  DISTRIBUTE e3(*, BLOCK, BLOCK) ONTO procs
  DISTRIBUTE q1(*, BLOCK, BLOCK) ONTO procs
  DISTRIBUTE q2(*, BLOCK, BLOCK) ONTO procs
  DISTRIBUTE q3(*, BLOCK, BLOCK) ONTO procs
  DISTRIBUTE f(*, BLOCK, BLOCK) ONTO procs

  DO step = 1, nsteps
    ! -- flux: a first- and second-order directional stencil sweep with
    !    heavy repetition of halo references across statements:
    !    52 references, 30 distinct, 6 exchanges after combining.
    !    (second-order ±2 offsets map to the same neighbour in processor
    !    space, so they join the same exchange with a wider halo.)
    f(:, 3:n-2, 3:n-2) = rho(:, 4:n-1, 3:n-2) + rho(:, 2:n-3, 3:n-2) + &
        rho(:, 3:n-2, 4:n-1) + rho(:, 3:n-2, 2:n-3) + &
        rho(:, 5:n, 3:n-2) + rho(:, 1:n-4, 3:n-2) + &
        rho(:, 3:n-2, 5:n) + rho(:, 3:n-2, 1:n-4) + &
        e1(:, 4:n-1, 3:n-2) + e1(:, 2:n-3, 3:n-2) + &
        e1(:, 3:n-2, 4:n-1) + e1(:, 3:n-2, 2:n-3) + &
        e1(:, 5:n, 3:n-2) + e1(:, 1:n-4, 3:n-2) + &
        e1(:, 3:n-2, 5:n) + e1(:, 3:n-2, 1:n-4) + &
        e2(:, 4:n-1, 3:n-2) + e2(:, 2:n-3, 3:n-2) + &
        e2(:, 3:n-2, 4:n-1) + e2(:, 3:n-2, 2:n-3)
    q1(:, 3:n-2, 3:n-2) = e3(:, 4:n-1, 3:n-2) + e3(:, 2:n-3, 3:n-2) + &
        e3(:, 3:n-2, 4:n-1) + e3(:, 3:n-2, 2:n-3) + &
        rho(:, 4:n-1, 3:n-2) + rho(:, 2:n-3, 3:n-2) + &
        rho(:, 3:n-2, 4:n-1) + rho(:, 3:n-2, 2:n-3)
    q2(:, 3:n-2, 3:n-2) = e1(:, 4:n-1, 3:n-2) + e1(:, 2:n-3, 3:n-2) + &
        e2(:, 3:n-2, 4:n-1) + e2(:, 3:n-2, 2:n-3) + &
        e2(:, 4:n-1, 3:n-2) + e2(:, 2:n-3, 3:n-2)
    q3(:, 3:n-2, 3:n-2) = q1(:, 4:n-1, 3:n-2) + q2(:, 4:n-1, 3:n-2) + &
        f(:, 4:n-1, 3:n-2) + &
        q1(:, 3:n-2, 4:n-1) + q2(:, 3:n-2, 4:n-1) + &
        f(:, 3:n-2, 4:n-1) + &
        rho(:, 4:n-1, 3:n-2) + rho(:, 2:n-3, 3:n-2) + &
        rho(:, 3:n-2, 4:n-1) + rho(:, 3:n-2, 2:n-3) + &
        e1(:, 4:n-1, 3:n-2) + e1(:, 2:n-3, 3:n-2) + &
        e1(:, 3:n-2, 4:n-1) + e1(:, 3:n-2, 2:n-3) + &
        e3(:, 4:n-1, 3:n-2) + e3(:, 2:n-3, 3:n-2) + &
        e3(:, 3:n-2, 4:n-1) + e3(:, 3:n-2, 2:n-3)
    rho(:, 3:n-2, 3:n-2) = q3(:, 3:n-2, 3:n-2)
    e1(:, 3:n-2, 3:n-2) = q3(:, 3:n-2, 3:n-2) * 0.5
    e2(:, 3:n-2, 3:n-2) = q3(:, 3:n-2, 3:n-2) * 0.25
    e3(:, 3:n-2, 3:n-2) = f(:, 3:n-2, 3:n-2)
  END DO
END PROGRAM
"""

HYDFLO_HYDRO = """
PROGRAM hydflo_hydro
  PARAM n = 16
  PARAM pr = 5
  PARAM pc = 5
  PARAM nsteps = 5
  PROCESSORS procs(pr, pc)
  REAL d1(n, n, n)
  REAL d2(n, n, n)
  REAL s1(n, n, n)
  REAL s2(n, n, n)
  REAL w1(n, n, n)
  REAL w2(n, n, n)
  DISTRIBUTE d1(*, BLOCK, BLOCK) ONTO procs
  DISTRIBUTE d2(*, BLOCK, BLOCK) ONTO procs
  DISTRIBUTE s1(*, BLOCK, BLOCK) ONTO procs
  DISTRIBUTE s2(*, BLOCK, BLOCK) ONTO procs
  DISTRIBUTE w1(*, BLOCK, BLOCK) ONTO procs
  DISTRIBUTE w2(*, BLOCK, BLOCK) ONTO procs

  DO step = 1, nsteps
    ! -- hydro phase 1: d1/d2 in all four directions (8 refs -> 4 groups)
    w1(:, 2:n-1, 2:n-1) = d1(:, 3:n, 2:n-1) + d2(:, 3:n, 2:n-1) + &
        d1(:, 1:n-2, 2:n-1) + d2(:, 1:n-2, 2:n-1) + &
        d1(:, 2:n-1, 3:n) + d2(:, 2:n-1, 3:n) + &
        d1(:, 2:n-1, 1:n-2) + d2(:, 2:n-1, 1:n-2)
    ! -- hydro phase 2: s1/s2 in +y/+z after w1 is written, so these
    !    cannot merge with phase 1 (4 refs -> 2 groups): 12 -> 12 -> 6.
    s1(:, 2:n-1, 2:n-1) = w1(:, 2:n-1, 2:n-1) * 0.5
    s2(:, 2:n-1, 2:n-1) = w1(:, 2:n-1, 2:n-1) * 0.25
    w2(:, 2:n-1, 2:n-1) = s1(:, 3:n, 2:n-1) + s2(:, 3:n, 2:n-1) + &
        s1(:, 2:n-1, 3:n) + s2(:, 2:n-1, 3:n)
    d1(:, 2:n-1, 2:n-1) = w2(:, 2:n-1, 2:n-1)
    d2(:, 2:n-1, 2:n-1) = w2(:, 2:n-1, 2:n-1) * 0.5
  END DO
END PROGRAM
"""

BENCHMARKS = {
    "shallow": SHALLOW,
    "gravity": GRAVITY,
    "trimesh": TRIMESH,
    "trimesh_gauss": TRIMESH_GAUSS,
    "hydflo_flux": HYDFLO_FLUX,
    "hydflo_hydro": HYDFLO_HYDRO,
}

# The paper's Figure 10 table: routine -> (comm type, orig, nored, comb).
PAPER_TABLE = {
    ("shallow", "main", "NNC"): (20, 14, 8),
    ("gravity", "main", "NNC"): (8, 8, 4),
    ("gravity", "main", "SUM"): (8, 8, 2),
    ("trimesh", "normdot", "NNC"): (24, 24, 4),
    ("trimesh", "gauss", "NNC"): (13, 13, 4),
    ("hydflo", "flux", "NNC"): (52, 30, 6),
    ("hydflo", "hydro", "NNC"): (12, 12, 6),
}
