"""Evaluation harnesses: the four benchmarks and every paper figure."""

from .programs import BENCHMARKS, PAPER_TABLE

__all__ = ["BENCHMARKS", "PAPER_TABLE"]
