"""Figure 10 (bar charts b–f): normalized running times.

For each (machine, benchmark, problem-size sweep) the paper plots, this
module simulates the three compiler versions and reports running time
normalized to ``orig``, with the communication share broken out (the dark
bar segment of the paper's charts).

The reproduction targets *shape*: ``orig >= nored >= comb`` everywhere,
communication time cut by roughly 2-3x by the global algorithm, overall
gains in the 10-40% band at the paper's problem sizes, and relative gains
shrinking as compute grows with n.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.context import CompilerOptions
from ..core.pipeline import Strategy, compile_all_strategies
from ..machine.model import MACHINES, MachineModel
from ..runtime.simulator import SimReport, simulate
from .programs import BENCHMARKS


@dataclass(frozen=True)
class ChartPoint:
    """One problem size of one chart: normalized totals and comm shares."""

    n: int
    total: dict[str, float]  # strategy -> seconds
    comm: dict[str, float]  # strategy -> seconds
    messages: dict[str, int]

    def normalized(self, strategy: str) -> float:
        return self.total[strategy] / self.total[Strategy.ORIG.value]

    def comm_share(self, strategy: str) -> float:
        return self.comm[strategy] / self.total[Strategy.ORIG.value]


@dataclass(frozen=True)
class Chart:
    """One panel of Figure 10."""

    key: str
    machine: str
    benchmark: str
    procs: tuple[int, int]
    points: list[ChartPoint]


# Panel id -> (machine, program, (pr, pc), sizes).  Sizes follow the
# paper's sweeps where it states them (NOW charts) and representative
# ranges elsewhere.
CHART_SPECS: dict[str, tuple[str, str, tuple[int, int], list[int]]] = {
    "10a-sp2-shallow": ("SP2", "shallow", (5, 5), [256, 384, 512, 768, 1024]),
    "10b-sp2-gravity": ("SP2", "gravity", (5, 5), [100, 150, 200, 250, 300]),
    "10c-now-shallow": ("NOW", "shallow", (4, 2), [400, 450, 500]),
    "10d-now-gravity": ("NOW", "gravity", (4, 2), [100, 124, 150, 174, 200, 224, 250]),
    "10e-sp2-trimesh": ("SP2", "trimesh", (5, 5), [192, 256, 320, 448, 512]),
    "10e-sp2-hydflo": ("SP2", "hydflo_flux", (5, 5), [28, 40, 56, 64]),
    "10f-now-trimesh": ("NOW", "trimesh", (4, 2), [192, 256, 320]),
    "10f-now-hydflo": ("NOW", "hydflo_hydro", (4, 2), [16, 24, 32, 40]),
}


def run_chart(key: str, options: "CompilerOptions | None" = None) -> Chart:
    machine_name, program, (pr, pc), sizes = CHART_SPECS[key]
    machine: MachineModel = MACHINES[machine_name]
    source = BENCHMARKS[program]
    points: list[ChartPoint] = []
    for n in sizes:
        params = {"n": n, "pr": pr, "pc": pc}
        results = compile_all_strategies(source, params=params, options=options)
        reports: dict[str, SimReport] = {
            strat.value: simulate(result, machine)
            for strat, result in results.items()
        }
        points.append(
            ChartPoint(
                n=n,
                total={k: r.total_time for k, r in reports.items()},
                comm={k: r.comm_time for k, r in reports.items()},
                messages={k: r.messages_per_proc for k, r in reports.items()},
            )
        )
    return Chart(key, machine_name, program, (pr, pc), points)


def run_all(options: "CompilerOptions | None" = None) -> list[Chart]:
    return [run_chart(key, options) for key in CHART_SPECS]


def format_chart(chart: Chart) -> str:
    strategies = [s.value for s in Strategy]
    lines = [
        f"== {chart.key}: {chart.benchmark} on {chart.machine} "
        f"(P = {chart.procs[0]}x{chart.procs[1]})"
    ]
    header = f"{'n':>6s}"
    for s in strategies:
        header += f" | {s:>5s} norm  comm"
    lines.append(header)
    for p in chart.points:
        row = f"{p.n:6d}"
        for s in strategies:
            row += f" |  {p.normalized(s):8.2f}  {p.comm_share(s):4.2f}"
        lines.append(row)
    return "\n".join(lines)


def main() -> None:
    for chart in run_all():
        print(format_chart(chart))
        print()


if __name__ == "__main__":
    main()
