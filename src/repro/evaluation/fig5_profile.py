"""Figure 5: buffer-copy and network-bandwidth profiles.

The paper profiles both platforms with a ping-style microbenchmark and a
local ``bcopy`` sweep, concluding that (a) message-startup amortization
saturates at sizes well below the cache, so combining messages pays until
roughly 20 KB, and (b) ``bcopy`` bandwidth collapses past the cache, so
combining very large sections is counter-productive.

This module regenerates the three curves per machine — bcopy bandwidth
(top), injection bandwidth (middle), and receive bandwidth (bottom) — over
a log-spaced size axis, and computes the derived *combining threshold*:
the smallest message size at which the network achieves a target fraction
of its asymptotic bandwidth (the knee the paper reads ~20 KB off for the
SP2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cost.model import DEFAULT_KNEE_FRACTION, CostModel, discrete_knee
from ..machine.model import MACHINES, MachineModel


def size_axis(lo: int = 16, hi: int = 4 * 1024 * 1024) -> list[int]:
    """Log-spaced buffer sizes (powers of two), like the paper's x-axis."""
    sizes = []
    s = lo
    while s <= hi:
        sizes.append(s)
        s *= 2
    return sizes


@dataclass(frozen=True)
class ProfilePoint:
    nbytes: int
    bcopy_bw: float  # bytes/s
    inject_bw: float
    receive_bw: float


@dataclass(frozen=True)
class Profile:
    machine: str
    points: list[ProfilePoint]

    def knee(self, fraction: float = DEFAULT_KNEE_FRACTION) -> int:
        """Smallest size reaching ``fraction`` of asymptotic receive
        bandwidth — the discrete read-off of the combining threshold.
        The knee rule itself lives in the cost layer
        (:func:`repro.cost.model.discrete_knee`); the compiler's actual
        threshold is the analytic form,
        :meth:`repro.cost.model.CostModel.derived_threshold`."""
        return discrete_knee(
            [(p.nbytes, p.receive_bw) for p in self.points], fraction
        )

    def cache_cliff(self) -> int:
        """Size at which bcopy bandwidth starts dropping (cache limit)."""
        best = max(p.bcopy_bw for p in self.points)
        for p in self.points:
            if p.bcopy_bw < 0.95 * best and p.nbytes > 1024:
                return p.nbytes
        return self.points[-1].nbytes


def profile_machine(machine: MachineModel, sizes: list[int] | None = None) -> Profile:
    sizes = sizes or size_axis()
    points = [
        ProfilePoint(
            nbytes=s,
            bcopy_bw=machine.bcopy_bandwidth(s),
            inject_bw=machine.injection_bandwidth(s),
            receive_bw=machine.network_bandwidth(s),
        )
        for s in sizes
    ]
    return Profile(machine.name, points)


def run_all() -> list[Profile]:
    return [profile_machine(m) for m in MACHINES.values()]


def format_profile(profile: Profile) -> str:
    lines = [
        f"== Figure 5: {profile.machine} (bandwidths in MB/s)",
        f"{'bytes':>9s} {'bcopy':>8s} {'inject':>8s} {'receive':>8s}",
    ]
    for p in profile.points:
        lines.append(
            f"{p.nbytes:9d} {p.bcopy_bw/1e6:8.1f} {p.inject_bw/1e6:8.1f} "
            f"{p.receive_bw/1e6:8.1f}"
        )
    lines.append(
        f"knee(80% bw) = {profile.knee()} bytes; "
        f"bcopy cache cliff = {profile.cache_cliff()} bytes"
    )
    machine = MACHINES.get(profile.machine)
    if machine is not None:
        lines.append(
            f"derived combining threshold = "
            f"{CostModel(machine=machine).derived_threshold()} bytes"
        )
    return "\n".join(lines)


def main() -> None:
    for profile in run_all():
        print(format_profile(profile))
        print()


if __name__ == "__main__":
    main()
