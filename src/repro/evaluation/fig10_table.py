"""Figure 10 (table): static communication call-site counts.

Reproduces the compile-time statistics table of the paper: for each
benchmark routine, the number of static communication call sites emitted
by the three compiler versions (``orig`` / ``nored`` / ``comb``), split by
communication type (NNC vs. SUM).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.context import CompilerOptions
from ..core.pipeline import Strategy, compile_all_strategies
from .programs import BENCHMARKS, PAPER_TABLE

# Our program name -> (paper benchmark, paper routine, comm kind filters).
ROUTINE_MAP = {
    ("shallow", "main", "NNC"): ("shallow", "shift"),
    ("gravity", "main", "NNC"): ("gravity", "shift"),
    ("gravity", "main", "SUM"): ("gravity", "reduction"),
    ("trimesh", "normdot", "NNC"): ("trimesh", "shift"),
    ("trimesh", "gauss", "NNC"): ("trimesh_gauss", "shift"),
    ("hydflo", "flux", "NNC"): ("hydflo_flux", "shift"),
    ("hydflo", "hydro", "NNC"): ("hydflo_hydro", "shift"),
}


@dataclass(frozen=True)
class TableRow:
    """One row of the Figure 10 message-count table."""

    benchmark: str
    routine: str
    comm_type: str
    orig: int
    nored: int
    comb: int
    paper: tuple[int, int, int]

    @property
    def measured(self) -> tuple[int, int, int]:
        return (self.orig, self.nored, self.comb)

    @property
    def matches_paper(self) -> bool:
        return self.measured == self.paper


def build_table(options: "CompilerOptions | None" = None) -> list[TableRow]:
    """Compile every benchmark under every strategy and collect the rows."""
    counts: dict[str, dict[str, dict[str, int]]] = {}
    for program, source in BENCHMARKS.items():
        counts[program] = {
            strat.value: result.call_sites_by_kind()
            for strat, result in compile_all_strategies(
                source, options=options
            ).items()
        }

    rows: list[TableRow] = []
    for key, paper_counts in PAPER_TABLE.items():
        benchmark, routine, comm_type = key
        program, kind = ROUTINE_MAP[key]
        rows.append(
            TableRow(
                benchmark=benchmark,
                routine=routine,
                comm_type=comm_type,
                orig=counts[program][Strategy.ORIG.value].get(kind, 0),
                nored=counts[program][Strategy.EARLIEST.value].get(kind, 0),
                comb=counts[program][Strategy.GLOBAL.value].get(kind, 0),
                paper=paper_counts,
            )
        )
    return rows


def format_table(rows: list[TableRow]) -> str:
    lines = [
        f"{'Benchmark':10s} {'Routine':8s} {'Type':4s} "
        f"{'orig':>5s} {'nored':>6s} {'comb':>5s}   paper (o/n/c)   match",
        "-" * 72,
    ]
    for r in rows:
        p = "/".join(str(x) for x in r.paper)
        lines.append(
            f"{r.benchmark:10s} {r.routine:8s} {r.comm_type:4s} "
            f"{r.orig:5d} {r.nored:6d} {r.comb:5d}   {p:>13s}   "
            f"{'YES' if r.matches_paper else 'no'}"
        )
    return "\n".join(lines)


def main() -> None:
    print(format_table(build_table()))


if __name__ == "__main__":
    main()
