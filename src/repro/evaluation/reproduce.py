"""One-shot reproduction driver: every paper artifact, checked.

``python -m repro reproduce`` runs the whole evaluation — the Figure 10
count table, the Figure 10 timing panels, the Figure 5 profiles, and the
dynamic validation oracles — and prints a consolidated PASS/FAIL summary
against the paper's claims.  This is the "does the reproduction hold"
button.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.context import CompilerOptions
from ..core.pipeline import compile_all_strategies
from ..machine.model import MACHINES
from .fig5_profile import profile_machine
from .fig10_charts import CHART_SPECS, run_chart
from .fig10_table import build_table
from .programs import BENCHMARKS


@dataclass
class CheckResult:
    name: str
    passed: bool
    detail: str = ""


@dataclass
class Reproduction:
    checks: list[CheckResult] = field(default_factory=list)

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(CheckResult(name, passed, detail))

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def format(self) -> str:
        lines = []
        for c in self.checks:
            status = "PASS" if c.passed else "FAIL"
            line = f"  [{status}] {c.name}"
            if c.detail:
                line += f" — {c.detail}"
            lines.append(line)
        verdict = "ALL CHECKS PASSED" if self.ok else "SOME CHECKS FAILED"
        lines.append(f"\n{verdict} ({sum(c.passed for c in self.checks)}"
                     f"/{len(self.checks)})")
        return "\n".join(lines)


def check_fig10_table(
    repro: Reproduction, options: "CompilerOptions | None" = None
) -> None:
    rows = build_table(options)
    for row in rows:
        repro.record(
            f"Fig 10 table: {row.benchmark}/{row.routine}/{row.comm_type}",
            row.matches_paper,
            f"measured {row.measured}, paper {row.paper}",
        )


def check_fig10_charts(
    repro: Reproduction, options: "CompilerOptions | None" = None
) -> None:
    for key in CHART_SPECS:
        chart = run_chart(key, options)
        monotone = all(
            p.normalized("comb") <= p.normalized("nored") + 1e-9
            and p.normalized("nored") <= 1.0 + 1e-9
            for p in chart.points
        )
        cuts = [p.comm["orig"] / p.comm["comb"] for p in chart.points]
        repro.record(
            f"Fig 10 chart {key}",
            monotone and min(cuts) >= 1.2,
            f"comm cut {min(cuts):.1f}-{max(cuts):.1f}x, "
            f"best overall gain {1 - min(p.normalized('comb') for p in chart.points):.0%}",
        )


def check_fig5(repro: Reproduction) -> None:
    for name, machine in MACHINES.items():
        profile = profile_machine(machine)
        knee = profile.knee(0.8)
        repro.record(
            f"Fig 5 profile {name}",
            knee < machine.cache_bytes,
            f"amortization knee {knee} B < cache {machine.cache_bytes} B",
        )


def check_dynamic_oracles(
    repro: Reproduction, options: "CompilerOptions | None" = None
) -> None:
    import numpy as np

    from ..runtime.checker import check_schedule
    from ..runtime.interp import interpret
    from ..runtime.spmd import execute_spmd

    small = {
        "shallow": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
        "gravity": {"n": 8, "pr": 2, "pc": 2},
        "trimesh": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
        "trimesh_gauss": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
        "hydflo_flux": {"n": 8, "nsteps": 1, "pr": 2, "pc": 2},
        "hydflo_hydro": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
    }
    for program, params in small.items():
        results = compile_all_strategies(
            BENCHMARKS[program], params=params, options=options
        )
        try:
            for result in results.values():
                check_schedule(result)
                state, _ = execute_spmd(result)
                ref = interpret(result.info)
                for name in ref:
                    if not np.array_equal(state[name], ref[name]):
                        raise AssertionError(f"{name} diverged")
            repro.record(f"dynamic validation: {program}", True,
                         "checker + SPMD execution match sequential semantics")
        except Exception as exc:  # pragma: no cover - failure reporting
            repro.record(f"dynamic validation: {program}", False, str(exc))


def run_reproduction(
    include_charts: bool = True, options: "CompilerOptions | None" = None
) -> Reproduction:
    repro = Reproduction()
    check_fig10_table(repro, options)
    if include_charts:
        check_fig10_charts(repro, options)
    check_fig5(repro)
    check_dynamic_oracles(repro, options)
    return repro


def main(options: "CompilerOptions | None" = None) -> int:
    repro = run_reproduction(options=options)
    print(repro.format())
    return 0 if repro.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
